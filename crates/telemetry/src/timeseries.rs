//! Fixed-capacity metric time series: the fleet's short-term memory.
//!
//! A [`TelemetrySnapshot`] is a point in time; resilience verdicts
//! need the shape of a metric *over* an injected outage. This module
//! keeps a bounded ring of recent points per series — keyed by metric
//! name, label set and source target — so the control plane can ask
//! "what did the request rate on `web → db` do between rule install
//! and clear?" without any external storage.
//!
//! Like the rest of the crate it is std-only: plain structs behind an
//! `RwLock`, no background threads, no allocation on the query path
//! beyond the returned vectors. Ingest accepts either a local
//! [`TelemetrySnapshot`] (histograms are decomposed onto the same
//! `le` ladder the Prometheus renderer uses, so local and scraped
//! series line up) or parsed scrape output ([`PromSample`]s).
//!
//! Timestamps are caller-supplied microseconds, so tests and replay
//! can feed synthetic clocks. Within one series, appends must be
//! strictly increasing in time; stale appends are dropped.
//!
//! # Examples
//!
//! ```
//! use gremlin_telemetry::TimeSeriesStore;
//!
//! let store = TimeSeriesStore::new();
//! for (at, v) in [(1_000_000, 0.0), (2_000_000, 50.0), (3_000_000, 55.0)] {
//!     store.append("web-1", "req_total", &[], at, v);
//! }
//! store.annotate(2_500_000, "install", "abort web->db");
//! let rates = store.query_rate("req_total", None, 0, u64::MAX);
//! // 50 requests in the first second, 5 in the next.
//! assert_eq!(rates[0].1[0].value, 50.0);
//! assert_eq!(rates[0].1[1].value, 5.0);
//! assert_eq!(store.annotations(0, u64::MAX).len(), 1);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, RwLock};

use crate::registry::{Labels, SampleValue, TelemetrySnapshot};
use crate::render::{micros_to_seconds, PromSample, LE_LADDER_MICROS};

/// Default ring capacity: points kept per series before the oldest
/// are evicted. At a 1s scrape interval this is ~8.5 minutes of
/// history per series.
pub const DEFAULT_POINTS_PER_SERIES: usize = 512;

/// Identifies one stored series: which target it came from, the
/// metric name, and the (sorted) label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId {
    /// Source target (scrape target name, or `local` for in-process
    /// snapshots).
    pub target: String,
    /// Metric name as exposed (`foo_total`, `foo_bucket`, ...).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
}

/// One observation: a caller-supplied microsecond timestamp and the
/// sampled value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsPoint {
    /// Timestamp in microseconds (epoch chosen by the caller, as
    /// long as it is consistent within the store).
    pub at_us: u64,
    /// Sampled value.
    pub value: f64,
}

/// How a stored series should be interpreted when queried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonically increasing; rate conversion applies.
    Counter,
    /// Instantaneous value.
    Gauge,
}

impl SeriesKind {
    /// Infers the kind from the exposed metric name, following the
    /// Prometheus naming conventions this workspace uses: `_total`,
    /// `_count`, `_sum` and `_bucket` suffixes are cumulative
    /// counters, everything else is treated as a gauge.
    pub fn infer(name: &str) -> SeriesKind {
        if name.ends_with("_total")
            || name.ends_with("_count")
            || name.ends_with("_sum")
            || name.ends_with("_bucket")
        {
            SeriesKind::Counter
        } else {
            SeriesKind::Gauge
        }
    }
}

/// A control-plane phase marker on the shared timeline: warmup start,
/// rule install, wave boundaries, abort, clear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// When the phase event happened (same clock as the points).
    pub at_us: u64,
    /// Short phase keyword (`warmup`, `install`, `clear`, ...).
    pub phase: String,
    /// Free-form detail (scenario, wave members, ...).
    pub detail: String,
}

#[derive(Debug)]
struct Ring {
    points: VecDeque<TsPoint>,
}

impl Ring {
    fn push(&mut self, capacity: usize, point: TsPoint) -> bool {
        if let Some(last) = self.points.back() {
            if point.at_us <= last.at_us {
                return false;
            }
        }
        if self.points.len() == capacity {
            self.points.pop_front();
        }
        self.points.push_back(point);
        true
    }

    fn range(&self, from: u64, to: u64) -> Vec<TsPoint> {
        self.points
            .iter()
            .filter(|p| p.at_us >= from && p.at_us <= to)
            .copied()
            .collect()
    }
}

#[derive(Debug, Default)]
struct Inner {
    series: BTreeMap<SeriesId, Ring>,
    annotations: Vec<Annotation>,
    targets: BTreeMap<String, u64>,
}

/// A bounded, thread-safe store of recent metric history for a whole
/// fleet, plus the control-plane phase annotations that explain it.
///
/// Cloneable via [`TimeSeriesStore::shared`]; the scraper, the
/// collector's `/series` endpoint and a running recipe all write to
/// and read from the same handle.
#[derive(Debug)]
pub struct TimeSeriesStore {
    capacity: usize,
    inner: RwLock<Inner>,
}

impl Default for TimeSeriesStore {
    fn default() -> Self {
        TimeSeriesStore::new()
    }
}

impl TimeSeriesStore {
    /// Creates a store with the default per-series capacity
    /// ([`DEFAULT_POINTS_PER_SERIES`]).
    pub fn new() -> TimeSeriesStore {
        TimeSeriesStore::with_capacity(DEFAULT_POINTS_PER_SERIES)
    }

    /// Creates a store keeping at most `capacity` points per series.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> TimeSeriesStore {
        assert!(capacity > 0, "time-series capacity must be positive");
        TimeSeriesStore {
            capacity,
            inner: RwLock::default(),
        }
    }

    /// Creates a default store behind an [`Arc`], ready to share
    /// between a scraper, a collector and a recipe run.
    pub fn shared() -> Arc<TimeSeriesStore> {
        Arc::new(TimeSeriesStore::new())
    }

    /// Maximum points kept per series.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().expect("time-series store poisoned")
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().expect("time-series store poisoned")
    }

    /// Appends one point to the series `(target, name, labels)`,
    /// creating the series on first use. Returns `false` (and drops
    /// the point) when `at_us` is not strictly after the series'
    /// latest point.
    pub fn append(
        &self,
        target: &str,
        name: &str,
        labels: &[(String, String)],
        at_us: u64,
        value: f64,
    ) -> bool {
        let mut labels: Labels = labels.to_vec();
        labels.sort();
        let id = SeriesId {
            target: target.to_string(),
            name: name.to_string(),
            labels,
        };
        let mut inner = self.write();
        let entry = inner.targets.entry(target.to_string()).or_insert(0);
        *entry = (*entry).max(at_us);
        inner
            .series
            .entry(id)
            .or_insert_with(|| Ring {
                points: VecDeque::new(),
            })
            .push(self.capacity, TsPoint { at_us, value })
    }

    /// Ingests a whole local [`TelemetrySnapshot`] under `target` at
    /// time `at_us`. Histograms are decomposed into the same
    /// cumulative `_bucket{le=seconds}` / `_sum` / `_count` series
    /// the Prometheus renderer emits, so locally ingested history is
    /// indistinguishable from a scraped one. Returns the number of
    /// points appended.
    pub fn ingest_snapshot(&self, target: &str, at_us: u64, snapshot: &TelemetrySnapshot) -> usize {
        let mut appended = 0;
        for sample in &snapshot.samples {
            match &sample.value {
                SampleValue::Counter(v) => {
                    appended += usize::from(self.append(
                        target,
                        &sample.name,
                        &sample.labels,
                        at_us,
                        *v as f64,
                    ));
                }
                SampleValue::Gauge(v) => {
                    appended += usize::from(self.append(
                        target,
                        &sample.name,
                        &sample.labels,
                        at_us,
                        *v as f64,
                    ));
                }
                SampleValue::Histogram(hist) => {
                    let bucket_name = format!("{}_bucket", sample.name);
                    for le in LE_LADDER_MICROS {
                        let mut labels = sample.labels.clone();
                        labels.push(("le".to_string(), format!("{}", micros_to_seconds(le))));
                        appended += usize::from(self.append(
                            target,
                            &bucket_name,
                            &labels,
                            at_us,
                            hist.cumulative_le_micros(le) as f64,
                        ));
                    }
                    let mut labels = sample.labels.clone();
                    labels.push(("le".to_string(), "+Inf".to_string()));
                    appended += usize::from(self.append(
                        target,
                        &bucket_name,
                        &labels,
                        at_us,
                        hist.count() as f64,
                    ));
                    appended += usize::from(self.append(
                        target,
                        &format!("{}_sum", sample.name),
                        &sample.labels,
                        at_us,
                        micros_to_seconds(hist.sum_micros()),
                    ));
                    appended += usize::from(self.append(
                        target,
                        &format!("{}_count", sample.name),
                        &sample.labels,
                        at_us,
                        hist.count() as f64,
                    ));
                }
            }
        }
        appended
    }

    /// Ingests parsed scrape output (what [`crate::parse_prometheus`]
    /// returns) under `target` at time `at_us`. Returns the number of
    /// points appended.
    pub fn ingest_prom(&self, target: &str, at_us: u64, samples: &[PromSample]) -> usize {
        let mut appended = 0;
        for sample in samples {
            appended +=
                usize::from(self.append(target, &sample.name, &sample.labels, at_us, sample.value));
        }
        appended
    }

    /// Records a phase annotation on the shared timeline.
    pub fn annotate(&self, at_us: u64, phase: &str, detail: &str) {
        self.write().annotations.push(Annotation {
            at_us,
            phase: phase.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Annotations with `from <= at_us <= to`, in insertion order.
    pub fn annotations(&self, from: u64, to: u64) -> Vec<Annotation> {
        self.read()
            .annotations
            .iter()
            .filter(|a| a.at_us >= from && a.at_us <= to)
            .cloned()
            .collect()
    }

    /// Every stored series id, sorted.
    pub fn series_ids(&self) -> Vec<SeriesId> {
        self.read().series.keys().cloned().collect()
    }

    /// Distinct stored metric names, sorted.
    pub fn series_names(&self) -> Vec<String> {
        let inner = self.read();
        let mut names: Vec<String> = inner.series.keys().map(|id| id.name.clone()).collect();
        names.dedup();
        names
    }

    /// Known targets with the timestamp of their latest ingested
    /// point — the raw material for staleness reporting.
    pub fn targets(&self) -> Vec<(String, u64)> {
        self.read()
            .targets
            .iter()
            .map(|(t, at)| (t.clone(), *at))
            .collect()
    }

    /// The latest ingest timestamp for `target`, if any point has
    /// ever been stored for it.
    pub fn last_ingest_us(&self, target: &str) -> Option<u64> {
        self.read().targets.get(target).copied()
    }

    /// Number of stored series.
    pub fn series_count(&self) -> usize {
        self.read().series.len()
    }

    /// Total stored points across all series.
    pub fn point_count(&self) -> usize {
        self.read().series.values().map(|r| r.points.len()).sum()
    }

    /// Raw points of every series named `name` (optionally restricted
    /// to one target) within `[from, to]`, sorted by series id.
    /// Series with no point in range are omitted.
    pub fn query(
        &self,
        name: &str,
        target: Option<&str>,
        from: u64,
        to: u64,
    ) -> Vec<(SeriesId, Vec<TsPoint>)> {
        let inner = self.read();
        inner
            .series
            .iter()
            .filter(|(id, _)| id.name == name && target.is_none_or(|t| id.target == t))
            .filter_map(|(id, ring)| {
                let points = ring.range(from, to);
                if points.is_empty() {
                    None
                } else {
                    Some((id.clone(), points))
                }
            })
            .collect()
    }

    /// The latest point of every stored series, sorted by series id —
    /// what a federation endpoint renders as the merged fleet
    /// snapshot.
    pub fn latest_points(&self) -> Vec<(SeriesId, TsPoint)> {
        let inner = self.read();
        inner
            .series
            .iter()
            .filter_map(|(id, ring)| ring.points.back().map(|p| (id.clone(), *p)))
            .collect()
    }

    /// Every stored series with its full retained history, sorted by
    /// series id — the input to persistence (a flight recorder's
    /// `timeseries.jsonl` dump).
    pub fn dump(&self) -> Vec<(SeriesId, Vec<TsPoint>)> {
        let inner = self.read();
        inner
            .series
            .iter()
            .map(|(id, ring)| (id.clone(), ring.points.iter().copied().collect()))
            .collect()
    }

    /// The latest point of series `name` on `target` (any label set),
    /// if one exists.
    pub fn latest(&self, name: &str, target: &str) -> Option<TsPoint> {
        let inner = self.read();
        inner
            .series
            .iter()
            .filter(|(id, _)| id.name == name && id.target == target)
            .filter_map(|(_, ring)| ring.points.back().copied())
            .max_by_key(|p| p.at_us)
    }

    /// Like [`TimeSeriesStore::query`], but counter series are
    /// converted to per-second rates ([`rate_points`]); gauge series
    /// (by [`SeriesKind::infer`]) pass through unchanged.
    pub fn query_rate(
        &self,
        name: &str,
        target: Option<&str>,
        from: u64,
        to: u64,
    ) -> Vec<(SeriesId, Vec<TsPoint>)> {
        let kind = SeriesKind::infer(name);
        let inner = self.read();
        inner
            .series
            .iter()
            .filter(|(id, _)| id.name == name && target.is_none_or(|t| id.target == t))
            .filter_map(|(id, ring)| {
                let raw: Vec<TsPoint> = ring.points.iter().copied().collect();
                let points: Vec<TsPoint> = match kind {
                    SeriesKind::Counter => rate_points(&raw)
                        .into_iter()
                        .filter(|p| p.at_us >= from && p.at_us <= to)
                        .collect(),
                    SeriesKind::Gauge => ring.range(from, to),
                };
                if points.is_empty() {
                    None
                } else {
                    Some((id.clone(), points))
                }
            })
            .collect()
    }

    /// The increase of counter `name` (summed across matching series)
    /// over `[from, to]`, reset-safe. Returns `None` when no matching
    /// series has at least one point in range.
    pub fn counter_delta(
        &self,
        name: &str,
        target: Option<&str>,
        from: u64,
        to: u64,
    ) -> Option<f64> {
        let windows = self.query(name, target, from, to);
        if windows.is_empty() {
            return None;
        }
        Some(windows.iter().map(|(_, pts)| window_increase(pts)).sum())
    }

    /// The `q`-th quantile (0.0..=1.0), in seconds, of histogram
    /// `base` over the window `[from, to]`: bucket-ladder deltas are
    /// summed across every matching `{base}_bucket` series, then the
    /// quantile is read off the cumulative ladder by nearest rank —
    /// the same estimate `histogram_quantile` gives in PromQL.
    ///
    /// Returns `None` when no observations landed in the window.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn histogram_quantile(
        &self,
        base: &str,
        target: Option<&str>,
        from: u64,
        to: u64,
        q: f64,
    ) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let bucket_name = format!("{base}_bucket");
        let inner = self.read();
        // Cumulative increase per `le` bound, summed across targets
        // and label sets. +Inf maps to f64::INFINITY.
        let mut ladder: BTreeMap<u64, f64> = BTreeMap::new();
        let mut inf = 0.0f64;
        for (id, ring) in inner
            .series
            .iter()
            .filter(|(id, _)| id.name == bucket_name && target.is_none_or(|t| id.target == t))
        {
            let le = match id.labels.iter().find(|(k, _)| k == "le") {
                Some((_, v)) => v,
                None => continue,
            };
            let points = ring.range(from, to);
            if points.is_empty() {
                continue;
            }
            let increase = window_increase(&points);
            if le == "+Inf" {
                inf += increase;
            } else if let Ok(seconds) = le.parse::<f64>() {
                *ladder
                    .entry((seconds * 1_000_000.0).round() as u64)
                    .or_insert(0.0) += increase;
            }
        }
        let total = if inf > 0.0 {
            inf
        } else {
            ladder.values().copied().fold(0.0, f64::max)
        };
        if total <= 0.0 {
            return None;
        }
        let rank = (q * total).max(1.0).min(total);
        let mut bounds: Vec<(u64, f64)> = ladder.into_iter().collect();
        bounds.sort_by_key(|(le, _)| *le);
        for (le_micros, cumulative) in &bounds {
            if *cumulative >= rank {
                return Some(micros_to_seconds(*le_micros));
            }
        }
        // Landed above the highest finite bound.
        bounds.last().map(|(le, _)| micros_to_seconds(*le))
    }
}

/// Converts a cumulative counter series to per-second rates: one
/// output point per consecutive input pair, stamped at the later
/// point. A decrease is treated as a counter reset (the process
/// restarted), so the later value alone counts as the increase.
pub fn rate_points(points: &[TsPoint]) -> Vec<TsPoint> {
    points
        .windows(2)
        .filter_map(|pair| {
            let (a, b) = (pair[0], pair[1]);
            let dt = (b.at_us.saturating_sub(a.at_us)) as f64 / 1_000_000.0;
            if dt <= 0.0 {
                return None;
            }
            let increase = if b.value >= a.value {
                b.value - a.value
            } else {
                b.value
            };
            Some(TsPoint {
                at_us: b.at_us,
                value: increase / dt,
            })
        })
        .collect()
}

/// The reset-safe increase of a cumulative counter across an ordered
/// point window: segment-wise, so a mid-window restart only forfeits
/// the pre-reset increase instead of going negative.
fn window_increase(points: &[TsPoint]) -> f64 {
    let mut increase = 0.0;
    for pair in points.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        increase += if b.value >= a.value {
            b.value - a.value
        } else {
            b.value
        };
    }
    increase
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::render::parse_prometheus;
    use std::time::Duration;

    const S: u64 = 1_000_000;

    #[test]
    fn ring_evicts_oldest_and_enforces_monotonic_time() {
        let store = TimeSeriesStore::with_capacity(3);
        for i in 1..=5u64 {
            assert!(store.append("t", "g", &[], i * S, i as f64));
        }
        // Stale and duplicate timestamps are dropped.
        assert!(!store.append("t", "g", &[], 5 * S, 99.0));
        assert!(!store.append("t", "g", &[], 3 * S, 99.0));
        let out = store.query("g", None, 0, u64::MAX);
        assert_eq!(out.len(), 1);
        let points: Vec<u64> = out[0].1.iter().map(|p| p.at_us / S).collect();
        assert_eq!(points, vec![3, 4, 5]);
        assert_eq!(store.point_count(), 3);
        assert_eq!(store.last_ingest_us("t"), Some(5 * S));
    }

    #[test]
    fn kind_inference_follows_suffixes() {
        assert_eq!(SeriesKind::infer("req_total"), SeriesKind::Counter);
        assert_eq!(SeriesKind::infer("lat_seconds_bucket"), SeriesKind::Counter);
        assert_eq!(SeriesKind::infer("lat_seconds_sum"), SeriesKind::Counter);
        assert_eq!(SeriesKind::infer("lat_seconds_count"), SeriesKind::Counter);
        assert_eq!(SeriesKind::infer("open_connections"), SeriesKind::Gauge);
    }

    #[test]
    fn rate_handles_counter_resets() {
        let points = [
            TsPoint {
                at_us: S,
                value: 10.0,
            },
            TsPoint {
                at_us: 2 * S,
                value: 30.0,
            },
            TsPoint {
                at_us: 3 * S,
                value: 4.0,
            }, // restart
            TsPoint {
                at_us: 4 * S,
                value: 9.0,
            },
        ];
        let rates = rate_points(&points);
        let values: Vec<f64> = rates.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![20.0, 4.0, 5.0]);
        assert_eq!(window_increase(&points), 29.0);
    }

    #[test]
    fn query_rate_scopes_by_target_and_window() {
        let store = TimeSeriesStore::new();
        for i in 1..=4u64 {
            store.append("a", "req_total", &[], i * S, (i * 10) as f64);
            store.append("b", "req_total", &[], i * S, (i * 2) as f64);
        }
        let only_a = store.query_rate("req_total", Some("a"), 0, u64::MAX);
        assert_eq!(only_a.len(), 1);
        assert!(only_a[0].1.iter().all(|p| (p.value - 10.0).abs() < 1e-9));
        // A window clipped to [3s, 4s] keeps only the later rates.
        let both = store.query_rate("req_total", None, 3 * S, 4 * S);
        assert_eq!(both.len(), 2);
        assert!(both.iter().all(|(_, pts)| pts.len() == 2));
        // Gauges pass through unchanged.
        store.append("a", "open_connections", &[], S, 7.0);
        let gauges = store.query_rate("open_connections", None, 0, u64::MAX);
        assert_eq!(gauges[0].1[0].value, 7.0);
    }

    #[test]
    fn snapshot_ingest_decomposes_histograms_like_the_renderer() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("lat_seconds", "h", &[("svc", "web")]);
        hist.record(Duration::from_millis(3));
        hist.record(Duration::from_millis(40));

        let store = TimeSeriesStore::new();
        store.ingest_snapshot("local", S, &registry.snapshot());

        // Scraping the rendered exposition into a second store yields
        // the same bucket series values.
        let scraped = TimeSeriesStore::new();
        let samples = parse_prometheus(&registry.snapshot().render_prometheus());
        scraped.ingest_prom("local", S, &samples);

        for want in ["lat_seconds_bucket", "lat_seconds_sum", "lat_seconds_count"] {
            let a = store.query(want, None, 0, u64::MAX);
            let b = scraped.query(want, None, 0, u64::MAX);
            assert_eq!(a.len(), b.len(), "{want}");
            for ((ida, pa), (idb, pb)) in a.iter().zip(&b) {
                assert_eq!(ida.labels, idb.labels, "{want}");
                assert_eq!(pa, pb, "{want}");
            }
        }
        assert_eq!(
            store.latest("lat_seconds_count", "local").unwrap().value,
            2.0
        );
    }

    #[test]
    fn histogram_quantile_over_a_window() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("lat_seconds", "h", &[]);
        let store = TimeSeriesStore::new();
        store.ingest_snapshot("local", S, &registry.snapshot());
        // 90 fast observations and 10 slow ones land inside the window.
        for _ in 0..90 {
            hist.record(Duration::from_millis(2));
        }
        for _ in 0..10 {
            hist.record(Duration::from_millis(400));
        }
        store.ingest_snapshot("local", 2 * S, &registry.snapshot());

        let p50 = store
            .histogram_quantile("lat_seconds", None, 0, u64::MAX, 0.50)
            .unwrap();
        assert!((p50 - 0.0025).abs() < 1e-9, "p50={p50}");
        let p99 = store
            .histogram_quantile("lat_seconds", None, 0, u64::MAX, 0.99)
            .unwrap();
        assert!((p99 - 0.5).abs() < 1e-9, "p99={p99}");
        // A window before any observation has no quantile.
        assert!(store
            .histogram_quantile("lat_seconds", None, 0, S, 0.5)
            .is_none());
    }

    #[test]
    fn counter_delta_sums_across_series() {
        let store = TimeSeriesStore::new();
        store.append("a", "req_total", &[], S, 0.0);
        store.append("a", "req_total", &[], 2 * S, 40.0);
        store.append("b", "req_total", &[], S, 100.0);
        store.append("b", "req_total", &[], 2 * S, 102.0);
        assert_eq!(
            store.counter_delta("req_total", None, 0, u64::MAX),
            Some(42.0)
        );
        assert_eq!(
            store.counter_delta("req_total", Some("b"), 0, u64::MAX),
            Some(2.0)
        );
        assert_eq!(store.counter_delta("missing", None, 0, u64::MAX), None);
    }

    #[test]
    fn annotations_are_windowed() {
        let store = TimeSeriesStore::new();
        store.annotate(S, "warmup", "");
        store.annotate(2 * S, "install", "abort web->db");
        store.annotate(3 * S, "clear", "");
        let mid = store.annotations(2 * S, 2 * S);
        assert_eq!(mid.len(), 1);
        assert_eq!(mid[0].phase, "install");
        assert_eq!(store.annotations(0, u64::MAX).len(), 3);
    }

    #[test]
    fn targets_and_names_enumerate() {
        let store = TimeSeriesStore::new();
        store.append("a", "x_total", &[], S, 1.0);
        store.append("b", "y", &[], 2 * S, 1.0);
        assert_eq!(
            store.targets(),
            vec![("a".to_string(), S), ("b".to_string(), 2 * S)]
        );
        assert_eq!(store.series_names(), vec!["x_total", "y"]);
        assert_eq!(store.series_count(), 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        let _ = TimeSeriesStore::with_capacity(0);
    }
}

//! Scalar metrics: monotonically increasing counters and
//! up/down gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations are single relaxed atomic instructions; a counter
/// handle can be shared freely across threads.
///
/// # Examples
///
/// ```
/// use gremlin_telemetry::Counter;
///
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (open connections,
/// store size, last-seen timestamps).
///
/// # Examples
///
/// ```
/// use gremlin_telemetry::Gauge;
///
/// let g = Gauge::new();
/// g.inc();
/// g.inc();
/// g.dec();
/// assert_eq!(g.get(), 1);
/// g.set(-3);
/// assert_eq!(g.get(), -3);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.dec();
        assert_eq!(g.get(), 4);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}

//! Distributed-dispatch benchmark: the same footprint-disjoint
//! campaign on one host vs. sharded across two operator hosts behind
//! real httpwire control endpoints, exported as machine-readable JSON.
//!
//! Three measurements back `DESIGN.md`'s Distributed campaigns
//! section, and CI's `distributed-smoke` job gates on them:
//!
//! 1. **Shard speedup** — an 8-recipe campaign over pairwise disjoint
//!    fault edges, once on a single host with `max_in_flight = 2` and
//!    once sharded across 2 operators each running `max_in_flight = 2`
//!    (double the effective wave width). CI gates on the wall-clock
//!    speedup staying >= 1.5x.
//! 2. **Merge parity + determinism** — the merged distributed report
//!    must carry the same per-recipe verdicts and the same covered
//!    coverage cells as the single-host run, and a second distributed
//!    run must reproduce both exactly.
//! 3. **Failover** — one operator dies after its first wave; the
//!    campaign must still complete every recipe, with exactly one
//!    `campaigns.jsonl` entry per recipe.
//!
//! Run: `cargo run --release -p gremlin-bench --bin bench_dispatch`
//!
//! Output: `BENCH_dispatch.json` in the working directory (override
//! with `GREMLIN_BENCH_OUT`).

use std::collections::BTreeSet;
use std::error::Error;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gremlin_core::{
    AppGraph, CampaignDispatcher, CampaignRecipe, CampaignReport, CampaignRunner, CoverageLedger,
    HttpOperator, OperatorServer, OperatorTransport, Scenario, TestContext, WaveRequest,
    WaveResponse,
};
use gremlin_proxy::{AgentControl, ProxyError, Rule};
use gremlin_store::EventStore;

const RECIPES: usize = 8;
const OPERATORS: usize = 2;
const MAX_IN_FLIGHT: usize = 2;
const HOLD: Duration = Duration::from_millis(120);

/// An agent whose control channel costs a fixed latency per push.
struct SleepAgent {
    service: String,
    latency: Duration,
    rules: Mutex<Vec<Rule>>,
}

impl AgentControl for SleepAgent {
    fn service_name(&self) -> String {
        self.service.clone()
    }

    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
        std::thread::sleep(self.latency);
        self.rules.lock().unwrap().extend(rules.iter().cloned());
        Ok(())
    }

    fn clear_rules(&self) -> Result<(), ProxyError> {
        self.rules.lock().unwrap().clear();
        Ok(())
    }

    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
        Ok(self.rules.lock().unwrap().clone())
    }
}

fn pairs() -> Vec<(String, String)> {
    (0..RECIPES)
        .map(|i| (format!("c{i}"), format!("s{i}")))
        .collect()
}

fn graph() -> AppGraph {
    AppGraph::from_edges(pairs())
}

fn fleet_ctx() -> TestContext {
    let agents: Vec<Arc<dyn AgentControl>> = pairs()
        .iter()
        .map(|(src, _)| {
            Arc::new(SleepAgent {
                service: src.clone(),
                latency: Duration::from_millis(2),
                rules: Mutex::new(Vec::new()),
            }) as Arc<dyn AgentControl>
        })
        .collect();
    TestContext::new(graph(), agents, EventStore::shared())
}

fn recipes() -> Vec<CampaignRecipe> {
    pairs()
        .iter()
        .map(|(src, dst)| {
            CampaignRecipe::new(format!("{src}-{dst}"))
                .scenario(Scenario::abort(src.clone(), dst.clone(), 503))
                .hold(HOLD)
        })
        .collect()
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "gremlin-bench-dispatch-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn covered_cells(root: &Path) -> BTreeSet<String> {
    CoverageLedger::scan(root)
        .map(|ledger| {
            ledger
                .covered_keys()
                .into_iter()
                .map(|key| format!("{key:?}"))
                .collect()
        })
        .unwrap_or_default()
}

fn verdicts(report: &CampaignReport) -> Vec<(String, bool)> {
    report
        .recipes
        .iter()
        .map(|recipe| (recipe.name.clone(), recipe.passed))
        .collect()
}

/// Runs the campaign sharded across two fresh HTTP operator hosts.
fn run_distributed(root: &Path) -> Result<CampaignReport, Box<dyn Error>> {
    let servers: Vec<OperatorServer> = (0..OPERATORS)
        .map(|i| OperatorServer::start(format!("op-{i}"), fleet_ctx(), "127.0.0.1:0", None))
        .collect::<Result<_, _>>()?;
    let operators: Vec<Arc<dyn OperatorTransport>> = servers
        .iter()
        .map(|server| {
            HttpOperator::connect(server.local_addr())
                .map(|op| Arc::new(op) as Arc<dyn OperatorTransport>)
        })
        .collect::<Result<_, _>>()?;
    let report = CampaignDispatcher::new(graph(), operators)
        .max_in_flight(MAX_IN_FLIGHT)
        .flight_root(root)
        .run(recipes())?;
    for server in servers {
        server.shutdown();
    }
    Ok(report)
}

/// Transport wrapper that kills its backing server after one wave.
struct KillableOperator {
    inner: HttpOperator,
    server: Mutex<Option<OperatorServer>>,
    calls: AtomicUsize,
}

impl OperatorTransport for KillableOperator {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn run_wave(&self, wave: &WaveRequest) -> Result<WaveResponse, gremlin_core::CoreError> {
        if self.calls.fetch_add(1, Ordering::SeqCst) >= 1 {
            if let Some(server) = self.server.lock().unwrap().take() {
                server.shutdown();
            }
        }
        self.inner.run_wave(wave)
    }

    fn clear(&self) -> Result<(), gremlin_core::CoreError> {
        self.inner.clear()
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    // (1) Single-host reference run.
    let single_root = temp_root("single");
    let ctx = fleet_ctx();
    let single = CampaignRunner::new(&ctx)
        .max_in_flight(MAX_IN_FLIGHT)
        .flight_root(&single_root)
        .run(recipes())?;
    assert!(single.passed(), "single-host campaign must pass:\n{single}");

    // (2) The same campaign sharded across two operator hosts, twice
    // (the second run checks determinism of the merge).
    let dist_root = temp_root("dist");
    let merged = run_distributed(&dist_root)?;
    assert!(merged.passed(), "distributed campaign must pass:\n{merged}");
    let rerun_root = temp_root("rerun");
    let rerun = run_distributed(&rerun_root)?;

    let speedup = single.wall_clock.as_secs_f64() / merged.wall_clock.as_secs_f64();
    let verdicts_match = verdicts(&single) == verdicts(&merged);
    let coverage_match = covered_cells(&single_root) == covered_cells(&dist_root);
    let deterministic = verdicts(&merged) == verdicts(&rerun)
        && covered_cells(&dist_root) == covered_cells(&rerun_root);
    println!(
        "dispatch ({RECIPES} disjoint recipes x {HOLD:?} hold): single-host {:?}, {OPERATORS} operators {:?} ({speedup:.1}x); verdicts match: {verdicts_match}, coverage match: {coverage_match}, deterministic: {deterministic}",
        single.wall_clock, merged.wall_clock,
    );

    // (3) Failover: one operator dies after its first wave.
    let failover_root = temp_root("failover");
    let survivor = OperatorServer::start("survivor", fleet_ctx(), "127.0.0.1:0", None)?;
    let doomed_server = OperatorServer::start("doomed", fleet_ctx(), "127.0.0.1:0", None)?;
    let doomed = KillableOperator {
        inner: HttpOperator::connect(doomed_server.local_addr())?,
        server: Mutex::new(Some(doomed_server)),
        calls: AtomicUsize::new(0),
    };
    let operators: Vec<Arc<dyn OperatorTransport>> = vec![
        Arc::new(HttpOperator::connect(survivor.local_addr())?),
        Arc::new(doomed),
    ];
    let failover = CampaignDispatcher::new(graph(), operators)
        .max_in_flight(MAX_IN_FLIGHT)
        .retries(1)
        .backoff(Duration::from_millis(5))
        .flight_root(&failover_root)
        .run(recipes())?;
    survivor.shutdown();
    let failover_complete = failover.recipes.len() == RECIPES && failover.passed();
    let mut entry_names: Vec<String> =
        std::fs::read_to_string(failover_root.join("campaigns.jsonl"))?
            .lines()
            .map(|line| {
                let entry: serde_json::Value = serde_json::from_str(line).unwrap();
                entry["recipe"].as_str().unwrap().to_string()
            })
            .collect();
    entry_names.sort();
    let mut expected: Vec<String> = recipes().iter().map(|r| r.name.clone()).collect();
    expected.sort();
    let failover_entries_unique = entry_names == expected;
    println!(
        "failover: campaign complete: {failover_complete}, ledger exactly-once: {failover_entries_unique}"
    );

    for root in [&single_root, &dist_root, &rerun_root, &failover_root] {
        let _ = std::fs::remove_dir_all(root);
    }

    let output = serde_json::json!({
        "benchmark": "distributed_dispatch",
        "dispatch": {
            "recipes": RECIPES,
            "operators": OPERATORS,
            "max_in_flight_per_operator": MAX_IN_FLIGHT,
            "hold_ms": HOLD.as_millis() as u64,
            "single_host_wall_ms": single.wall_clock.as_secs_f64() * 1e3,
            "distributed_wall_ms": merged.wall_clock.as_secs_f64() * 1e3,
            "speedup": speedup,
        },
        "parity": {
            "verdicts_match": verdicts_match,
            "coverage_match": coverage_match,
            "deterministic": deterministic,
        },
        "failover": {
            "campaign_complete": failover_complete,
            "ledger_exactly_once": failover_entries_unique,
        },
    });

    let path =
        std::env::var("GREMLIN_BENCH_OUT").unwrap_or_else(|_| "BENCH_dispatch.json".to_string());
    std::fs::write(&path, serde_json::to_string_pretty(&output)?)?;
    println!("wrote {path}");
    Ok(())
}

//! Campaign-executor benchmark: concurrent rule fan-out, parallel
//! recipe scheduling, and warmup-free reruns via baseline reuse,
//! exported as machine-readable JSON.
//!
//! Three measurements back the numbers in `DESIGN.md`'s Campaign
//! execution section:
//!
//! 1. **Control-plane fan-out** — a crash scenario pushed to 8 agents
//!    whose control channel costs ~20ms per push, once serially
//!    (`with_max_fanout(1)`) and once with the default concurrent
//!    fan-out. The ratio is the orchestrator's fan-out speedup.
//! 2. **Campaign scheduling** — a 4-recipe campaign over pairwise
//!    disjoint fault edges, once with `max_in_flight = 1` (strict
//!    serial) and once with `max_in_flight = 4` (single wave). CI
//!    gates on the wall-clock speedup staying >= 2x.
//! 3. **Baseline reuse** — a monitored campaign run fresh (anomaly
//!    scorers pay their warmup windows) and again seeded from the
//!    first run's persisted `baselines.json`; the report counts the
//!    runs that skipped warmup and checks the verdicts still agree.
//!
//! Run: `cargo run --release -p gremlin-bench --bin bench_campaign`
//!
//! Output: `BENCH_campaign.json` in the working directory (override
//! with `GREMLIN_BENCH_OUT`); the synthetic event volume behind the
//! baseline-reuse measurement scales with `GREMLIN_BENCH_REQUESTS`
//! (default 2000).

use std::error::Error;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gremlin_core::{
    AnomalyConfig, AppGraph, CampaignRecipe, CampaignRunner, FailureOrchestrator, MonitorSpec,
    Scenario, TestContext,
};
use gremlin_proxy::{AgentControl, ProxyError, Rule};
use gremlin_store::{Event, EventStore};

const FLEET: usize = 8;
const PUSH_LATENCY: Duration = Duration::from_millis(20);
const RECIPES: usize = 4;
const HOLD: Duration = Duration::from_millis(120);

/// An agent whose control channel costs a fixed latency per push —
/// the network round-trip the orchestrator's fan-out amortizes.
struct SleepAgent {
    service: String,
    latency: Duration,
    rules: Mutex<Vec<Rule>>,
}

impl SleepAgent {
    fn new(service: impl Into<String>, latency: Duration) -> Arc<SleepAgent> {
        Arc::new(SleepAgent {
            service: service.into(),
            latency,
            rules: Mutex::new(Vec::new()),
        })
    }
}

impl AgentControl for SleepAgent {
    fn service_name(&self) -> String {
        self.service.clone()
    }

    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
        std::thread::sleep(self.latency);
        self.rules.lock().unwrap().extend(rules.iter().cloned());
        Ok(())
    }

    fn clear_rules(&self) -> Result<(), ProxyError> {
        self.rules.lock().unwrap().clear();
        Ok(())
    }

    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
        Ok(self.rules.lock().unwrap().clone())
    }
}

fn fleet(pairs: &[(String, String)], latency: Duration) -> Vec<Arc<dyn AgentControl>> {
    pairs
        .iter()
        .map(|(src, _)| SleepAgent::new(src.clone(), latency) as Arc<dyn AgentControl>)
        .collect()
}

/// (1) Fan-out: push one crash scenario to the whole fleet, serially
/// vs. concurrently.
fn measure_fanout() -> Result<serde_json::Value, Box<dyn Error>> {
    let pairs: Vec<(String, String)> = (0..FLEET)
        .map(|i| (format!("c{i}"), "hub".to_string()))
        .collect();
    let graph = AppGraph::from_edges(pairs.clone());
    let scenario = Scenario::crash("hub");

    let serial = FailureOrchestrator::new(fleet(&pairs, PUSH_LATENCY)).with_max_fanout(1);
    let serial_stats = serial.inject(&scenario, &graph)?;

    let parallel = FailureOrchestrator::new(fleet(&pairs, PUSH_LATENCY));
    let parallel_stats = parallel.inject(&scenario, &graph)?;

    let speedup = serial_stats.duration.as_secs_f64() / parallel_stats.duration.as_secs_f64();
    println!(
        "fan-out ({FLEET} agents x {PUSH_LATENCY:?}): serial {:?}, concurrent {:?} ({speedup:.1}x)",
        serial_stats.duration, parallel_stats.duration,
    );
    Ok(serde_json::json!({
        "agents": FLEET,
        "push_latency_ms": PUSH_LATENCY.as_millis() as u64,
        "serial_push_ms": serial_stats.duration.as_secs_f64() * 1e3,
        "concurrent_push_ms": parallel_stats.duration.as_secs_f64() * 1e3,
        "speedup": speedup,
    }))
}

fn campaign_recipes(pairs: &[(String, String)]) -> Vec<CampaignRecipe> {
    pairs
        .iter()
        .map(|(src, dst)| {
            CampaignRecipe::new(format!("{src}-{dst}"))
                .scenario(Scenario::abort(src.clone(), dst.clone(), 503))
                .hold(HOLD)
        })
        .collect()
}

/// (2) Scheduling: the same 4-recipe disjoint-edge campaign, serial
/// vs. one concurrent wave.
fn measure_campaign() -> Result<serde_json::Value, Box<dyn Error>> {
    let pairs: Vec<(String, String)> = (0..RECIPES)
        .map(|i| (format!("c{i}"), format!("s{i}")))
        .collect();
    let agent_latency = Duration::from_millis(2);

    let ctx = TestContext::new(
        AppGraph::from_edges(pairs.clone()),
        fleet(&pairs, agent_latency),
        EventStore::shared(),
    );
    let serial = CampaignRunner::new(&ctx)
        .max_in_flight(1)
        .run(campaign_recipes(&pairs))?;
    assert!(serial.passed(), "serial campaign must pass:\n{serial}");

    let ctx = TestContext::new(
        AppGraph::from_edges(pairs.clone()),
        fleet(&pairs, agent_latency),
        EventStore::shared(),
    );
    let parallel = CampaignRunner::new(&ctx)
        .max_in_flight(RECIPES)
        .run(campaign_recipes(&pairs))?;
    assert!(
        parallel.passed(),
        "parallel campaign must pass:\n{parallel}"
    );
    assert_eq!(parallel.waves.len(), 1, "disjoint recipes fit one wave");

    let speedup = serial.wall_clock.as_secs_f64() / parallel.wall_clock.as_secs_f64();
    println!(
        "campaign ({RECIPES} disjoint recipes x {HOLD:?} hold): serial {:?}, parallel {:?} ({speedup:.1}x)",
        serial.wall_clock, parallel.wall_clock,
    );
    Ok(serde_json::json!({
        "recipes": RECIPES,
        "hold_ms": HOLD.as_millis() as u64,
        "serial_wall_ms": serial.wall_clock.as_secs_f64() * 1e3,
        "parallel_wall_ms": parallel.wall_clock.as_secs_f64() * 1e3,
        "parallel_waves": parallel.waves.len(),
        "speedup": speedup,
    }))
}

/// Feeds a steady synthetic request/response stream for every edge so
/// the anomaly scorers have traffic to window.
fn feed_traffic(store: &Arc<EventStore>, pairs: &[(String, String)], events: usize) {
    let window_us = 10_000u64;
    let per_window = 5usize;
    let windows = (events / (pairs.len() * per_window)).max(8);
    for w in 0..windows as u64 {
        for (src, dst) in pairs {
            for i in 0..per_window as u64 {
                let ts = w * window_us + i * (window_us / per_window as u64);
                store.record_event(
                    Event::request(src.as_str(), dst.as_str(), "GET", "/x").with_timestamp(ts),
                );
                store.record_event(
                    Event::response(src.as_str(), dst.as_str(), 200, Duration::from_millis(2))
                        .with_timestamp(ts + 500),
                );
            }
        }
        std::thread::sleep(Duration::from_millis(3));
    }
}

/// (3) Baseline reuse: fresh monitored campaign, then the same
/// campaign seeded from the persisted baselines.
fn measure_baseline_reuse(events: usize) -> Result<serde_json::Value, Box<dyn Error>> {
    let pairs: Vec<(String, String)> = (0..2).map(|i| (format!("c{i}"), format!("s{i}"))).collect();
    let monitored = |pairs: &[(String, String)]| -> Vec<CampaignRecipe> {
        pairs
            .iter()
            .map(|(src, dst)| {
                CampaignRecipe::new(format!("{src}-{dst}"))
                    .scenario(Scenario::delay(
                        src.clone(),
                        dst.clone(),
                        Duration::from_millis(1),
                    ))
                    .monitor(
                        MonitorSpec::new(Duration::from_millis(10))
                            .anomaly(AnomalyConfig::default().warmup_windows(2)),
                    )
                    .hold(Duration::from_millis(80))
            })
            .collect()
    };
    let root = std::env::temp_dir().join(format!("gremlin-bench-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Fresh run: scorers pay the warmup while live traffic flows.
    let ctx = TestContext::new(
        AppGraph::from_edges(pairs.clone()),
        fleet(&pairs, Duration::from_millis(2)),
        EventStore::shared(),
    );
    let feeder = {
        let store = Arc::clone(ctx.store());
        let pairs = pairs.clone();
        std::thread::spawn(move || feed_traffic(&store, &pairs, events))
    };
    let fresh = CampaignRunner::new(&ctx)
        .flight_root(&root)
        .run(monitored(&pairs))?;
    feeder.join().expect("feeder thread");
    let persisted = gremlin_core::load_baselines(&root)?;
    assert!(!persisted.is_empty(), "fresh campaign must learn baselines");

    // Seeded run: same campaign, warmup skipped everywhere.
    let ctx = TestContext::new(
        AppGraph::from_edges(pairs.clone()),
        fleet(&pairs, Duration::from_millis(2)),
        EventStore::shared(),
    );
    let seeded = CampaignRunner::new(&ctx)
        .seed(persisted.clone())
        .run(monitored(&pairs))?;
    let verdicts_match = fresh.passed() == seeded.passed();
    println!(
        "baseline reuse: {} baseline(s) persisted, {}/{} seeded run(s) skipped warmup, verdicts match: {verdicts_match}",
        persisted.len(),
        seeded.warmup_skipped,
        seeded.recipes.len(),
    );
    let _ = std::fs::remove_dir_all(&root);
    Ok(serde_json::json!({
        "persisted_baselines": persisted.len(),
        "monitored_runs": seeded.recipes.len(),
        "warmup_skipped_runs": seeded.warmup_skipped,
        "fresh_warmup_skipped_runs": fresh.warmup_skipped,
        "verdicts_match": verdicts_match,
    }))
}

fn main() -> Result<(), Box<dyn Error>> {
    let events: usize = std::env::var("GREMLIN_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);

    let fanout = measure_fanout()?;
    let campaign = measure_campaign()?;
    let baselines = measure_baseline_reuse(events)?;

    let output = serde_json::json!({
        "benchmark": "campaign_executor",
        "fanout": fanout,
        "campaign": campaign,
        "baseline_reuse": baselines,
    });

    let path =
        std::env::var("GREMLIN_BENCH_OUT").unwrap_or_else(|_| "BENCH_campaign.json".to_string());
    std::fs::write(&path, serde_json::to_string_pretty(&output)?)?;
    println!("wrote {path}");
    Ok(())
}

//! Coverage-ledger benchmark: how fast the cross-run scorecard
//! indexes a realistic flight-artifact history.
//!
//! The ledger is scanned at the start of every campaign (for the
//! coverage delta) and by `gremlin coverage` in CI, so its cost over
//! hundreds of recorded runs matters. This harness synthesizes a
//! flight root of `GREMLIN_BENCH_RUNS` recordings (default 250) over
//! a 24-edge mesh — passes, violations, anomalies, drifting
//! baselines and a few crashed partials — then times:
//!
//! 1. **Scan** — `CoverageLedger::scan`: directory walk, lenient
//!    flight-log loads, cube fold, regression detection.
//! 2. **Steer** — `steering_plan()` plus a steered
//!    `RecipeGenerator::generate` over the mesh graph.
//! 3. **Render** — the ANSI scorecard and the Markdown export.
//!
//! Run: `cargo run --release -p gremlin-bench --bin bench_ledger`
//!
//! Output: `BENCH_ledger.json` in the working directory (override
//! with `GREMLIN_BENCH_OUT`).

use std::error::Error;
use std::time::{Duration, Instant};

use gremlin_core::autogen::RecipeGenerator;
use gremlin_core::{
    AppGraph, CoverageLedger, FlightRecorder, FlightSummary, LiveCheck, Scenario, Verdict,
};
use gremlin_store::EdgeBaseline;

const SERVICES: usize = 8;

fn mesh_edges() -> Vec<(String, String)> {
    // Each service calls the next three (mod ring): 8 * 3 = 24 edges.
    let mut edges = Vec::new();
    for i in 0..SERVICES {
        for hop in 1..=3 {
            edges.push((format!("svc{i}"), format!("svc{}", (i + hop) % SERVICES)));
        }
    }
    edges
}

fn baseline(src: &str, dst: &str, p50_us: u64) -> EdgeBaseline {
    EdgeBaseline {
        src: src.to_string(),
        dst: dst.to_string(),
        windows: 10,
        rate_ewma: 10.0,
        rate_mad: 0.5,
        error_rate: 0.0,
        error_upper: 0.02,
        responses: 100,
        p50_us,
        p99_us: p50_us * 2,
        latency_mad_us: 400.0,
    }
}

/// Writes `runs` flight recordings under `root`: a deterministic mix
/// of passes, violations and crashed partials, with slowly drifting
/// per-edge baselines so the regression detector has real work.
fn synthesize(root: &std::path::Path, runs: usize) -> Result<(), Box<dyn Error>> {
    let edges = mesh_edges();
    for index in 0..runs {
        let at = (index as u64 + 1) * 1_000_000;
        let (src, dst) = &edges[index % edges.len()];
        let recipe = format!("delay-{src}-{dst}-{index}");
        if index % 25 == 24 {
            // A crashed partial: meta.json only.
            let dir = root.join(format!("{recipe}-{at}"));
            std::fs::create_dir_all(&dir)?;
            std::fs::write(
                dir.join("meta.json"),
                format!(
                    "{{\"schema_version\":1,\"recipe\":\"{recipe}\",\"started_at_us\":{at},\"window_us\":1000000}}"
                ),
            )?;
            continue;
        }
        let violated = index % 10 == 9;
        let scenario = Scenario::delay(src.clone(), dst.clone(), Duration::from_secs(2));
        let mut summary = FlightSummary {
            name: recipe.clone(),
            passed: !violated,
            injected: vec![scenario.to_string()],
            checks: Vec::new(),
            monitor: Vec::new(),
            anomalies: Vec::new(),
            scenarios: vec![scenario],
        };
        if violated {
            summary.monitor.push(LiveCheck {
                name: format!("LiveErrorRate({src}, <= 1%)"),
                verdict: Verdict::Violated,
                detail: "error rate 40%".to_string(),
                windows: 4,
                first_failing_at_us: Some(at),
                violated_at_us: Some(at + 500_000),
            });
        }
        // The edge's p50 creeps upward across the history, so the
        // latest baselines drift past the earliest ones.
        let p50_us = 5_000 + (index as u64 / edges.len() as u64) * 2_000;
        let mut recorder = FlightRecorder::create(root, &recipe, at, 1_000_000)?;
        recorder.record_baselines(&[baseline(src, dst, p50_us)])?;
        recorder.finish(&summary)?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let runs: usize = std::env::var("GREMLIN_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    let root = std::env::temp_dir().join(format!("gremlin-bench-ledger-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let built = Instant::now();
    synthesize(&root, runs)?;
    let build_ms = built.elapsed().as_secs_f64() * 1e3;

    let scanned = Instant::now();
    let ledger = CoverageLedger::scan(&root)?;
    let scan_ms = scanned.elapsed().as_secs_f64() * 1e3;
    assert_eq!(ledger.runs_scanned(), runs, "every synthesized run indexed");

    let graph = AppGraph::from_edges(mesh_edges());
    let steered = Instant::now();
    let tests = RecipeGenerator::new().steer(&ledger).generate(&graph);
    let steer_ms = steered.elapsed().as_secs_f64() * 1e3;
    let unsteered = RecipeGenerator::new().generate(&graph).len();

    let rendered = Instant::now();
    let ansi = ledger.render(Some(&graph), true);
    let markdown = ledger.to_markdown(Some(&graph));
    let render_ms = rendered.elapsed().as_secs_f64() * 1e3;

    println!(
        "ledger ({runs} runs, {} cells): scan {scan_ms:.1}ms, steer {steer_ms:.1}ms \
         ({unsteered} -> {} tests), render {render_ms:.1}ms",
        ledger.covered_cells(),
        tests.len(),
    );

    let output = serde_json::json!({
        "benchmark": "coverage_ledger",
        "runs": runs,
        "covered_cells": ledger.covered_cells(),
        "incomplete_runs": ledger.incomplete_runs().len(),
        "regressions": ledger.regressions().len(),
        "build_ms": build_ms,
        "scan_ms": scan_ms,
        "scan_ms_per_run": scan_ms / runs as f64,
        "steer_ms": steer_ms,
        "tests_unsteered": unsteered,
        "tests_steered": tests.len(),
        "render_ms": render_ms,
        "ansi_bytes": ansi.len(),
        "markdown_bytes": markdown.len(),
    });
    let path =
        std::env::var("GREMLIN_BENCH_OUT").unwrap_or_else(|_| "BENCH_ledger.json".to_string());
    std::fs::write(&path, serde_json::to_string_pretty(&output)?)?;
    println!("wrote {path}");
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}

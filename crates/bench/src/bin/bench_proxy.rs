//! Data-plane hot-path benchmark: proxy throughput, added latency,
//! and raw rule-matching cost, exported as machine-readable JSON.
//!
//! Three measurements back the numbers in `DESIGN.md`'s Performance
//! section:
//!
//! 1. **Baseline** — closed-loop load straight at a trivial backend.
//! 2. **Through the agent** — the same load through a Gremlin agent,
//!    with 0 and then 100 installed (non-matching, worst-case) rules.
//!    The p50/p99 *added* latency is the difference against baseline.
//! 3. **Rule matching in isolation** — worst-case `match_message`
//!    lookups against a 100-rule table, reported in nanoseconds.
//! 4. **Tracing overhead** — the agent run again with span
//!    propagation disabled (`AgentConfig::tracing(false)`), so the
//!    report carries the cost of minting span IDs and rewriting the
//!    `X-Gremlin-Span`/`X-Gremlin-Parent` headers.
//! 5. **Monitor overhead** — the 0-rule agent run again while a
//!    `LiveMonitor` polls the same store (streaming assertions over
//!    `events_after`), reported as the relative p99 added latency so
//!    CI can gate on the monitor staying out of the hot path.
//! 6. **Anomaly-scorer overhead** — the monitored run repeated with
//!    per-edge baselining and anomaly scoring enabled
//!    (`MonitorSpec::anomaly`), reported as the p99 delta against the
//!    scorer-off monitored run so CI can gate on the scorer too.
//!
//! Run: `cargo run --release -p gremlin-bench --bin bench_proxy`
//!
//! Output: `BENCH_proxy.json` in the working directory (override with
//! `GREMLIN_BENCH_OUT`); request count per setting scales with
//! `GREMLIN_BENCH_REQUESTS` (default 2000).

use std::error::Error;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gremlin_core::{AnomalyConfig, LiveMonitor, MonitorSpec, StreamingAssertion};
use gremlin_http::{ConnInfo, HttpServer, Request, Response};
use gremlin_loadgen::{Cdf, LoadGenerator, LoadReport};
use gremlin_proxy::{AbortKind, AgentConfig, GremlinAgent, MessageSide, Rule, RuleTable};
use gremlin_store::EventStore;

const WORKERS: usize = 4;

fn no_match_rules(count: usize) -> Vec<Rule> {
    (0..count)
        .map(|index| {
            Rule::abort("client", "server", AbortKind::Status(503))
                .with_pattern(format!("nomatch-{index}-*?suffix").as_str())
        })
        .collect()
}

fn run_load(addr: std::net::SocketAddr, requests: usize) -> LoadReport {
    LoadGenerator::new(addr)
        .id_prefix("test")
        .run_closed(WORKERS, requests / WORKERS)
}

fn quantile_us(cdf: &Cdf, q: f64) -> f64 {
    cdf.quantile(q)
        .map(|latency| latency.as_secs_f64() * 1e6)
        .unwrap_or(0.0)
}

fn load_stats(report: &LoadReport, baseline: Option<&Cdf>) -> serde_json::Value {
    let cdf = report.cdf();
    let p50 = quantile_us(&cdf, 0.5);
    let p99 = quantile_us(&cdf, 0.99);
    let mut stats = serde_json::json!({
        "throughput_rps": report.throughput(),
        "p50_us": p50,
        "p99_us": p99,
    });
    if let Some(base) = baseline {
        stats["added_p50_us"] = ((p50 - quantile_us(base, 0.5)).max(0.0)).into();
        stats["added_p99_us"] = ((p99 - quantile_us(base, 0.99)).max(0.0)).into();
    }
    stats
}

/// Worst-case `match_message` cost against `rules` installed rules,
/// measured in batches to stay above timer resolution.
fn rule_match_stats(rules: usize, lookups: usize) -> serde_json::Value {
    let table = RuleTable::new();
    table.install(no_match_rules(rules)).expect("valid rules");
    const BATCH: usize = 64;
    let mut samples = Vec::with_capacity(lookups / BATCH);
    let mut done = 0usize;
    while done < lookups {
        let started = Instant::now();
        for i in 0..BATCH {
            let id = if i % 2 == 0 { "test-12345" } else { "test-9" };
            let hit = table.match_message("client", "server", MessageSide::Request, Some(id));
            assert!(hit.is_none(), "worst case must not match");
        }
        samples.push(started.elapsed() / BATCH as u32);
        done += BATCH;
    }
    let total: Duration = samples.iter().sum();
    let cdf = Cdf::from_latencies(&samples);
    serde_json::json!({
        "rules": rules,
        "lookups": done,
        "mean_ns": total.as_nanos() as f64 / samples.len() as f64,
        "p50_ns": cdf.quantile(0.5).map(|d| d.as_nanos() as u64).unwrap_or(0),
        "p99_ns": cdf.quantile(0.99).map(|d| d.as_nanos() as u64).unwrap_or(0),
    })
}

/// Drives the closed-loop load through a fresh 0-rule agent while a
/// background thread polls a [`LiveMonitor`] with the given spec over
/// the agent's store — the shape shared by the monitor-overhead and
/// anomaly-overhead measurements.
fn run_monitored(
    backend: std::net::SocketAddr,
    requests: usize,
    spec: MonitorSpec,
) -> Result<LoadReport, Box<dyn Error>> {
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("client").route("server", vec![backend]),
        Arc::clone(&store),
    )?;
    let monitor = Arc::new(LiveMonitor::new(Arc::clone(&store), spec));
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let monitor = Arc::clone(&monitor);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                monitor.poll();
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };
    let report = run_load(agent.route_addr("server").expect("route"), requests);
    assert_eq!(report.successes(), (requests / WORKERS) * WORKERS);
    stop.store(true, Ordering::Relaxed);
    let _ = poller.join();
    agent.shutdown();
    Ok(report)
}

fn main() -> Result<(), Box<dyn Error>> {
    let requests: usize = std::env::var("GREMLIN_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let requests = requests.max(WORKERS);

    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("ok")
    })?;

    // (1) Baseline: straight at the backend.
    let direct = run_load(backend.local_addr(), requests);
    assert_eq!(direct.successes(), (requests / WORKERS) * WORKERS);
    let direct_cdf = direct.cdf();
    println!("direct:           {:>9.0} req/s", direct.throughput());

    // (2) Through the agent, 0 and 100 installed rules.
    let mut through = Vec::new();
    for rules in [0usize, 100] {
        let agent = GremlinAgent::start(
            AgentConfig::new("client").route("server", vec![backend.local_addr()]),
            EventStore::shared(),
        )?;
        agent.install_rules(no_match_rules(rules))?;
        let report = run_load(agent.route_addr("server").expect("route"), requests);
        assert_eq!(report.successes(), (requests / WORKERS) * WORKERS);
        assert_eq!(agent.rule_hits(), 0, "worst case: no rule may match");
        println!(
            "agent {rules:>3} rules:  {:>9.0} req/s  (p50 +{:.1}us vs direct)",
            report.throughput(),
            (quantile_us(&report.cdf(), 0.5) - quantile_us(&direct_cdf, 0.5)).max(0.0),
        );
        through.push((rules, report));
        agent.shutdown();
    }

    // (3) Span tracing disabled: the delta against the 0-rule run
    // (tracing on by default) is the header-propagation overhead.
    let agent = GremlinAgent::start(
        AgentConfig::new("client")
            .route("server", vec![backend.local_addr()])
            .tracing(false),
        EventStore::shared(),
    )?;
    let tracing_off = run_load(agent.route_addr("server").expect("route"), requests);
    assert_eq!(tracing_off.successes(), (requests / WORKERS) * WORKERS);
    println!(
        "agent, no trace:  {:>9.0} req/s  (tracing adds p50 {:+.1}us)",
        tracing_off.throughput(),
        quantile_us(&through[0].1.cdf(), 0.5) - quantile_us(&tracing_off.cdf(), 0.5),
    );
    agent.shutdown();

    // (4) Rule matching in isolation.
    let matching = rule_match_stats(100, 64 * 256);
    println!(
        "rule match (100 rules, worst case): mean {}ns",
        matching["mean_ns"]
    );

    // (5) Live monitor polling the agent's store while load flows —
    // the delta against the 0-rule run is the monitor's cost on the
    // data path (it should be ~zero: the monitor reads incrementally
    // off the hot path).
    let monitor_spec = MonitorSpec::new(Duration::from_millis(100))
        .assert(StreamingAssertion::LatencySlo {
            service: "server".into(),
            quantile: 0.99,
            bound: Duration::from_secs(1),
        })
        .assert(StreamingAssertion::ErrorRateAtMost {
            src: "client".into(),
            dst: "server".into(),
            max_ratio: 0.5,
        });
    let monitored = run_monitored(backend.local_addr(), requests, monitor_spec.clone())?;
    let monitor_off_p99 = quantile_us(&through[0].1.cdf(), 0.99);
    let monitor_on_p99 = quantile_us(&monitored.cdf(), 0.99);
    let monitor_overhead_p99_us = monitor_on_p99 - monitor_off_p99;
    let monitor_overhead_p99_pct = if monitor_off_p99 > 0.0 {
        monitor_overhead_p99_us / monitor_off_p99 * 100.0
    } else {
        0.0
    };
    println!(
        "agent, monitored: {:>9.0} req/s  (monitor adds p99 {monitor_overhead_p99_us:+.1}us, {monitor_overhead_p99_pct:+.2}%)",
        monitored.throughput(),
    );

    // (6) The same monitored run with per-edge baselining and anomaly
    // scoring turned on: the delta against (5) is the scorer's cost.
    // It also runs off the hot path, so CI gates it like the monitor.
    let scored = run_monitored(
        backend.local_addr(),
        requests,
        monitor_spec
            .anomaly(AnomalyConfig::default().warmup_windows(2))
            .assert(StreamingAssertion::AnomalousEdge {
                src: "client".into(),
                dst: "server".into(),
            }),
    )?;
    let anomaly_off_p99 = quantile_us(&monitored.cdf(), 0.99);
    let anomaly_on_p99 = quantile_us(&scored.cdf(), 0.99);
    let anomaly_overhead_p99_us = anomaly_on_p99 - anomaly_off_p99;
    let anomaly_overhead_pct = if anomaly_off_p99 > 0.0 {
        anomaly_overhead_p99_us / anomaly_off_p99 * 100.0
    } else {
        0.0
    };
    println!(
        "agent, scored:    {:>9.0} req/s  (scorer adds p99 {anomaly_overhead_p99_us:+.1}us, {anomaly_overhead_pct:+.2}%)",
        scored.throughput(),
    );

    let output = serde_json::json!({
        "benchmark": "proxy_hot_path",
        "requests_per_setting": requests,
        "workers": WORKERS,
        "throughput_rps": through[0].1.throughput(),
        "p50_added_latency_us": (quantile_us(&through[0].1.cdf(), 0.5)
            - quantile_us(&direct_cdf, 0.5)).max(0.0),
        "p99_added_latency_us": (quantile_us(&through[0].1.cdf(), 0.99)
            - quantile_us(&direct_cdf, 0.99)).max(0.0),
        "direct": load_stats(&direct, None),
        "agent_0_rules": load_stats(&through[0].1, Some(&direct_cdf)),
        "agent_100_rules": load_stats(&through[1].1, Some(&direct_cdf)),
        "agent_tracing_off": load_stats(&tracing_off, Some(&direct_cdf)),
        "agent_monitored": load_stats(&monitored, Some(&direct_cdf)),
        "agent_anomaly_scored": load_stats(&scored, Some(&direct_cdf)),
        "tracing_overhead_p50_us": quantile_us(&through[0].1.cdf(), 0.5)
            - quantile_us(&tracing_off.cdf(), 0.5),
        "tracing_overhead_p99_us": quantile_us(&through[0].1.cdf(), 0.99)
            - quantile_us(&tracing_off.cdf(), 0.99),
        "monitor_overhead_p99_us": monitor_overhead_p99_us,
        "monitor_overhead_p99_pct": monitor_overhead_p99_pct,
        "anomaly_overhead_p99_us": anomaly_overhead_p99_us,
        "anomaly_overhead_pct": anomaly_overhead_pct,
        "rule_match": matching,
    });

    let path =
        std::env::var("GREMLIN_BENCH_OUT").unwrap_or_else(|_| "BENCH_proxy.json".to_string());
    std::fs::write(&path, serde_json::to_string_pretty(&output)?)?;
    println!("wrote {path}");
    Ok(())
}

//! Figure 7 — time to orchestrate an outage and run assertions as a
//! function of the number of services (paper §7.2).
//!
//! Setup, as in the paper: binary trees of depth 0..=4 (1, 3, 7, 15
//! and 31 services), a Delay fault impacting every service, 100 test
//! requests injected, then one assertion executed per service.
//!
//! Expected shape: orchestration and assertion times grow roughly
//! linearly with service count and stay far below one second; even
//! counting the 100 test requests, a whole test completes in about a
//! second.
//!
//! Run: `cargo run --release -p gremlin-bench --bin fig7_scaling`

use std::error::Error;
use std::time::{Duration, Instant};

use gremlin_bench::{build_tree, ms};
use gremlin_core::Scenario;
use gremlin_loadgen::LoadGenerator;
use gremlin_store::Pattern;

fn main() -> Result<(), Box<dyn Error>> {
    println!("Figure 7: orchestration + assertion time vs number of services\n");
    println!(
        "{:>9} | {:>8} | {:>13} | {:>12} | {:>12} | {:>12}",
        "services", "rules", "orchestration", "assertions", "load(100req)", "total"
    );

    let pattern = Pattern::new("test-*");
    let mut rows = Vec::new();
    for depth in 0..=4u32 {
        let services = (1usize << (depth + 1)) - 1;
        let (deployment, ctx) = build_tree(depth)?;
        let total_started = Instant::now();

        // Stage a Delay fault impacting every service: delay requests
        // into the root (every edge below is exercised by the tree
        // fan-out; for >1 service also delay every internal edge).
        let orch_started = Instant::now();
        let mut rules_installed = 0;
        // Delay on the user->root edge:
        let stats = ctx.inject(
            &Scenario::delay("user", "svc-0", Duration::from_millis(1)).with_pattern("test-*"),
        )?;
        rules_installed += stats.installations;
        // And on every internal edge (consistent Delay fault, §7.2).
        for (src, dst) in ctx.graph().edges() {
            if src == "user" {
                continue;
            }
            let stats = ctx.inject(
                &Scenario::delay(src, dst, Duration::from_millis(1)).with_pattern("test-*"),
            )?;
            rules_installed += stats.installations;
        }
        let orchestration = orch_started.elapsed();

        // Inject 100 test requests.
        let load_started = Instant::now();
        let report = LoadGenerator::new(deployment.entry_addr("svc-0").expect("entry"))
            .path("/tree")
            .id_prefix("test")
            .run_closed(4, 25);
        let load = load_started.elapsed();
        assert_eq!(report.successes(), 100, "all test requests must succeed");

        // Run an assertion for every service.
        let assert_started = Instant::now();
        let mut passed = 0;
        for service in ctx.graph().services() {
            if service == "user" {
                continue;
            }
            let check = ctx
                .checker()
                .has_timeouts(&service, Duration::from_secs(30), &pattern);
            if check.passed {
                passed += 1;
            }
        }
        let assertions = assert_started.elapsed();
        let total = total_started.elapsed();
        assert_eq!(passed, services, "every per-service assertion should pass");

        println!(
            "{:>9} | {:>8} | {:>13} | {:>12} | {:>12} | {:>12}",
            services,
            rules_installed,
            ms(orchestration),
            ms(assertions),
            ms(load),
            ms(total)
        );
        rows.push((services, orchestration, assertions, total));
    }

    println!("\nshape check (paper: low overhead, whole test ~1s at 31 services):");
    let (_, orch_31, assert_31, total_31) = rows.last().copied().expect("rows");
    println!(
        "  31 services: orchestration {} + assertions {} (paper reports ~0.15s combined); total {}",
        ms(orch_31),
        ms(assert_31),
        ms(total_31)
    );
    println!(
        "  verdict: {}",
        if orch_31 + assert_31 < Duration::from_secs(1) {
            "orchestration and assertions stay well under a second — matches the paper's Figure 7"
        } else {
            "overhead exceeds a second — investigate"
        }
    );
    Ok(())
}

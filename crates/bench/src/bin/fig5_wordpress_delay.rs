//! Figure 5 — CDFs of response times from WordPress, for injected
//! delays of 1 s, 2 s, 3 s and 4 s between WordPress and
//! Elasticsearch (paper §7.1).
//!
//! Expected shape: with no timeout pattern in ElasticPress, every
//! CDF's left edge sits exactly at the injected delay — "quickest
//! response times were dictated by the delay".
//!
//! Run: `cargo run --release -p gremlin-bench --bin fig5_wordpress_delay`
//! (`GREMLIN_SCALE=1` for paper-scale delays.)

use std::error::Error;
use std::time::Duration;

use gremlin_bench::{cdf_row, scaled};
use gremlin_core::{AppGraph, Scenario, TestContext};
use gremlin_loadgen::LoadGenerator;
use gremlin_mesh::behaviors::{FallbackSearch, StaticResponder};
use gremlin_mesh::{Deployment, ResiliencePolicy, ServiceSpec};

fn deploy() -> Result<(Deployment, TestContext), Box<dyn Error>> {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new(
            "elasticsearch",
            StaticResponder::ok("es-hits"),
        ))
        .service(ServiceSpec::new("mysql", StaticResponder::ok("sql-rows")))
        .service(
            ServiceSpec::new(
                "wordpress",
                FallbackSearch::new("elasticsearch", "mysql", "/search"),
            )
            .dependency("elasticsearch", ResiliencePolicy::new())
            .dependency("mysql", ResiliencePolicy::new()),
        )
        .ingress("user", "wordpress")
        .build()?;
    let graph = AppGraph::from_edges(vec![
        ("user", "wordpress"),
        ("wordpress", "elasticsearch"),
        ("wordpress", "mysql"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("Figure 5: WordPress response-time CDFs vs injected delay");
    println!(
        "(paper delays 1s/2s/3s/4s, scaled by GREMLIN_SCALE={})\n",
        gremlin_bench::time_scale()
    );

    let requests = 50;
    let mut floors = Vec::new();
    for paper_secs in [1u64, 2, 3, 4] {
        let injected = scaled(Duration::from_secs(paper_secs));
        let (deployment, ctx) = deploy()?;
        ctx.inject(
            &Scenario::delay("wordpress", "elasticsearch", injected).with_pattern("test-*"),
        )?;
        let report = LoadGenerator::new(deployment.entry_addr("wordpress").expect("entry"))
            .path("/search")
            .id_prefix("test")
            .read_timeout(Some(injected * 10 + Duration::from_secs(5)))
            .run_sequential(requests);
        let cdf = report.cdf();
        println!("{}", cdf_row(&format!("delay {paper_secs}s:"), &cdf));
        gremlin_bench::export_cdf_csv(&format!("fig5_delay_{paper_secs}s"), &cdf)?;
        let floor = report.summary().expect("non-empty").min;
        floors.push((injected, floor));
    }

    println!("\nshape check (paper: response floor == injected delay):");
    let mut all_hold = true;
    for (injected, floor) in floors {
        let holds = floor >= injected;
        all_hold &= holds;
        println!(
            "  injected {:>8} -> fastest response {:>8}  {}",
            gremlin_bench::ms(injected),
            gremlin_bench::ms(floor),
            if holds {
                "OK (no timeout pattern)"
            } else {
                "UNEXPECTED"
            }
        );
    }
    println!(
        "\nverdict: {}",
        if all_hold {
            "response times always offset by the injected delay — ElasticPress implements no timeout (matches paper)"
        } else {
            "some responses beat the injected delay — investigate"
        }
    );
    Ok(())
}

//! Fleet time-series benchmark: the three costs the observability
//! layer pays continuously during a monitored campaign.
//!
//! 1. **Ring append** — `TimeSeriesStore::append` under one `RwLock`
//!    write: the per-point cost of every scrape and local sample.
//! 2. **Range query** — `query_rate` + `histogram_quantile` over a
//!    populated store: what `GET /series` and `gremlin top` pay per
//!    frame.
//! 3. **Scrape cycle** — one synchronous [`Scraper`] pass over
//!    `GREMLIN_BENCH_TARGETS` live `/metrics` endpoints (default 32),
//!    each serving a realistic agent exposition: 4 routes of
//!    counters plus latency histograms. This is the fleet-wide
//!    collection heartbeat, so CI gates it under 50ms.
//!
//! Run: `cargo run --release -p gremlin-bench --bin bench_timeseries`
//!
//! Output: `BENCH_timeseries.json` in the working directory
//! (override with `GREMLIN_BENCH_OUT`).

use std::error::Error;
use std::sync::Arc;
use std::time::Instant;

use gremlin_http::{ConnInfo, HttpServer, Request, Response};
use gremlin_proxy::Scraper;
use gremlin_telemetry::{MetricsRegistry, TimeSeriesStore};

const S: u64 = 1_000_000;

/// A registry shaped like a real agent's: 4 downstream routes, each
/// with request/error counters and a populated latency histogram.
fn agent_registry(index: usize) -> Arc<MetricsRegistry> {
    let registry = MetricsRegistry::shared();
    let service = format!("svc{index}");
    for route in 0..4 {
        let dst = format!("dst{route}");
        let labels = [("service", service.as_str()), ("dst", dst.as_str())];
        registry
            .counter("gremlin_proxy_requests_total", "requests", &labels)
            .add(1_000 + index as u64);
        registry
            .counter("gremlin_proxy_upstream_errors_total", "errors", &labels)
            .add(index as u64 % 7);
        let histogram =
            registry.histogram("gremlin_proxy_upstream_latency_seconds", "latency", &labels);
        for sample in 0..64u64 {
            histogram.record_micros(500 + (sample * 137) % 20_000);
        }
    }
    registry
}

fn main() -> Result<(), Box<dyn Error>> {
    let targets: usize = std::env::var("GREMLIN_BENCH_TARGETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let points: usize = std::env::var("GREMLIN_BENCH_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    // --- 1. ring append ------------------------------------------------
    let store = TimeSeriesStore::new();
    let labels = vec![("service".to_string(), "web".to_string())];
    let series = 64.max(points / 4096);
    let appended = Instant::now();
    for point in 0..points {
        store.append(
            &format!("t{}", point % series),
            "bench_requests_total",
            &labels,
            (point / series) as u64 * 250_000 + S,
            point as f64,
        );
    }
    let append_ns = appended.elapsed().as_nanos() as f64 / points as f64;

    // --- 2. range queries over the populated store ---------------------
    let horizon = (points / series) as u64 * 250_000 + S;
    let queried = Instant::now();
    let query_rounds = 100;
    let mut rate_points = 0usize;
    for round in 0..query_rounds {
        let target = format!("t{}", round % series);
        for (_, window) in store.query_rate(
            "bench_requests_total",
            Some(&target),
            horizon.saturating_sub(60 * S),
            horizon,
        ) {
            rate_points += window.len();
        }
    }
    let query_us = queried.elapsed().as_micros() as f64 / query_rounds as f64;

    // --- 3. fleet scrape cycle -----------------------------------------
    let mut servers = Vec::with_capacity(targets);
    let scraper = Scraper::new(TimeSeriesStore::shared());
    for index in 0..targets {
        let registry = agent_registry(index);
        let server = HttpServer::bind("127.0.0.1:0", move |_req: Request, _conn: &ConnInfo| {
            Response::ok(registry.render_prometheus())
        })?;
        scraper.add_target(&format!("svc{index}"), server.local_addr().to_string());
        servers.push(server);
    }
    // One warmup pass (connection + allocator noise), then timed cycles.
    assert_eq!(scraper.scrape_at(S), targets, "warmup scrape failed");
    let cycles = 5u64;
    let scraped = Instant::now();
    for cycle in 0..cycles {
        let up = scraper.scrape_at((cycle + 2) * S);
        assert_eq!(up, targets, "scrape cycle lost targets");
    }
    let scrape_cycle_ms = scraped.elapsed().as_secs_f64() * 1e3 / cycles as f64;
    let fleet_points = scraper.store().point_count();

    println!(
        "timeseries: append {append_ns:.0}ns/point ({points} points, {series} series), \
         range query {query_us:.0}us ({rate_points} rate points), \
         {targets}-target scrape cycle {scrape_cycle_ms:.2}ms ({fleet_points} points)"
    );

    let output = serde_json::json!({
        "benchmark": "fleet_timeseries",
        "points": points,
        "series": series,
        "append_ns_per_point": append_ns,
        "query_rounds": query_rounds,
        "query_us_per_round": query_us,
        "rate_points": rate_points,
        "targets": targets,
        "scrape_cycles": cycles,
        "scrape_cycle_ms": scrape_cycle_ms,
        "fleet_points": fleet_points,
        "fleet_series": scraper.store().series_count(),
    });
    let path =
        std::env::var("GREMLIN_BENCH_OUT").unwrap_or_else(|_| "BENCH_timeseries.json".to_string());
    std::fs::write(&path, serde_json::to_string_pretty(&output)?)?;
    println!("wrote {path}");
    Ok(())
}

//! Figure 8 — worst-case overhead of rule matching in the Gremlin
//! agent (paper §7.2).
//!
//! Setup, as in the paper: complete a series of HTTP requests to a
//! server through the service proxy with different numbers of rules
//! installed, in the worst case — request IDs are compared against
//! every rule without matching any, prior to being forwarded.
//!
//! Expected shape: per-request time grows with the rule count; the
//! growth is dominated by pattern comparison (the paper suggests
//! prefix-structured IDs as the optimization — see the
//! `rule_matching` criterion bench for that ablation).
//!
//! Run: `cargo run --release -p gremlin-bench --bin fig8_proxy_overhead`

use std::error::Error;
use std::time::{Duration, Instant};

use gremlin_bench::cdf_row;
use gremlin_http::{ConnInfo, HttpServer, Request, Response};
use gremlin_loadgen::{Cdf, LoadGenerator};
use gremlin_proxy::{AbortKind, AgentConfig, GremlinAgent, MessageSide, Rule, RuleTable};
use gremlin_store::EventStore;

/// Part (a): the paper's exact measurement — per-request matching
/// cost in isolation, 10 000 worst-case lookups per rule count.
///
/// Our glob matcher runs in nanoseconds where the paper's Go
/// implementation took milliseconds, so this is where Figure 8's
/// monotone growth is visible.
fn direct_matching(rule_counts: &[usize], lookups: usize) {
    println!("--- (a) rule-matching cost in isolation, {lookups} worst-case lookups ---");
    let mut medians = Vec::new();
    for &rules in rule_counts {
        let table = RuleTable::new();
        table
            .install(
                (0..rules)
                    .map(|index| {
                        Rule::abort("client", "server", AbortKind::Status(503))
                            .with_pattern(format!("nomatch-{index}-*?suffix").as_str())
                    })
                    .collect(),
            )
            .expect("valid rules");
        let mut samples = Vec::with_capacity(lookups);
        for i in 0..lookups {
            let id = format!("test-{i}");
            let started = Instant::now();
            let hit = table.match_message("client", "server", MessageSide::Request, Some(&id));
            samples.push(started.elapsed());
            assert!(hit.is_none());
        }
        let cdf = Cdf::from_latencies(&samples);
        let median = cdf.quantile(0.5).expect("non-empty");
        println!(
            "{:>6} rules: median {:>9.3}us  p90 {:>9.3}us  p99 {:>9.3}us",
            rules,
            median.as_secs_f64() * 1e6,
            cdf.quantile(0.9).expect("non-empty").as_secs_f64() * 1e6,
            cdf.quantile(0.99).expect("non-empty").as_secs_f64() * 1e6,
        );
        medians.push((rules, median));
    }
    let (_, first) = medians[1]; // skip the 0-rule floor
    let (_, last) = *medians.last().expect("non-empty");
    println!(
        "shape: median grows {:.3}us -> {:.3}us from {} to {} rules — {}\n",
        first.as_secs_f64() * 1e6,
        last.as_secs_f64() * 1e6,
        medians[1].0,
        medians.last().unwrap().0,
        if last > first {
            "monotone growth, matches Figure 8"
        } else {
            "no growth (matcher below timer resolution)"
        }
    );
}

fn main() -> Result<(), Box<dyn Error>> {
    let requests_total = 10_000;
    // The paper installs up to a few hundred rules; we extend the
    // sweep upward because our matcher is orders of magnitude
    // faster and the end-to-end effect only emerges at higher counts.
    let rule_counts = [0usize, 1, 5, 10, 50, 100, 200, 2_000, 20_000];
    println!(
        "Figure 8: worst-case rule matching overhead, {requests_total} requests per setting\n"
    );

    direct_matching(&rule_counts, requests_total);

    println!("--- (b) end-to-end through the proxy (paper's setup) ---");

    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("ok")
    })?;

    let mut medians = Vec::new();
    for &rules in &rule_counts {
        // Fresh agent per setting so connection state is comparable.
        let store = EventStore::shared();
        let agent = GremlinAgent::start(
            AgentConfig::new("client").route("server", vec![backend.local_addr()]),
            store,
        )?;
        // Install non-matching rules: the glob pattern shares no
        // prefix with the `test-*` IDs the load uses, so every
        // request is compared against all of them and matches none.
        let batch: Vec<Rule> = (0..rules)
            .map(|index| {
                Rule::abort("client", "server", AbortKind::Status(503))
                    .with_pattern(format!("nomatch-{index}-*?suffix").as_str())
            })
            .collect();
        agent.install_rules(batch)?;

        let report = LoadGenerator::new(agent.route_addr("server").expect("route"))
            .id_prefix("test")
            .run_closed(4, requests_total / 4);
        assert_eq!(report.successes(), requests_total);
        assert_eq!(agent.rule_hits(), 0, "worst case: no rule may match");

        let cdf = report.cdf();
        println!("{}", cdf_row(&format!("{rules:>4} rules:"), &cdf));
        gremlin_bench::export_cdf_csv(&format!("fig8_e2e_{rules}_rules"), &cdf)?;
        medians.push((rules, cdf.quantile(0.5).expect("non-empty")));
    }

    println!("\nshape check (paper: overhead grows with the number of installed rules):");
    for window in medians.windows(2) {
        let (rules_a, median_a) = window[0];
        let (rules_b, median_b) = window[1];
        println!(
            "  {rules_a:>4} -> {rules_b:>4} rules: median {} -> {}",
            gremlin_bench::ms(median_a),
            gremlin_bench::ms(median_b)
        );
    }
    let (_, first) = medians[0];
    let (_, last) = *medians.last().expect("non-empty");
    println!(
        "  verdict: {}",
        if last >= first + Duration::from_micros(100) {
            "per-request latency grows with rule count once matching work rivals the network floor — Figure 8's shape"
        } else {
            "growth hides below network jitter at low rule counts (our matcher is ~1000x faster than the paper's); see part (a) for the isolated cost"
        }
    );
    Ok(())
}

//! Figure 6 — CDFs of WordPress response times: first 100 aborted
//! requests, then 100 requests delayed by 3 s (paper §7.1).
//!
//! Expected shape: with no circuit breaker, *none* of the delayed
//! requests return before the injected delay. A contrast run with a
//! correct breaker shows the opposite — a portion of the requests
//! returns immediately.
//!
//! Run: `cargo run --release -p gremlin-bench --bin fig6_circuit_breaker`

use std::error::Error;
use std::time::Duration;

use gremlin_bench::{cdf_row, scaled};
use gremlin_core::{AppGraph, Scenario, TestContext};
use gremlin_loadgen::{LoadGenerator, LoadReport};
use gremlin_mesh::behaviors::{FallbackSearch, StaticResponder};
use gremlin_mesh::resilience::CircuitBreakerConfig;
use gremlin_mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin_store::Pattern;

fn deploy(es_policy: ResiliencePolicy) -> Result<(Deployment, TestContext), Box<dyn Error>> {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new(
            "elasticsearch",
            StaticResponder::ok("es-hits"),
        ))
        .service(ServiceSpec::new("mysql", StaticResponder::ok("sql-rows")))
        .service(
            ServiceSpec::new(
                "wordpress",
                FallbackSearch::new("elasticsearch", "mysql", "/search"),
            )
            .dependency("elasticsearch", es_policy)
            .dependency("mysql", ResiliencePolicy::new()),
        )
        .ingress("user", "wordpress")
        .build()?;
    let graph = AppGraph::from_edges(vec![
        ("user", "wordpress"),
        ("wordpress", "elasticsearch"),
        ("wordpress", "mysql"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

struct RunOutput {
    aborted: LoadReport,
    delayed: LoadReport,
    fast_delayed: usize,
    breaker_check_passed: bool,
}

fn run(es_policy: ResiliencePolicy, delay: Duration) -> Result<RunOutput, Box<dyn Error>> {
    let (deployment, ctx) = deploy(es_policy)?;
    let generator = LoadGenerator::new(deployment.entry_addr("wordpress").expect("entry"))
        .path("/search")
        .id_prefix("test")
        .read_timeout(Some(delay * 10 + Duration::from_secs(5)));

    // Phase 1: 100 consecutive aborted requests.
    ctx.inject(&Scenario::abort("wordpress", "elasticsearch", 503).with_pattern("test-*"))?;
    let aborted = generator.clone().run_sequential(100);

    // Phase 2: the next 100 requests delayed.
    ctx.clear_faults()?;
    ctx.inject(&Scenario::delay("wordpress", "elasticsearch", delay).with_pattern("test-*"))?;
    let delayed = generator.run_sequential(100);
    let fast_delayed = delayed.latencies().iter().filter(|l| **l < delay).count();

    let check = ctx.checker().has_circuit_breaker(
        "wordpress",
        "elasticsearch",
        100,
        Duration::from_secs(30),
        1,
        &Pattern::new("test-*"),
    );
    Ok(RunOutput {
        aborted,
        delayed,
        fast_delayed,
        breaker_check_passed: check.passed,
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    let delay = scaled(Duration::from_secs(3));
    println!(
        "Figure 6: 100 aborted then 100 delayed requests (paper delay 3s, scaled to {})\n",
        gremlin_bench::ms(delay)
    );

    println!("--- ElasticPress as shipped (no circuit breaker) ---");
    let shipped = run(ResiliencePolicy::new(), delay)?;
    println!("{}", cdf_row("aborted:", &shipped.aborted.cdf()));
    println!("{}", cdf_row("delayed:", &shipped.delayed.cdf()));
    gremlin_bench::export_cdf_csv("fig6_no_breaker_aborted", &shipped.aborted.cdf())?;
    gremlin_bench::export_cdf_csv("fig6_no_breaker_delayed", &shipped.delayed.cdf())?;
    println!(
        "delayed requests returning before the delay: {} / {} (paper: 0)",
        shipped.fast_delayed,
        shipped.delayed.len()
    );
    println!(
        "HasCircuitBreaker assertion: {}\n",
        if shipped.breaker_check_passed {
            "PASS (unexpected)"
        } else {
            "FAIL (matches paper)"
        }
    );

    println!("--- contrast: same plugin with a correct circuit breaker ---");
    let fixed = run(
        ResiliencePolicy::new().circuit_breaker(CircuitBreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_secs(60),
            success_threshold: 1,
        }),
        delay,
    )?;
    println!("{}", cdf_row("aborted:", &fixed.aborted.cdf()));
    println!("{}", cdf_row("delayed:", &fixed.delayed.cdf()));
    println!(
        "delayed requests returning before the delay: {} / {} (breaker short-circuits)",
        fixed.fast_delayed,
        fixed.delayed.len()
    );

    println!(
        "\nverdict: {}",
        if shipped.fast_delayed == 0 && fixed.fast_delayed > 0 {
            "no delayed request returned early without a breaker; with one, requests short-circuit — matches the paper's Figure 6 finding"
        } else {
            "unexpected shape — investigate"
        }
    );
    Ok(())
}

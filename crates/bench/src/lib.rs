//! # gremlin-bench
//!
//! The benchmark harness regenerating every figure of the Gremlin
//! paper's evaluation (§7.2), plus the ablation benches called out in
//! `DESIGN.md`.
//!
//! Figure binaries (run with `cargo run --release -p gremlin-bench
//! --bin <name>`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig5_wordpress_delay` | Fig. 5 — WordPress response-time CDFs under injected delay |
//! | `fig6_circuit_breaker` | Fig. 6 — aborted batch then delayed batch, breaker absent vs present |
//! | `fig7_scaling` | Fig. 7 — orchestration + assertion time vs number of services |
//! | `fig8_proxy_overhead` | Fig. 8 — worst-case rule-matching overhead CDFs |
//!
//! Criterion benches (`cargo bench -p gremlin-bench`) cover the hot
//! paths behind those figures: rule matching, pattern matching,
//! store queries, the HTTP codec, and scenario translation.
//!
//! Experiments scale with the `GREMLIN_SCALE` environment variable
//! (default `0.1`, i.e. delays are 10% of the paper's to keep runs
//! fast; set `GREMLIN_SCALE=1` for paper-scale parameters).

#![warn(missing_docs)]

use std::time::Duration;

use gremlin_core::{AppGraph, TestContext};
use gremlin_loadgen::Cdf;
use gremlin_mesh::behaviors::TreeNode;
use gremlin_mesh::{Deployment, MeshError, ResiliencePolicy, ServiceSpec};

/// The time-scale factor for experiments (`GREMLIN_SCALE`, default
/// 0.1). Multiply paper durations by this to get run durations.
pub fn time_scale() -> f64 {
    std::env::var("GREMLIN_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(0.1)
}

/// Scales a paper-reported duration by [`time_scale`].
pub fn scaled(paper: Duration) -> Duration {
    paper.mul_f64(time_scale())
}

/// Builds the §7.2 benchmark application: a complete binary tree of
/// services of the given depth (depth 0..=4 gives 1, 3, 7, 15, 31
/// services), each node calling its children, all edges proxied by
/// Gremlin agents, with a `user` ingress at the root.
///
/// # Errors
///
/// Returns an error if the deployment fails to start.
pub fn build_tree(depth: u32) -> Result<(Deployment, TestContext), MeshError> {
    let tree = AppGraph::binary_tree(depth);
    let mut builder = Deployment::builder();
    // Start leaves before parents so dependency instances exist; the
    // deployment registers services before agents, so ordering only
    // needs services themselves — any order works. Iterate by index
    // descending for clarity.
    let mut names: Vec<String> = tree.services();
    names.sort_by_key(|name| {
        std::cmp::Reverse(
            name.trim_start_matches("svc-")
                .parse::<usize>()
                .unwrap_or(0),
        )
    });
    for name in &names {
        let children = tree.dependencies(name);
        let mut spec = ServiceSpec::new(name.clone(), TreeNode::new(children.clone()));
        for child in children {
            spec = spec.dependency(
                child,
                ResiliencePolicy::new().timeout(Duration::from_secs(10)),
            );
        }
        builder = builder.service(spec);
    }
    let deployment = builder.ingress("user", "svc-0").build()?;

    let mut graph = tree;
    graph.add_edge("user", "svc-0");
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

/// Formats a CDF as the fixed-quantile row the figure binaries print.
pub fn cdf_row(label: &str, cdf: &Cdf) -> String {
    let mut row = format!("{label:<14}");
    if cdf.is_empty() {
        row.push_str(" (no samples)");
        return row;
    }
    for (q, latency) in cdf.to_rows(10) {
        row.push_str(&format!(
            " {:>7.1}ms@{:>3.0}%",
            latency.as_secs_f64() * 1000.0,
            q * 100.0
        ));
    }
    row
}

/// Pretty-prints a millisecond duration with two decimals.
pub fn ms(duration: Duration) -> String {
    format!("{:.2}ms", duration.as_secs_f64() * 1000.0)
}

/// Writes CDF samples to `$GREMLIN_CSV_DIR/<name>.csv` (one
/// `latency_us,fraction` row per sample) so the figures can be
/// re-plotted externally. A no-op when the variable is unset.
///
/// # Errors
///
/// Returns I/O errors when the directory is set but unwritable.
pub fn export_cdf_csv(name: &str, cdf: &Cdf) -> std::io::Result<Option<std::path::PathBuf>> {
    let Ok(dir) = std::env::var("GREMLIN_CSV_DIR") else {
        return Ok(None);
    };
    std::fs::create_dir_all(&dir)?;
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    let mut body = String::from("latency_us,fraction\n");
    for (latency, fraction) in cdf.points() {
        body.push_str(&format!("{},{fraction}\n", latency.as_micros()));
    }
    std::fs::write(&path, body)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_loadgen::LoadGenerator;

    #[test]
    fn scale_defaults() {
        // Do not mutate the environment (tests run concurrently);
        // just sanity-check the default path.
        let scale = time_scale();
        assert!(scale > 0.0);
        assert_eq!(
            scaled(Duration::from_secs(1)),
            Duration::from_secs(1).mul_f64(scale)
        );
    }

    #[test]
    fn tree_deployment_traverses_fully() {
        let (deployment, ctx) = build_tree(2).unwrap();
        assert_eq!(ctx.graph().services().len(), 8); // 7 + user
        let report = LoadGenerator::new(deployment.entry_addr("svc-0").unwrap())
            .path("/tree")
            .id_prefix("test")
            .run_sequential(3);
        assert_eq!(report.successes(), 3);
        // Root reports 6 descendants.
        let resp = deployment.call_with_id("svc-0", "/tree", "test-x").unwrap();
        assert_eq!(resp.body_str(), "6");
    }

    #[test]
    fn cdf_row_formats() {
        let cdf = Cdf::from_latencies(&[Duration::from_millis(5), Duration::from_millis(10)]);
        let row = cdf_row("x", &cdf);
        assert!(row.contains("ms@"));
        let empty = cdf_row("y", &Cdf::from_latencies(&[]));
        assert!(empty.contains("no samples"));
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00ms");
    }
}

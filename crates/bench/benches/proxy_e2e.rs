//! End-to-end Criterion benches over real sockets: what a request
//! pays for passing through a Gremlin agent, with and without rules
//! installed, versus talking to the backend directly.

use std::net::SocketAddr;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gremlin_http::{ConnInfo, HttpClient, HttpServer, Request, Response};
use gremlin_proxy::{AbortKind, AgentConfig, GremlinAgent, Rule};
use gremlin_store::EventStore;

struct Rig {
    _backend: HttpServer,
    agent: GremlinAgent,
    client: HttpClient,
    direct: SocketAddr,
}

fn rig() -> Rig {
    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("ok")
    })
    .expect("backend");
    let agent = GremlinAgent::start(
        AgentConfig::new("client").route("server", vec![backend.local_addr()]),
        EventStore::shared(),
    )
    .expect("agent");
    let direct = backend.local_addr();
    Rig {
        _backend: backend,
        agent,
        client: HttpClient::new(),
        direct,
    }
}

fn request() -> Request {
    Request::builder(gremlin_http::Method::Get, "/bench")
        .request_id("test-bench")
        .build()
}

/// Baseline: the backend without any proxy in the path.
fn bench_direct(c: &mut Criterion) {
    let rig = rig();
    let mut group = c.benchmark_group("proxy_e2e");
    group.sample_size(30);
    group.bench_function("direct_backend", |b| {
        b.iter(|| std::hint::black_box(rig.client.send(rig.direct, request()).expect("send")))
    });
    group.finish();
}

/// Through the agent with varying rule counts (none matching).
fn bench_through_agent(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy_e2e/through_agent");
    group.sample_size(30);
    for &rules in &[0usize, 100, 10_000] {
        let rig = rig();
        rig.agent
            .install_rules(
                (0..rules)
                    .map(|i| {
                        Rule::abort("client", "server", AbortKind::Status(503))
                            .with_pattern(format!("nomatch-{i}-*?x").as_str())
                    })
                    .collect(),
            )
            .expect("install");
        let addr = rig.agent.route_addr("server").expect("route");
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rig, |b, rig| {
            b.iter(|| std::hint::black_box(rig.client.send(addr, request()).expect("send")))
        });
    }
    group.finish();
}

/// The cost of a synthesized abort (no backend round-trip at all).
fn bench_abort_short_circuit(c: &mut Criterion) {
    let rig = rig();
    rig.agent
        .install_rules(vec![Rule::abort(
            "client",
            "server",
            AbortKind::Status(503),
        )
        .with_pattern("test-*")])
        .expect("install");
    let addr = rig.agent.route_addr("server").expect("route");
    let mut group = c.benchmark_group("proxy_e2e");
    group.sample_size(30);
    group.bench_function("synthesized_abort", |b| {
        b.iter(|| std::hint::black_box(rig.client.send(addr, request()).expect("send")))
    });
    group.finish();
}

/// Delay rules: the injected interval should dominate; measured to
/// confirm injection accuracy at bench granularity.
fn bench_delay_accuracy(c: &mut Criterion) {
    let rig = rig();
    rig.agent
        .install_rules(vec![Rule::delay(
            "client",
            "server",
            Duration::from_millis(2),
        )
        .with_pattern("test-*")])
        .expect("install");
    let addr = rig.agent.route_addr("server").expect("route");
    let mut group = c.benchmark_group("proxy_e2e");
    group.sample_size(20);
    group.bench_function("delay_2ms_injection", |b| {
        b.iter(|| std::hint::black_box(rig.client.send(addr, request()).expect("send")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_direct,
    bench_through_agent,
    bench_abort_short_circuit,
    bench_delay_accuracy
);
criterion_main!(benches);

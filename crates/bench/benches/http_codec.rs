//! Criterion benches for the HTTP codec — the per-message cost floor
//! of everything the data plane does.

use std::io::BufReader;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gremlin_http::codec::{read_request, read_response, write_request, write_response};
use gremlin_http::{Method, Request, Response, StatusCode};

fn sample_request(body_size: usize) -> Vec<u8> {
    let request = Request::builder(Method::Post, "/api/v1/search?q=payments&limit=10")
        .header("Host", "catalog.internal")
        .header("Accept", "application/json")
        .header("User-Agent", "gremlin-bench/0.1")
        .request_id("test-123456")
        .body("x".repeat(body_size))
        .build();
    let mut buf = Vec::new();
    write_request(&mut buf, &request).unwrap();
    buf
}

fn sample_response(body_size: usize) -> Vec<u8> {
    let response = Response::builder(StatusCode::OK)
        .header("Content-Type", "application/json")
        .header("Server", "gremlin-mesh")
        .request_id("test-123456")
        .body("y".repeat(body_size))
        .build();
    let mut buf = Vec::new();
    write_response(&mut buf, &response).unwrap();
    buf
}

fn bench_parse_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/parse_request");
    for &body in &[0usize, 256, 4096, 65536] {
        let raw = sample_request(body);
        group.throughput(Throughput::Bytes(raw.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(body), &raw, |b, raw| {
            b.iter(|| {
                let mut reader = BufReader::new(&raw[..]);
                std::hint::black_box(read_request(&mut reader).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_parse_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/parse_response");
    for &body in &[0usize, 4096] {
        let raw = sample_response(body);
        group.throughput(Throughput::Bytes(raw.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(body), &raw, |b, raw| {
            b.iter(|| {
                let mut reader = BufReader::new(&raw[..]);
                std::hint::black_box(read_response(&mut reader).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let request = Request::builder(Method::Get, "/api/v1/items")
        .header("Host", "svc")
        .request_id("test-1")
        .build();
    c.bench_function("codec/write_request", |b| {
        let mut buf = Vec::with_capacity(512);
        b.iter(|| {
            buf.clear();
            write_request(&mut buf, &request).unwrap();
            std::hint::black_box(buf.len())
        })
    });
    let response = Response::ok("0123456789abcdef");
    c.bench_function("codec/write_response", |b| {
        let mut buf = Vec::with_capacity(512);
        b.iter(|| {
            buf.clear();
            write_response(&mut buf, &response).unwrap();
            std::hint::black_box(buf.len())
        })
    });
}

fn bench_chunked_body(c: &mut Criterion) {
    // A chunked response re-framed by the codec.
    let mut raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    for _ in 0..64 {
        raw.extend_from_slice(b"40\r\n");
        raw.extend_from_slice(&[b'z'; 0x40]);
        raw.extend_from_slice(b"\r\n");
    }
    raw.extend_from_slice(b"0\r\n\r\n");
    c.bench_function("codec/parse_chunked_response", |b| {
        b.iter(|| {
            let mut reader = BufReader::new(&raw[..]);
            std::hint::black_box(read_response(&mut reader).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_parse_request,
    bench_parse_response,
    bench_serialize,
    bench_chunked_body
);
criterion_main!(benches);

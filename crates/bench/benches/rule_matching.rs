//! Criterion benches behind Figure 8: the agent's rule-matching hot
//! path, including the ablation the paper's §7.2 suggests —
//! structured (prefix) request IDs vs full glob comparison.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gremlin_proxy::{AbortKind, MessageSide, Rule, RuleTable};
use gremlin_store::Pattern;

/// Worst case (Figure 8): the request is compared against all
/// installed rules and matches none.
fn bench_no_match_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_table/no_match_scan");
    for rules in [1usize, 5, 10, 50, 100, 200] {
        let table = RuleTable::new();
        table
            .install(
                (0..rules)
                    .map(|i| {
                        Rule::abort("a", "b", AbortKind::Status(503))
                            .with_pattern(format!("nomatch-{i}-*?x").as_str())
                    })
                    .collect(),
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rules), &table, |b, table| {
            b.iter(|| {
                std::hint::black_box(table.match_message(
                    "a",
                    "b",
                    MessageSide::Request,
                    Some("test-12345"),
                ))
            })
        });
    }
    group.finish();
}

/// First-rule hit: the cost floor of a match.
fn bench_first_hit(c: &mut Criterion) {
    let table = RuleTable::new();
    table
        .install(vec![
            Rule::abort("a", "b", AbortKind::Status(503)).with_pattern("test-*")
        ])
        .unwrap();
    c.bench_function("rule_table/first_hit", |b| {
        b.iter(|| {
            std::hint::black_box(table.match_message(
                "a",
                "b",
                MessageSide::Request,
                Some("test-12345"),
            ))
        })
    });
}

/// Ablation: pattern-compilation fast paths. Prefix-classified
/// patterns (structured IDs, the paper's suggested optimization)
/// versus general glob matching of equivalent selectivity.
fn bench_pattern_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern/forms");
    let id = "test-abcdef-0123456789";
    let cases = [
        ("exact", Pattern::new("test-abcdef-0123456789")),
        ("prefix", Pattern::new("test-abcdef-*")),
        ("glob", Pattern::new("test-*-0123456789")),
        ("glob_heavy", Pattern::new("*e*t*-*c*e*-??2*9")),
        ("any", Pattern::Any),
    ];
    for (name, pattern) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pattern, |b, pattern| {
            b.iter(|| std::hint::black_box(pattern.matches(std::hint::black_box(id))))
        });
    }
    group.finish();
}

/// Probability sampling cost when rules carry fractional
/// probabilities (Overload's 25% abort split).
fn bench_probabilistic_match(c: &mut Criterion) {
    let table = RuleTable::with_seed(7);
    table
        .install(vec![
            Rule::abort("a", "b", AbortKind::Status(503))
                .with_pattern("test-*")
                .with_probability(0.25),
            Rule::delay("a", "b", Duration::from_millis(100)).with_pattern("test-*"),
        ])
        .unwrap();
    c.bench_function("rule_table/probabilistic_fallback", |b| {
        b.iter(|| {
            std::hint::black_box(table.match_message(
                "a",
                "b",
                MessageSide::Request,
                Some("test-1"),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_no_match_scan,
    bench_first_hit,
    bench_pattern_forms,
    bench_probabilistic_match
);
criterion_main!(benches);

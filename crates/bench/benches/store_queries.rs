//! Criterion benches for the observation store: the query path the
//! Assertion Checker depends on, with the DESIGN.md ablation —
//! edge-indexed retrieval vs a full scan.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gremlin_store::{Event, EventStore, Pattern, Query};

/// Populates a store with `events` observations spread over
/// `edges` distinct service pairs.
fn populate(events: usize, edges: usize) -> EventStore {
    let store = EventStore::new();
    for index in 0..events {
        let edge = index % edges;
        let src = format!("svc-{edge}");
        let dst = format!("svc-{}", edge + 1);
        let event = if index % 2 == 0 {
            Event::request(src, dst, "GET", "/api")
        } else {
            Event::response(src, dst, 200, Duration::from_millis(3))
        }
        .with_request_id(format!("test-{index}"))
        .with_timestamp(index as u64);
        store.record_event(event);
    }
    store
}

/// Indexed path: src+dst named, the edge index narrows the scan.
fn bench_indexed_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/indexed_edge_query");
    for &events in &[1_000usize, 10_000, 100_000] {
        let store = populate(events, 16);
        let query = Query::requests("svc-3", "svc-4").with_id_pattern(Pattern::new("test-*"));
        group.bench_with_input(BenchmarkId::from_parameter(events), &store, |b, store| {
            b.iter(|| std::hint::black_box(store.query(&query)))
        });
    }
    group.finish();
}

/// Ablation: the same retrieval without the index (src unset forces a
/// full scan with a src filter via the pattern instead).
fn bench_full_scan_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/full_scan_query");
    for &events in &[1_000usize, 10_000, 100_000] {
        let store = populate(events, 16);
        // No src/dst: the store must scan everything.
        let query = Query {
            kind: gremlin_store::KindFilter::Requests,
            id_pattern: Some(Pattern::new("test-1*")),
            ..Query::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(events), &store, |b, store| {
            b.iter(|| std::hint::black_box(store.query(&query)))
        });
    }
    group.finish();
}

/// Count-only queries avoid materializing events.
fn bench_count(c: &mut Criterion) {
    let store = populate(100_000, 16);
    let query = Query::requests("svc-3", "svc-4");
    c.bench_function("store/count_vs_query", |b| {
        b.iter(|| std::hint::black_box(store.count(&query)))
    });
}

/// Append throughput: the data plane's logging hot path.
fn bench_append(c: &mut Criterion) {
    c.bench_function("store/append", |b| {
        let store = EventStore::new();
        let mut index = 0u64;
        b.iter(|| {
            index += 1;
            store.record_event(
                Event::request("a", "b", "GET", "/x")
                    .with_request_id("test-1")
                    .with_timestamp(index),
            );
        })
    });
}

/// Batched append: the collector's ingest path (one sequence
/// reservation and one lock per shard per batch).
fn bench_append_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/append_batch");
    for &batch in &[16usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let store = EventStore::new();
            let mut index = 0u64;
            b.iter(|| {
                let events: Vec<Event> = (0..batch)
                    .map(|offset| {
                        Event::request("a", "b", "GET", "/x")
                            .with_request_id("test-1")
                            .with_timestamp(index + offset as u64)
                    })
                    .collect();
                index += batch as u64;
                store.record_batch(events);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_indexed_query,
    bench_full_scan_query,
    bench_count,
    bench_append,
    bench_append_batch
);
criterion_main!(benches);

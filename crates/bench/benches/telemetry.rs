//! Criterion benches for the telemetry hot path: what one histogram
//! `record` costs on the proxy's per-message path, and what scraping
//! (snapshot + render) costs off it.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gremlin_telemetry::{LatencyHistogram, MetricsRegistry};

/// Deterministic latencies spread across the histogram's range
/// (sub-ms to tens of seconds) so every bench run touches the same
/// buckets.
fn sample_latencies(n: usize) -> Vec<u64> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 1µs .. ~16s, log-ish spread.
            1 + (state >> 40) % 16_000_000
        })
        .collect()
}

/// The per-message cost: one `record` on a shared histogram.
fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/record");
    group.throughput(Throughput::Elements(1));
    let histogram = LatencyHistogram::new();
    let latencies = sample_latencies(1024);
    let mut i = 0;
    group.bench_function("record_micros", |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            histogram.record_micros(std::hint::black_box(latencies[i]));
        })
    });
    group.bench_function("record_duration", |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            histogram.record(std::hint::black_box(Duration::from_micros(latencies[i])));
        })
    });
    // Contended: the same histogram hammered from several threads, as
    // when many proxy workers share one route series.
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("record_contended", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let histogram = Arc::new(LatencyHistogram::new());
                    let start = std::time::Instant::now();
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let histogram = Arc::clone(&histogram);
                            std::thread::spawn(move || {
                                for v in 0..iters {
                                    histogram.record_micros(std::hint::black_box(v % 1000));
                                }
                            })
                        })
                        .collect();
                    for handle in handles {
                        handle.join().unwrap();
                    }
                    start.elapsed() / threads as u32
                })
            },
        );
    }
    group.finish();
}

/// The scrape path: snapshotting a populated histogram and computing
/// percentiles from it.
fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/snapshot");
    let histogram = LatencyHistogram::new();
    for v in sample_latencies(100_000) {
        histogram.record_micros(v);
    }
    group.bench_function("histogram_snapshot", |b| {
        b.iter(|| std::hint::black_box(histogram.snapshot()))
    });
    let snapshot = histogram.snapshot();
    group.bench_function("percentiles_p50_p90_p99", |b| {
        b.iter(|| {
            std::hint::black_box((snapshot.p50(), snapshot.p90(), snapshot.p99()));
        })
    });
    group.finish();
}

/// A registry shaped like a live deployment's: full snapshot and
/// Prometheus rendering, which is what a `GET /metrics` costs.
fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/render");
    for services in [4usize, 16] {
        let registry = MetricsRegistry::new();
        for s in 0..services {
            let service = format!("svc-{s}");
            let labels = [("service", service.as_str()), ("dst", "db")];
            registry
                .counter("gremlin_proxy_requests_total", "Requests.", &labels)
                .add(1000);
            let histogram = registry.histogram(
                "gremlin_proxy_upstream_latency_seconds",
                "Latency.",
                &labels,
            );
            for v in sample_latencies(1000) {
                histogram.record_micros(v);
            }
        }
        group.bench_with_input(
            BenchmarkId::new("registry_snapshot", services),
            &registry,
            |b, registry| b.iter(|| std::hint::black_box(registry.snapshot())),
        );
        group.bench_with_input(
            BenchmarkId::new("render_prometheus", services),
            &registry,
            |b, registry| b.iter(|| std::hint::black_box(registry.render_prometheus())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_record, bench_snapshot, bench_render);
criterion_main!(benches);

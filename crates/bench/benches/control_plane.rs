//! Criterion benches for the control plane — the translation and
//! assertion-evaluation costs behind Figure 7, without sockets.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gremlin_core::{
    combine, AppGraph, AssertionChecker, CombineStep, FailureOrchestrator, Scenario, View,
};
use gremlin_proxy::{AgentControl, ProxyError, Rule};
use gremlin_store::{Event, EventStore, Pattern};

/// A no-op agent so orchestration benches measure fleet fan-out, not
/// sockets.
struct NullAgent {
    service: String,
}

impl AgentControl for NullAgent {
    fn service_name(&self) -> String {
        self.service.clone()
    }
    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
        std::hint::black_box(rules);
        Ok(())
    }
    fn clear_rules(&self) -> Result<(), ProxyError> {
        Ok(())
    }
    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
        Ok(Vec::new())
    }
}

/// Scenario translation over binary trees of growing size.
fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("control/translate_crash");
    for depth in [1u32, 2, 3, 4, 6] {
        let graph = AppGraph::binary_tree(depth);
        // Crash an internal node with two dependents plus fan-out.
        let scenario = Scenario::crash("svc-1").with_pattern("test-*");
        group.bench_with_input(
            BenchmarkId::from_parameter(graph.len()),
            &graph,
            |b, graph| b.iter(|| std::hint::black_box(scenario.to_rules(graph).unwrap())),
        );
    }
    group.finish();
}

/// Fleet fan-out: installing a scenario's rules across N agents.
fn bench_orchestration(c: &mut Criterion) {
    let mut group = c.benchmark_group("control/orchestrate_hang");
    for depth in [0u32, 1, 2, 3, 4] {
        let graph = AppGraph::binary_tree(depth);
        let agents: Vec<Arc<dyn AgentControl>> = graph
            .services()
            .into_iter()
            .map(|service| Arc::new(NullAgent { service }) as Arc<dyn AgentControl>)
            .collect();
        let orchestrator = FailureOrchestrator::new(agents);
        let scenario = Scenario::hang_for("svc-0", Duration::from_secs(1));
        // Hang of the root needs dependents; give depth-0 a caller.
        let mut graph = graph;
        graph.add_edge("user", "svc-0");
        let orchestrator_with_user = {
            let mut agents: Vec<Arc<dyn AgentControl>> = graph
                .services()
                .into_iter()
                .map(|service| Arc::new(NullAgent { service }) as Arc<dyn AgentControl>)
                .collect();
            agents.shrink_to_fit();
            FailureOrchestrator::new(agents)
        };
        let _ = orchestrator;
        group.bench_with_input(
            BenchmarkId::from_parameter(graph.len()),
            &(orchestrator_with_user, graph, scenario),
            |b, (orchestrator, graph, scenario)| {
                b.iter(|| std::hint::black_box(orchestrator.inject(scenario, graph).unwrap()))
            },
        );
    }
    group.finish();
}

fn synthetic_log(events: usize) -> Arc<EventStore> {
    let store = EventStore::shared();
    for index in 0..events {
        let ts = index as u64 * 1_000;
        if index % 2 == 0 {
            store.record_event(
                Event::request("a", "b", "GET", "/x")
                    .with_request_id(format!("test-{}", index / 2))
                    .with_timestamp(ts),
            );
        } else {
            let status = if index % 10 == 1 { 503 } else { 200 };
            store.record_event(
                Event::response("a", "b", status, Duration::from_millis(2))
                    .with_request_id(format!("test-{}", index / 2))
                    .with_timestamp(ts),
            );
        }
    }
    store
}

/// The pattern checks of Table 3 over growing observation logs.
fn bench_assertions(c: &mut Criterion) {
    let mut group = c.benchmark_group("control/assertions");
    for &events in &[1_000usize, 10_000, 100_000] {
        let checker = AssertionChecker::new(synthetic_log(events));
        let pattern = Pattern::new("test-*");
        group.bench_with_input(
            BenchmarkId::new("has_bounded_retries", events),
            &checker,
            |b, checker| {
                b.iter(|| std::hint::black_box(checker.has_bounded_retries("a", "b", 5, &pattern)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("has_circuit_breaker", events),
            &checker,
            |b, checker| {
                b.iter(|| {
                    std::hint::black_box(checker.has_circuit_breaker(
                        "a",
                        "b",
                        5,
                        Duration::from_secs(60),
                        1,
                        &pattern,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The `Combine` state machine over a pre-fetched RList.
fn bench_combine(c: &mut Criterion) {
    let store = synthetic_log(10_000);
    let checker = AssertionChecker::new(store);
    let events = checker.get_edge_events("a", "b", &Pattern::Any);
    let steps = [
        CombineStep::CheckStatus {
            status: 503,
            num_match: 5,
            view: View::Observed,
        },
        CombineStep::AtMostRequests {
            tdelta: Duration::from_secs(60),
            view: View::Observed,
            num: 1_000_000,
        },
    ];
    c.bench_function("control/combine_chain_10k", |b| {
        b.iter(|| std::hint::black_box(combine(&events, &steps)))
    });
}

criterion_group!(
    benches,
    bench_translation,
    bench_orchestration,
    bench_assertions,
    bench_combine
);
criterion_main!(benches);

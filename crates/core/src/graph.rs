//! The logical application graph.
//!
//! The operator provides Gremlin with a directed graph describing the
//! caller/callee relationships between microservices (paper §4.2).
//! The Recipe Translator expands high-level failure scenarios over
//! this graph — e.g. `Crash(S)` becomes Abort rules on every edge
//! from a dependent of `S` to `S`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// A directed dependency graph between microservices: an edge
/// `a -> b` means *a calls b*.
///
/// # Examples
///
/// ```
/// use gremlin_core::AppGraph;
///
/// let mut graph = AppGraph::new();
/// graph.add_edge("serviceA", "serviceB");
/// graph.add_edge("serviceB", "database");
/// assert_eq!(graph.dependents("database"), vec!["serviceB"]);
/// assert_eq!(graph.dependencies("serviceA"), vec!["serviceB"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppGraph {
    /// service -> set of services it calls.
    edges: BTreeMap<String, BTreeSet<String>>,
    /// All services, including ones without edges.
    services: BTreeSet<String>,
}

impl AppGraph {
    /// Creates an empty graph.
    pub fn new() -> AppGraph {
        AppGraph::default()
    }

    /// Builds a graph from `(caller, callee)` pairs.
    pub fn from_edges<S: Into<String>>(edges: impl IntoIterator<Item = (S, S)>) -> AppGraph {
        let mut graph = AppGraph::new();
        for (src, dst) in edges {
            graph.add_edge(src, dst);
        }
        graph
    }

    /// Adds a service without any edges.
    pub fn add_service(&mut self, service: impl Into<String>) -> &mut Self {
        self.services.insert(service.into());
        self
    }

    /// Adds the edge `src -> dst` (and both services).
    pub fn add_edge(&mut self, src: impl Into<String>, dst: impl Into<String>) -> &mut Self {
        let src = src.into();
        let dst = dst.into();
        self.services.insert(src.clone());
        self.services.insert(dst.clone());
        self.edges.entry(src).or_default().insert(dst);
        self
    }

    /// All services, sorted.
    pub fn services(&self) -> Vec<String> {
        self.services.iter().cloned().collect()
    }

    /// Returns `true` if the graph knows `service`.
    pub fn contains(&self, service: &str) -> bool {
        self.services.contains(service)
    }

    /// Returns `true` if `src` calls `dst`.
    pub fn has_edge(&self, src: &str, dst: &str) -> bool {
        self.edges.get(src).is_some_and(|deps| deps.contains(dst))
    }

    /// All `(src, dst)` edges, sorted.
    pub fn edges(&self) -> Vec<(String, String)> {
        self.edges
            .iter()
            .flat_map(|(src, dsts)| dsts.iter().map(move |dst| (src.clone(), dst.clone())))
            .collect()
    }

    /// Services that call `service` (the paper's `dependents`
    /// function, §5).
    pub fn dependents(&self, service: &str) -> Vec<String> {
        self.edges
            .iter()
            .filter(|(_, dsts)| dsts.contains(service))
            .map(|(src, _)| src.clone())
            .collect()
    }

    /// Services that `service` calls.
    pub fn dependencies(&self, service: &str) -> Vec<String> {
        self.edges
            .get(service)
            .map(|dsts| dsts.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Returns `true` if the graph has no services.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Edges crossing the cut between `group_a` and `group_b`, in
    /// both directions — the edges a network partition must sever
    /// (paper §5).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownService`] if any named service is
    /// not in the graph.
    pub fn cut(
        &self,
        group_a: &[impl AsRef<str>],
        group_b: &[impl AsRef<str>],
    ) -> Result<Vec<(String, String)>, CoreError> {
        for name in group_a
            .iter()
            .map(AsRef::as_ref)
            .chain(group_b.iter().map(AsRef::as_ref))
        {
            if !self.contains(name) {
                return Err(CoreError::UnknownService(name.to_string()));
            }
        }
        let a: BTreeSet<&str> = group_a.iter().map(AsRef::as_ref).collect();
        let b: BTreeSet<&str> = group_b.iter().map(AsRef::as_ref).collect();
        Ok(self
            .edges()
            .into_iter()
            .filter(|(src, dst)| {
                (a.contains(src.as_str()) && b.contains(dst.as_str()))
                    || (b.contains(src.as_str()) && a.contains(dst.as_str()))
            })
            .collect())
    }

    /// Services that depend on `service` directly **or transitively**
    /// — the blast radius of its failure. Sorted; does not include
    /// `service` itself (unless it participates in a cycle through
    /// itself).
    pub fn blast_radius(&self, service: &str) -> Vec<String> {
        let mut affected = BTreeSet::new();
        let mut frontier = vec![service.to_string()];
        while let Some(current) = frontier.pop() {
            for dependent in self.dependents(&current) {
                if affected.insert(dependent.clone()) {
                    frontier.push(dependent);
                }
            }
        }
        affected.into_iter().collect()
    }

    /// Returns `true` if the call graph contains a dependency cycle
    /// (A calls B calls … calls A) — a deployment smell worth
    /// flagging before staging cascading failures.
    pub fn has_cycle(&self) -> bool {
        self.topo_order().is_none()
    }

    /// A topological order of the services (callers before callees),
    /// or `None` when the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<String>> {
        // Kahn's algorithm over in-degree = number of callers.
        let mut in_degree: BTreeMap<String, usize> = self
            .services
            .iter()
            .map(|s| (s.clone(), self.dependents(s).len()))
            .collect();
        let mut ready: Vec<String> = in_degree
            .iter()
            .filter(|(_, degree)| **degree == 0)
            .map(|(name, _)| name.clone())
            .collect();
        let mut order = Vec::with_capacity(self.services.len());
        while let Some(service) = ready.pop() {
            order.push(service.clone());
            for callee in self.dependencies(&service) {
                let degree = in_degree.get_mut(&callee).expect("known service");
                *degree -= 1;
                if *degree == 0 {
                    ready.push(callee);
                }
            }
        }
        (order.len() == self.services.len()).then_some(order)
    }

    /// Generates a complete binary tree of depth `depth` (depth 0 =
    /// a single root), the topology of the paper's §7.2 scaling
    /// benchmark. Services are named `svc-<index>` with the root at
    /// index 0; node *i* calls nodes *2i+1* and *2i+2*.
    pub fn binary_tree(depth: u32) -> AppGraph {
        let mut graph = AppGraph::new();
        let nodes = (1usize << (depth + 1)) - 1;
        graph.add_service("svc-0");
        for i in 0..nodes {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            if left < nodes {
                graph.add_edge(format!("svc-{i}"), format!("svc-{left}"));
            }
            if right < nodes {
                graph.add_edge(format!("svc-{i}"), format!("svc-{right}"));
            }
        }
        graph
    }

    /// Renders the graph in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph app {\n");
        for service in &self.services {
            out.push_str(&format!("  \"{service}\";\n"));
        }
        for (src, dst) in self.edges() {
            out.push_str(&format!("  \"{src}\" -> \"{dst}\";\n"));
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for AppGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} service(s), {} edge(s)",
            self.services.len(),
            self.edges.values().map(BTreeSet::len).sum::<usize>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AppGraph {
        AppGraph::from_edges(vec![
            ("web", "auth"),
            ("web", "catalog"),
            ("auth", "db"),
            ("catalog", "db"),
        ])
    }

    #[test]
    fn edges_and_services() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.services(), vec!["auth", "catalog", "db", "web"]);
        assert!(g.has_edge("web", "auth"));
        assert!(!g.has_edge("auth", "web"));
        assert_eq!(g.edges().len(), 4);
    }

    #[test]
    fn dependents_and_dependencies() {
        let g = diamond();
        assert_eq!(g.dependents("db"), vec!["auth", "catalog"]);
        assert_eq!(g.dependencies("web"), vec!["auth", "catalog"]);
        assert!(g.dependents("web").is_empty());
        assert!(g.dependencies("db").is_empty());
    }

    #[test]
    fn isolated_service() {
        let mut g = AppGraph::new();
        g.add_service("loner");
        assert!(g.contains("loner"));
        assert!(g.dependencies("loner").is_empty());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn cut_finds_crossing_edges() {
        let g = diamond();
        let cut = g.cut(&["web", "auth"], &["catalog", "db"]).unwrap();
        assert_eq!(
            cut,
            vec![
                ("auth".to_string(), "db".to_string()),
                ("web".to_string(), "catalog".to_string()),
            ]
        );
    }

    #[test]
    fn cut_rejects_unknown_service() {
        let g = diamond();
        assert!(g.cut(&["web"], &["ghost"]).is_err());
    }

    #[test]
    fn binary_tree_shapes() {
        // Depth 0: 1 service, no edges.
        let t0 = AppGraph::binary_tree(0);
        assert_eq!(t0.len(), 1);
        assert!(t0.edges().is_empty());
        // Depth 1: 3 services, 2 edges.
        let t1 = AppGraph::binary_tree(1);
        assert_eq!(t1.len(), 3);
        assert_eq!(t1.edges().len(), 2);
        // Depth 4: 31 services (the largest point in Figure 7).
        let t4 = AppGraph::binary_tree(4);
        assert_eq!(t4.len(), 31);
        assert_eq!(t4.edges().len(), 30);
        assert_eq!(t4.dependencies("svc-0"), vec!["svc-1", "svc-2"]);
        assert_eq!(t4.dependents("svc-3"), vec!["svc-1"]);
    }

    #[test]
    fn blast_radius_is_transitive() {
        // user -> web -> {auth, catalog} -> db
        let g = AppGraph::from_edges(vec![
            ("user", "web"),
            ("web", "auth"),
            ("web", "catalog"),
            ("auth", "db"),
            ("catalog", "db"),
        ]);
        assert_eq!(g.blast_radius("db"), vec!["auth", "catalog", "user", "web"]);
        assert_eq!(g.blast_radius("web"), vec!["user"]);
        assert!(g.blast_radius("user").is_empty());
    }

    #[test]
    fn blast_radius_handles_cycles() {
        let g = AppGraph::from_edges(vec![("a", "b"), ("b", "a"), ("c", "a")]);
        // Failure of a affects b (direct), a (via cycle) and c.
        assert_eq!(g.blast_radius("a"), vec!["a", "b", "c"]);
    }

    #[test]
    fn topo_order_and_cycles() {
        let g = diamond();
        let order = g.topo_order().expect("acyclic");
        let position = |name: &str| order.iter().position(|s| s == name).unwrap();
        assert!(position("web") < position("auth"));
        assert!(position("web") < position("catalog"));
        assert!(position("auth") < position("db"));
        assert!(!g.has_cycle());

        let cyclic = AppGraph::from_edges(vec![("a", "b"), ("b", "c"), ("c", "a")]);
        assert!(cyclic.has_cycle());
        assert!(cyclic.topo_order().is_none());
    }

    #[test]
    fn topo_order_includes_isolated_services() {
        let mut g = diamond();
        g.add_service("loner");
        let order = g.topo_order().expect("acyclic");
        assert_eq!(order.len(), 5);
        assert!(order.contains(&"loner".to_string()));
    }

    #[test]
    fn dot_output_contains_edges() {
        let g = AppGraph::from_edges(vec![("a", "b")]);
        let dot = g.to_dot();
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: AppGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(diamond().to_string(), "4 service(s), 4 edge(s)");
    }
}

//! Parsing of the human-friendly duration strings Gremlin recipes use
//! (`'100ms'`, `'1s'`, `'1min'`, `'1h'` — see the paper's Table 3 and
//! §5 example recipes).

use std::time::Duration;

use crate::error::CoreError;

/// Parses a recipe duration string.
///
/// Supported suffixes: `us`, `ms`, `s`, `sec`, `m`, `min`, `h`,
/// `hour`. A bare number is interpreted as seconds. Fractions are
/// allowed (`"1.5s"`).
///
/// # Examples
///
/// ```
/// use gremlin_core::parse_duration;
/// use std::time::Duration;
///
/// assert_eq!(parse_duration("100ms").unwrap(), Duration::from_millis(100));
/// assert_eq!(parse_duration("1min").unwrap(), Duration::from_secs(60));
/// ```
///
/// # Errors
///
/// Returns [`CoreError::BadDuration`] for empty, negative or
/// unrecognized input.
pub fn parse_duration(text: &str) -> Result<Duration, CoreError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(CoreError::BadDuration(text.to_string()));
    }
    let split = text
        .find(|c: char| c.is_ascii_alphabetic())
        .unwrap_or(text.len());
    let (number_text, unit) = text.split_at(split);
    let number: f64 = number_text
        .trim()
        .parse()
        .map_err(|_| CoreError::BadDuration(text.to_string()))?;
    if !number.is_finite() || number < 0.0 {
        return Err(CoreError::BadDuration(text.to_string()));
    }
    let multiplier_us: f64 = match unit.trim().to_ascii_lowercase().as_str() {
        "us" => 1.0,
        "ms" => 1_000.0,
        "" | "s" | "sec" | "secs" => 1_000_000.0,
        "m" | "min" | "mins" => 60.0 * 1_000_000.0,
        "h" | "hour" | "hours" => 3600.0 * 1_000_000.0,
        _ => return Err(CoreError::BadDuration(text.to_string())),
    };
    Ok(Duration::from_micros(
        (number * multiplier_us).round() as u64
    ))
}

/// Formats a duration compactly for reports (`1.5s`, `100ms`, `2min`).
pub fn format_duration(duration: Duration) -> String {
    let us = duration.as_micros();
    if us == 0 {
        return "0s".to_string();
    }
    if us.is_multiple_of(60_000_000) {
        return format!("{}min", us / 60_000_000);
    }
    if us >= 1_000_000 {
        let secs = duration.as_secs_f64();
        if (secs - secs.round()).abs() < 1e-9 {
            return format!("{}s", secs.round() as u64);
        }
        return format!("{secs}s");
    }
    if us.is_multiple_of(1_000) {
        return format!("{}ms", us / 1_000);
    }
    format!("{us}us")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_units() {
        assert_eq!(parse_duration("5us").unwrap(), Duration::from_micros(5));
        assert_eq!(parse_duration("100ms").unwrap(), Duration::from_millis(100));
        assert_eq!(parse_duration("1s").unwrap(), Duration::from_secs(1));
        assert_eq!(parse_duration("2sec").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("1min").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("3m").unwrap(), Duration::from_secs(180));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert_eq!(parse_duration("2hours").unwrap(), Duration::from_secs(7200));
    }

    #[test]
    fn bare_number_is_seconds() {
        assert_eq!(parse_duration("4").unwrap(), Duration::from_secs(4));
    }

    #[test]
    fn fractions_and_whitespace() {
        assert_eq!(
            parse_duration(" 1.5s ").unwrap(),
            Duration::from_millis(1500)
        );
        assert_eq!(parse_duration("0.25 min").unwrap(), Duration::from_secs(15));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "fast", "1parsec", "-1s", "nan s", "1.s.2"] {
            assert!(parse_duration(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn formats_compactly() {
        assert_eq!(format_duration(Duration::ZERO), "0s");
        assert_eq!(format_duration(Duration::from_millis(100)), "100ms");
        assert_eq!(format_duration(Duration::from_secs(1)), "1s");
        assert_eq!(format_duration(Duration::from_secs(60)), "1min");
        assert_eq!(format_duration(Duration::from_micros(5)), "5us");
        assert_eq!(format_duration(Duration::from_millis(1500)), "1.5s");
    }

    #[test]
    fn round_trips_common_values() {
        for text in ["100ms", "1s", "1min", "1h", "250ms"] {
            let parsed = parse_duration(text).unwrap();
            assert_eq!(parse_duration(&format_duration(parsed)).unwrap(), parsed);
        }
    }
}

//! Automatic recipe generation — the paper's §9 future-work
//! direction: *"Given semantic annotations to the application graph,
//! it might be possible to automatically identify microservices and
//! resiliency patterns in need of testing, then construct and run
//! appropriate recipes."*
//!
//! [`RecipeGenerator`] walks the application graph and derives, for
//! every caller→callee edge, the systematic test matrix the paper's
//! §2.1 patterns imply:
//!
//! * a **disconnect** probing bounded retries;
//! * a **crash** (TCP reset) probing the circuit breaker;
//! * a **hang** probing the caller's timeout;
//! * for services with several dependencies, a **hang of one
//!   dependency** probing the bulkhead.

use std::collections::BTreeSet;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use gremlin_store::Pattern;

/// Serde helper storing `Duration` as integer microseconds.
mod duration_micros {
    use super::*;
    use serde::Deserializer;

    pub fn serialize<S: serde::Serializer>(
        value: &Duration,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(value.as_micros() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Duration, D::Error> {
        let micros = u64::deserialize(deserializer)?;
        Ok(Duration::from_micros(micros))
    }
}

use crate::checker::{AssertionChecker, Check};
use crate::graph::AppGraph;
use crate::scenarios::Scenario;

/// The resiliency expectations used when generating assertions.
#[derive(Debug, Clone)]
pub struct Expectations {
    /// Retry budget per failing call (`HasBoundedRetries`).
    pub max_tries: usize,
    /// Failures that must trip a breaker (`HasCircuitBreaker`).
    pub breaker_threshold: usize,
    /// Open window the breaker must honour.
    pub breaker_window: Duration,
    /// Probe successes to close the breaker.
    pub breaker_success_threshold: usize,
    /// Upper bound on a service's reply latency under dependency
    /// failure (`HasTimeouts`).
    pub max_latency: Duration,
    /// Injected hang used when probing timeouts and bulkheads.
    pub hang: Duration,
    /// Minimum request rate to healthy dependencies during a hang
    /// (`HasBulkHead`).
    pub min_rate: f64,
}

impl Default for Expectations {
    fn default() -> Self {
        Expectations {
            max_tries: 5,
            breaker_threshold: 5,
            breaker_window: Duration::from_secs(30),
            breaker_success_threshold: 1,
            max_latency: Duration::from_secs(1),
            hang: Duration::from_secs(2),
            min_rate: 1.0,
        }
    }
}

/// Which resiliency pattern a generated test probes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "probe", rename_all = "snake_case")]
pub enum ProbedPattern {
    /// `HasBoundedRetries(src, dst, max_tries)`.
    BoundedRetries {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Allowed attempts.
        max_tries: usize,
    },
    /// `HasCircuitBreaker(src, dst, threshold, window, success)`.
    CircuitBreaker {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Failures tripping the breaker.
        threshold: usize,
        /// Open window.
        #[serde(with = "duration_micros")]
        window: Duration,
        /// Probe successes to close.
        success_threshold: usize,
    },
    /// `HasTimeouts(service, max_latency)`.
    Timeouts {
        /// The service whose replies are timed.
        service: String,
        /// Latency bound.
        #[serde(with = "duration_micros")]
        max_latency: Duration,
    },
    /// `HasBulkHead(src, slow_dst, min_rate)`.
    Bulkhead {
        /// Calling service.
        src: String,
        /// The degraded dependency.
        slow_dst: String,
        /// Required rate to the other dependencies.
        min_rate: f64,
    },
}

impl ProbedPattern {
    /// Evaluates the probe against the collected observations.
    pub fn evaluate(
        &self,
        checker: &AssertionChecker,
        graph: &AppGraph,
        pattern: &Pattern,
    ) -> Check {
        match self {
            ProbedPattern::BoundedRetries {
                src,
                dst,
                max_tries,
            } => checker.has_bounded_retries(src, dst, *max_tries, pattern),
            ProbedPattern::CircuitBreaker {
                src,
                dst,
                threshold,
                window,
                success_threshold,
            } => checker.has_circuit_breaker(
                src,
                dst,
                *threshold,
                *window,
                *success_threshold,
                pattern,
            ),
            ProbedPattern::Timeouts {
                service,
                max_latency,
            } => checker.has_timeouts(service, *max_latency, pattern),
            ProbedPattern::Bulkhead {
                src,
                slow_dst,
                min_rate,
            } => checker.has_bulkhead(graph, src, slow_dst, *min_rate, pattern),
        }
    }
}

/// One automatically generated test: a failure to stage plus the
/// pattern to probe afterwards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedTest {
    /// Descriptive name, e.g. `disconnect:webapp->db/bounded-retries`.
    pub name: String,
    /// The outage to stage.
    pub scenario: Scenario,
    /// The assertion to evaluate after driving load.
    pub probe: ProbedPattern,
}

/// Generates the systematic per-edge test matrix for an application
/// graph.
///
/// # Examples
///
/// ```
/// use gremlin_core::autogen::RecipeGenerator;
/// use gremlin_core::AppGraph;
///
/// let graph = AppGraph::from_edges(vec![("web", "db"), ("web", "cache")]);
/// let tests = RecipeGenerator::new().exclude("user").generate(&graph);
/// // 3 probes per edge + 1 bulkhead probe per multi-dependency service.
/// assert_eq!(tests.len(), 2 * 3 + 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecipeGenerator {
    expectations: Expectations,
    pattern: Option<Pattern>,
    exclude: BTreeSet<String>,
}

impl RecipeGenerator {
    /// A generator with default [`Expectations`] and the `test-*`
    /// flow pattern.
    pub fn new() -> RecipeGenerator {
        RecipeGenerator::default()
    }

    /// Overrides the expectations.
    pub fn expectations(mut self, expectations: Expectations) -> RecipeGenerator {
        self.expectations = expectations;
        self
    }

    /// Overrides the request-ID pattern (default `test-*`).
    pub fn pattern(mut self, pattern: impl Into<Pattern>) -> RecipeGenerator {
        self.pattern = Some(pattern.into());
        self
    }

    /// Excludes a service from acting as a test *source* (e.g. the
    /// synthetic `user`).
    pub fn exclude(mut self, service: impl Into<String>) -> RecipeGenerator {
        self.exclude.insert(service.into());
        self
    }

    /// The flow pattern generated scenarios are confined to.
    pub fn flow_pattern(&self) -> Pattern {
        self.pattern
            .clone()
            .unwrap_or_else(|| Pattern::new("test-*"))
    }

    /// Walks `graph` and emits the test matrix.
    pub fn generate(&self, graph: &AppGraph) -> Vec<GeneratedTest> {
        let pattern = self.flow_pattern();
        let expect = &self.expectations;
        let mut tests = Vec::new();
        for (src, dst) in graph.edges() {
            if self.exclude.contains(&src) {
                continue;
            }
            tests.push(GeneratedTest {
                name: format!("disconnect:{src}->{dst}/bounded-retries"),
                scenario: Scenario::disconnect(src.clone(), dst.clone())
                    .with_pattern(pattern.clone()),
                probe: ProbedPattern::BoundedRetries {
                    src: src.clone(),
                    dst: dst.clone(),
                    max_tries: expect.max_tries,
                },
            });
            tests.push(GeneratedTest {
                name: format!("crash:{src}->{dst}/circuit-breaker"),
                scenario: Scenario::abort_reset(src.clone(), dst.clone())
                    .with_pattern(pattern.clone()),
                probe: ProbedPattern::CircuitBreaker {
                    src: src.clone(),
                    dst: dst.clone(),
                    threshold: expect.breaker_threshold,
                    window: expect.breaker_window,
                    success_threshold: expect.breaker_success_threshold,
                },
            });
            tests.push(GeneratedTest {
                name: format!("hang:{src}->{dst}/timeouts"),
                scenario: Scenario::delay(src.clone(), dst.clone(), expect.hang)
                    .with_pattern(pattern.clone()),
                probe: ProbedPattern::Timeouts {
                    service: src.clone(),
                    max_latency: expect.max_latency,
                },
            });
        }
        // Bulkhead probes: one per (service, slow dependency) where
        // the service has other dependencies to protect.
        for service in graph.services() {
            if self.exclude.contains(&service) {
                continue;
            }
            let dependencies = graph.dependencies(&service);
            if dependencies.len() < 2 {
                continue;
            }
            for slow in &dependencies {
                tests.push(GeneratedTest {
                    name: format!("hang:{service}->{slow}/bulkhead"),
                    scenario: Scenario::delay(service.clone(), slow.clone(), expect.hang)
                        .with_pattern(pattern.clone()),
                    probe: ProbedPattern::Bulkhead {
                        src: service.clone(),
                        slow_dst: slow.clone(),
                        min_rate: expect.min_rate,
                    },
                });
            }
        }
        tests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> AppGraph {
        AppGraph::from_edges(vec![
            ("user", "web"),
            ("web", "db"),
            ("web", "cache"),
            ("cache", "db"),
        ])
    }

    #[test]
    fn generates_three_probes_per_edge() {
        let tests = RecipeGenerator::new().exclude("user").generate(&graph());
        // Edges excluding user->web: web->db, web->cache, cache->db.
        let edge_tests = tests
            .iter()
            .filter(|t| !t.name.contains("/bulkhead"))
            .count();
        assert_eq!(edge_tests, 9);
    }

    #[test]
    fn generates_bulkhead_probes_for_multi_dependency_services() {
        let tests = RecipeGenerator::new().exclude("user").generate(&graph());
        let bulkheads: Vec<_> = tests
            .iter()
            .filter(|t| t.name.contains("/bulkhead"))
            .collect();
        // Only "web" has 2+ dependencies; one probe per slow dep.
        assert_eq!(bulkheads.len(), 2);
        assert!(bulkheads.iter().all(|t| t.name.contains("web->")));
    }

    #[test]
    fn excluded_sources_generate_nothing() {
        let tests = RecipeGenerator::new()
            .exclude("user")
            .exclude("web")
            .exclude("cache")
            .generate(&graph());
        assert!(tests.is_empty());
    }

    #[test]
    fn scenarios_carry_the_flow_pattern() {
        let tests = RecipeGenerator::new()
            .pattern("probe-*")
            .exclude("user")
            .generate(&graph());
        assert!(tests
            .iter()
            .all(|t| t.scenario.pattern == Pattern::new("probe-*")));
    }

    #[test]
    fn all_scenarios_translate_over_the_graph() {
        let g = graph();
        for test in RecipeGenerator::new().exclude("user").generate(&g) {
            let rules = test.scenario.to_rules(&g).expect("must translate");
            assert!(!rules.is_empty(), "{}", test.name);
        }
    }

    #[test]
    fn probes_evaluate_against_empty_store_as_failures() {
        let g = graph();
        let checker = AssertionChecker::new(gremlin_store::EventStore::shared());
        let generator = RecipeGenerator::new().exclude("user");
        let pattern = generator.flow_pattern();
        for test in generator.generate(&g) {
            let check = test.probe.evaluate(&checker, &g, &pattern);
            assert!(!check.passed, "{}: {check}", test.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let tests = RecipeGenerator::new().exclude("user").generate(&graph());
        let mut names: Vec<_> = tests.iter().map(|t| &t.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), tests.len());
    }
}

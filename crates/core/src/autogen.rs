//! Automatic recipe generation — the paper's §9 future-work
//! direction: *"Given semantic annotations to the application graph,
//! it might be possible to automatically identify microservices and
//! resiliency patterns in need of testing, then construct and run
//! appropriate recipes."*
//!
//! [`RecipeGenerator`] walks the application graph and derives, for
//! every caller→callee edge, the systematic test matrix the paper's
//! §2.1 patterns imply:
//!
//! * a **disconnect** probing bounded retries;
//! * a **crash** (TCP reset) probing the circuit breaker;
//! * a **hang** probing the caller's timeout;
//! * for services with several dependencies, a **hang of one
//!   dependency** probing the bulkhead.
//!
//! With [`RecipeGenerator::steer`] the matrix is additionally
//! feedback-steered by a [`CoverageLedger`](crate::ledger::CoverageLedger)
//! built from prior runs: tests whose coverage cell already
//! **Violated** are dropped (re-running them re-confirms a known
//! defect), and tests whose cell keeps passing get their intensity
//! escalated, with the [`GeneratedTest::steering_reason`] explaining
//! each decision.

use std::collections::BTreeSet;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use gremlin_store::Pattern;

/// Serde helper storing `Duration` as integer microseconds.
mod duration_micros {
    use super::*;
    use serde::Deserializer;

    pub fn serialize<S: serde::Serializer>(
        value: &Duration,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(value.as_micros() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Duration, D::Error> {
        let micros = u64::deserialize(deserializer)?;
        Ok(Duration::from_micros(micros))
    }
}

use crate::checker::{AssertionChecker, Check};
use crate::graph::AppGraph;
use crate::ledger::{CoverageLedger, Steering, SteeringPlan};
use crate::scenarios::{Scenario, ScenarioKind};
use crate::timeutil::format_duration;

/// Default trailing pass streak after which a steered generator
/// escalates a cell's intensity.
pub const DEFAULT_ESCALATE_STREAK: usize = 3;

/// The resiliency expectations used when generating assertions.
#[derive(Debug, Clone)]
pub struct Expectations {
    /// Retry budget per failing call (`HasBoundedRetries`).
    pub max_tries: usize,
    /// Failures that must trip a breaker (`HasCircuitBreaker`).
    pub breaker_threshold: usize,
    /// Open window the breaker must honour.
    pub breaker_window: Duration,
    /// Probe successes to close the breaker.
    pub breaker_success_threshold: usize,
    /// Upper bound on a service's reply latency under dependency
    /// failure (`HasTimeouts`).
    pub max_latency: Duration,
    /// Injected hang used when probing timeouts and bulkheads.
    pub hang: Duration,
    /// Minimum request rate to healthy dependencies during a hang
    /// (`HasBulkHead`).
    pub min_rate: f64,
}

impl Default for Expectations {
    fn default() -> Self {
        Expectations {
            max_tries: 5,
            breaker_threshold: 5,
            breaker_window: Duration::from_secs(30),
            breaker_success_threshold: 1,
            max_latency: Duration::from_secs(1),
            hang: Duration::from_secs(2),
            min_rate: 1.0,
        }
    }
}

/// Which resiliency pattern a generated test probes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "probe", rename_all = "snake_case")]
pub enum ProbedPattern {
    /// `HasBoundedRetries(src, dst, max_tries)`.
    BoundedRetries {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Allowed attempts.
        max_tries: usize,
    },
    /// `HasCircuitBreaker(src, dst, threshold, window, success)`.
    CircuitBreaker {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Failures tripping the breaker.
        threshold: usize,
        /// Open window.
        #[serde(with = "duration_micros")]
        window: Duration,
        /// Probe successes to close.
        success_threshold: usize,
    },
    /// `HasTimeouts(service, max_latency)`.
    Timeouts {
        /// The service whose replies are timed.
        service: String,
        /// Latency bound.
        #[serde(with = "duration_micros")]
        max_latency: Duration,
    },
    /// `HasBulkHead(src, slow_dst, min_rate)`.
    Bulkhead {
        /// Calling service.
        src: String,
        /// The degraded dependency.
        slow_dst: String,
        /// Required rate to the other dependencies.
        min_rate: f64,
    },
}

impl ProbedPattern {
    /// Evaluates the probe against the collected observations.
    pub fn evaluate(
        &self,
        checker: &AssertionChecker,
        graph: &AppGraph,
        pattern: &Pattern,
    ) -> Check {
        match self {
            ProbedPattern::BoundedRetries {
                src,
                dst,
                max_tries,
            } => checker.has_bounded_retries(src, dst, *max_tries, pattern),
            ProbedPattern::CircuitBreaker {
                src,
                dst,
                threshold,
                window,
                success_threshold,
            } => checker.has_circuit_breaker(
                src,
                dst,
                *threshold,
                *window,
                *success_threshold,
                pattern,
            ),
            ProbedPattern::Timeouts {
                service,
                max_latency,
            } => checker.has_timeouts(service, *max_latency, pattern),
            ProbedPattern::Bulkhead {
                src,
                slow_dst,
                min_rate,
            } => checker.has_bulkhead(graph, src, slow_dst, *min_rate, pattern),
        }
    }
}

/// One automatically generated test: a failure to stage plus the
/// pattern to probe afterwards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedTest {
    /// Descriptive name, e.g. `disconnect:webapp->db/bounded-retries`.
    pub name: String,
    /// The outage to stage.
    pub scenario: Scenario,
    /// The assertion to evaluate after driving load.
    pub probe: ProbedPattern,
    /// Why a steered generator altered this test (`None` for an
    /// unsteered or unchanged test), e.g. `escalate: 3 consecutive
    /// pass(es) — delay 2s -> 4s`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub steering_reason: Option<String>,
}

/// Generates the systematic per-edge test matrix for an application
/// graph.
///
/// # Examples
///
/// ```
/// use gremlin_core::autogen::RecipeGenerator;
/// use gremlin_core::AppGraph;
///
/// let graph = AppGraph::from_edges(vec![("web", "db"), ("web", "cache")]);
/// let tests = RecipeGenerator::new().exclude("user").generate(&graph);
/// // 3 probes per edge + 1 bulkhead probe per multi-dependency service.
/// assert_eq!(tests.len(), 2 * 3 + 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecipeGenerator {
    expectations: Expectations,
    pattern: Option<Pattern>,
    exclude: BTreeSet<String>,
    steering: Option<SteeringPlan>,
    escalate_after: Option<usize>,
}

impl RecipeGenerator {
    /// A generator with default [`Expectations`] and the `test-*`
    /// flow pattern.
    pub fn new() -> RecipeGenerator {
        RecipeGenerator::default()
    }

    /// Overrides the expectations.
    pub fn expectations(mut self, expectations: Expectations) -> RecipeGenerator {
        self.expectations = expectations;
        self
    }

    /// Overrides the request-ID pattern (default `test-*`).
    pub fn pattern(mut self, pattern: impl Into<Pattern>) -> RecipeGenerator {
        self.pattern = Some(pattern.into());
        self
    }

    /// Excludes a service from acting as a test *source* (e.g. the
    /// synthetic `user`).
    pub fn exclude(mut self, service: impl Into<String>) -> RecipeGenerator {
        self.exclude.insert(service.into());
        self
    }

    /// Steers generation from a coverage ledger's history (see the
    /// module docs): cells that already Violated are skipped, cells
    /// with at least [`DEFAULT_ESCALATE_STREAK`] trailing passes are
    /// escalated. Tune the streak threshold with
    /// [`RecipeGenerator::escalate_after`].
    pub fn steer(mut self, ledger: &CoverageLedger) -> RecipeGenerator {
        self.steering = Some(ledger.steering_plan());
        self
    }

    /// Overrides the trailing pass streak after which a steered
    /// generator escalates (default [`DEFAULT_ESCALATE_STREAK`]).
    pub fn escalate_after(mut self, streak: usize) -> RecipeGenerator {
        self.escalate_after = Some(streak);
        self
    }

    /// The flow pattern generated scenarios are confined to.
    pub fn flow_pattern(&self) -> Pattern {
        self.pattern
            .clone()
            .unwrap_or_else(|| Pattern::new("test-*"))
    }

    /// Walks `graph` and emits the test matrix. A steered generator
    /// (see [`RecipeGenerator::steer`]) then filters and escalates
    /// the matrix against the ledger history.
    pub fn generate(&self, graph: &AppGraph) -> Vec<GeneratedTest> {
        let pattern = self.flow_pattern();
        let expect = &self.expectations;
        let mut tests = Vec::new();
        for (src, dst) in graph.edges() {
            if self.exclude.contains(&src) {
                continue;
            }
            tests.push(GeneratedTest {
                name: format!("disconnect:{src}->{dst}/bounded-retries"),
                scenario: Scenario::disconnect(src.clone(), dst.clone())
                    .with_pattern(pattern.clone()),
                probe: ProbedPattern::BoundedRetries {
                    src: src.clone(),
                    dst: dst.clone(),
                    max_tries: expect.max_tries,
                },
                steering_reason: None,
            });
            tests.push(GeneratedTest {
                name: format!("crash:{src}->{dst}/circuit-breaker"),
                scenario: Scenario::abort_reset(src.clone(), dst.clone())
                    .with_pattern(pattern.clone()),
                probe: ProbedPattern::CircuitBreaker {
                    src: src.clone(),
                    dst: dst.clone(),
                    threshold: expect.breaker_threshold,
                    window: expect.breaker_window,
                    success_threshold: expect.breaker_success_threshold,
                },
                steering_reason: None,
            });
            tests.push(GeneratedTest {
                name: format!("hang:{src}->{dst}/timeouts"),
                scenario: Scenario::delay(src.clone(), dst.clone(), expect.hang)
                    .with_pattern(pattern.clone()),
                probe: ProbedPattern::Timeouts {
                    service: src.clone(),
                    max_latency: expect.max_latency,
                },
                steering_reason: None,
            });
        }
        // Bulkhead probes: one per (service, slow dependency) where
        // the service has other dependencies to protect.
        for service in graph.services() {
            if self.exclude.contains(&service) {
                continue;
            }
            let dependencies = graph.dependencies(&service);
            if dependencies.len() < 2 {
                continue;
            }
            for slow in &dependencies {
                tests.push(GeneratedTest {
                    name: format!("hang:{service}->{slow}/bulkhead"),
                    scenario: Scenario::delay(service.clone(), slow.clone(), expect.hang)
                        .with_pattern(pattern.clone()),
                    probe: ProbedPattern::Bulkhead {
                        src: service.clone(),
                        slow_dst: slow.clone(),
                        min_rate: expect.min_rate,
                    },
                    steering_reason: None,
                });
            }
        }
        match &self.steering {
            Some(plan) => {
                let streak_floor = self.escalate_after.unwrap_or(DEFAULT_ESCALATE_STREAK);
                tests
                    .into_iter()
                    .filter_map(|test| apply_steering(test, plan, streak_floor))
                    .collect()
            }
            None => tests,
        }
    }
}

/// Applies one steering verdict: `None` drops the test (cell already
/// Violated), otherwise the test is returned — escalated with a
/// recorded [`GeneratedTest::steering_reason`] when its cell has a
/// long enough pass streak and an intensity knob to turn.
fn apply_steering(
    mut test: GeneratedTest,
    plan: &SteeringPlan,
    escalate_after: usize,
) -> Option<GeneratedTest> {
    match plan.verdict_for(&test.scenario, escalate_after) {
        Steering::Fresh => Some(test),
        Steering::Skip { .. } => None,
        Steering::Escalate { streak } => {
            if let Some((scenario, change)) = escalate(&test.scenario) {
                test.steering_reason = Some(format!(
                    "escalate: {streak} consecutive pass(es) — {change}"
                ));
                test.scenario = scenario;
            }
            Some(test)
        }
    }
}

/// Doubles a scenario's intensity knob, returning the harder scenario
/// plus a human-readable description of the change. Scenarios without
/// a knob left to turn (shape-only faults, probabilities already at
/// 1.0) return `None` and run unchanged.
fn escalate(scenario: &Scenario) -> Option<(Scenario, String)> {
    let mut out = scenario.clone();
    let change = match &mut out.kind {
        ScenarioKind::Delay { interval, .. } | ScenarioKind::Hang { interval, .. } => {
            let was = *interval;
            *interval = was.saturating_mul(2);
            format!(
                "delay {} -> {}",
                format_duration(was),
                format_duration(*interval)
            )
        }
        ScenarioKind::Overload { delay, .. } => {
            let was = *delay;
            *delay = was.saturating_mul(2);
            format!(
                "overload delay {} -> {}",
                format_duration(was),
                format_duration(*delay)
            )
        }
        ScenarioKind::Abort { probability, .. } | ScenarioKind::Crash { probability, .. }
            if *probability < 1.0 =>
        {
            let was = *probability;
            *probability = (was * 2.0).min(1.0);
            format!("probability {was} -> {}", *probability)
        }
        _ => return None,
    };
    Some((out, change))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> AppGraph {
        AppGraph::from_edges(vec![
            ("user", "web"),
            ("web", "db"),
            ("web", "cache"),
            ("cache", "db"),
        ])
    }

    #[test]
    fn generates_three_probes_per_edge() {
        let tests = RecipeGenerator::new().exclude("user").generate(&graph());
        // Edges excluding user->web: web->db, web->cache, cache->db.
        let edge_tests = tests
            .iter()
            .filter(|t| !t.name.contains("/bulkhead"))
            .count();
        assert_eq!(edge_tests, 9);
    }

    #[test]
    fn generates_bulkhead_probes_for_multi_dependency_services() {
        let tests = RecipeGenerator::new().exclude("user").generate(&graph());
        let bulkheads: Vec<_> = tests
            .iter()
            .filter(|t| t.name.contains("/bulkhead"))
            .collect();
        // Only "web" has 2+ dependencies; one probe per slow dep.
        assert_eq!(bulkheads.len(), 2);
        assert!(bulkheads.iter().all(|t| t.name.contains("web->")));
    }

    #[test]
    fn excluded_sources_generate_nothing() {
        let tests = RecipeGenerator::new()
            .exclude("user")
            .exclude("web")
            .exclude("cache")
            .generate(&graph());
        assert!(tests.is_empty());
    }

    #[test]
    fn scenarios_carry_the_flow_pattern() {
        let tests = RecipeGenerator::new()
            .pattern("probe-*")
            .exclude("user")
            .generate(&graph());
        assert!(tests
            .iter()
            .all(|t| t.scenario.pattern == Pattern::new("probe-*")));
    }

    #[test]
    fn all_scenarios_translate_over_the_graph() {
        let g = graph();
        for test in RecipeGenerator::new().exclude("user").generate(&g) {
            let rules = test.scenario.to_rules(&g).expect("must translate");
            assert!(!rules.is_empty(), "{}", test.name);
        }
    }

    #[test]
    fn probes_evaluate_against_empty_store_as_failures() {
        let g = graph();
        let checker = AssertionChecker::new(gremlin_store::EventStore::shared());
        let generator = RecipeGenerator::new().exclude("user");
        let pattern = generator.flow_pattern();
        for test in generator.generate(&g) {
            let check = test.probe.evaluate(&checker, &g, &pattern);
            assert!(!check.passed, "{}: {check}", test.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let tests = RecipeGenerator::new().exclude("user").generate(&graph());
        let mut names: Vec<_> = tests.iter().map(|t| &t.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), tests.len());
    }

    #[test]
    fn escalate_doubles_intensity_knobs() {
        let (harder, change) =
            escalate(&Scenario::delay("a", "b", Duration::from_secs(2))).unwrap();
        assert!(matches!(
            harder.kind,
            ScenarioKind::Delay { interval, .. } if interval == Duration::from_secs(4)
        ));
        assert_eq!(change, "delay 2s -> 4s");

        let (harder, change) = escalate(&Scenario::transient_crash("db", 0.3)).unwrap();
        assert!(matches!(
            harder.kind,
            ScenarioKind::Crash { probability, .. } if (probability - 0.6).abs() < 1e-9
        ));
        assert!(change.contains("probability 0.3"), "{change}");

        // No knob left to turn: shape-only faults and hard crashes.
        assert!(escalate(&Scenario::disconnect("a", "b")).is_none());
        assert!(escalate(&Scenario::crash("db")).is_none());
    }

    #[test]
    fn steered_generator_skips_violated_and_escalates_streaks() {
        use crate::flight::{FlightRecorder, FlightSummary};
        use crate::ledger::CoverageLedger;
        use crate::monitor::{LiveCheck, Verdict};

        let root =
            std::env::temp_dir().join(format!("gremlin-autogen-steer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let record = |recipe: &str, at: u64, passed: bool, violated: bool, scenario: Scenario| {
            let mut recorder = FlightRecorder::create(&root, recipe, at, 1_000_000).unwrap();
            let monitor = if violated {
                vec![LiveCheck {
                    name: "LiveErrorRate(web, <= 1%)".to_string(),
                    verdict: Verdict::Violated,
                    detail: "error rate 30%".to_string(),
                    windows: 3,
                    first_failing_at_us: Some(1),
                    violated_at_us: Some(2),
                }]
            } else {
                Vec::new()
            };
            recorder
                .finish(&FlightSummary {
                    name: recipe.to_string(),
                    passed,
                    injected: vec![scenario.to_string()],
                    checks: Vec::new(),
                    monitor,
                    anomalies: Vec::new(),
                    scenarios: vec![scenario],
                })
                .unwrap();
        };
        let hang = Duration::from_secs(2);
        record(
            "hang db",
            100,
            false,
            true,
            Scenario::delay("web", "db", hang),
        );
        for at in [200, 300, 400] {
            record(
                "hang cache",
                at,
                true,
                false,
                Scenario::delay("web", "cache", hang),
            );
        }
        let ledger = CoverageLedger::scan(&root).unwrap();

        let unsteered = RecipeGenerator::new().exclude("user").generate(&graph());
        let steered = RecipeGenerator::new()
            .exclude("user")
            .steer(&ledger)
            .generate(&graph());

        // The Violated cell (web -> db under delay) drops both its
        // timeout probe and its bulkhead probe.
        assert!(unsteered.iter().any(|t| t.name == "hang:web->db/timeouts"));
        assert!(!steered.iter().any(|t| t.name == "hang:web->db/timeouts"));
        assert!(!steered.iter().any(|t| t.name == "hang:web->db/bulkhead"));
        assert_eq!(steered.len(), unsteered.len() - 2);

        // The 3-pass-streak cell (web -> cache under delay) comes
        // back harder, with the reason recorded.
        let escalated = steered
            .iter()
            .find(|t| t.name == "hang:web->cache/timeouts")
            .unwrap();
        assert!(matches!(
            escalated.scenario.kind,
            ScenarioKind::Delay { interval, .. } if interval == Duration::from_secs(4)
        ));
        let reason = escalated.steering_reason.as_deref().unwrap();
        assert!(
            reason.contains("3 consecutive pass(es)") && reason.contains("2s -> 4s"),
            "{reason}"
        );

        // Untouched cells pass through unchanged.
        let fresh = steered
            .iter()
            .find(|t| t.name == "disconnect:web->cache/bounded-retries")
            .unwrap();
        assert!(fresh.steering_reason.is_none());

        // A higher streak floor leaves the streak cell unescalated.
        let strict = RecipeGenerator::new()
            .exclude("user")
            .steer(&ledger)
            .escalate_after(5)
            .generate(&graph());
        let unescalated = strict
            .iter()
            .find(|t| t.name == "hang:web->cache/timeouts")
            .unwrap();
        assert!(unescalated.steering_reason.is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn steering_reason_is_backwards_compatible_json() {
        // Pre-steering JSON (no steering_reason field) still
        // deserializes, and None is omitted on the way out.
        let tests = RecipeGenerator::new().exclude("user").generate(&graph());
        let json = serde_json::to_string(&tests).unwrap();
        assert!(!json.contains("steering_reason"), "{json}");
        let back: Vec<GeneratedTest> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), tests.len());
    }
}

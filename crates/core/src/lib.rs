//! # gremlin-core
//!
//! The control plane of the Gremlin resilience-testing framework
//! (Heorhiadi et al., *Gremlin: Systematic Resilience Testing of
//! Microservices*, ICDCS 2016).
//!
//! Gremlin takes an SDN-like approach: the operator describes a
//! high-level outage and a set of expectations; the control plane
//! translates them into network-level fault-injection rules, programs
//! the data-plane agents, and validates the expectations against the
//! observation logs the agents produce. The pieces map onto the
//! paper's §4.2 directly:
//!
//! * [`AppGraph`] — the logical application graph of caller/callee
//!   relationships;
//! * [`Scenario`] — high-level failure scenarios (crash, overload,
//!   hang, partition, …) with [`Scenario::to_rules`] as the **Recipe
//!   Translator**;
//! * [`FailureOrchestrator`] — programs every physical agent instance
//!   through the [`AgentControl`](gremlin_proxy::AgentControl)
//!   channel;
//! * [`AssertionChecker`] — Table 3's queries, base assertions,
//!   `Combine` chains and resiliency-pattern checks over the central
//!   [`EventStore`](gremlin_store::EventStore);
//! * [`TestContext`] / [`RecipeRun`] — the operator-facing recipe
//!   layer, with chained failures as ordinary control flow.
//!
//! # Examples
//!
//! The paper's Example 1 — overload `serviceB`, assert `serviceA`
//! bounds its retries — reads like this (given a running
//! [`Deployment`](https://docs.rs/gremlin-mesh)):
//!
//! ```no_run
//! use gremlin_core::{AppGraph, Scenario, TestContext};
//! use gremlin_store::{EventStore, Pattern};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let agents = Vec::new();
//! # let store = EventStore::shared();
//! let graph = AppGraph::from_edges(vec![("serviceA", "serviceB")]);
//! let ctx = TestContext::new(graph, agents, store);
//!
//! ctx.inject(&Scenario::overload("serviceB").with_pattern("test-*"))?;
//! // ... drive test traffic ...
//! let check = ctx
//!     .checker()
//!     .has_bounded_retries("serviceA", "serviceB", 5, &Pattern::new("test-*"));
//! println!("{check}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod anomaly;
pub mod autogen;
pub mod campaign;
pub mod chaos;
pub mod checker;
pub mod dispatch;
pub mod error;
pub mod flight;
pub mod graph;
pub mod ledger;
pub mod monitor;
pub mod orchestrator;
pub mod recipe;
pub mod scenarios;
pub mod timeutil;
pub mod trace;

pub use anomaly::{drift_z, AnomalyAlert, AnomalyConfig, AnomalyScore, AnomalyScorer, EdgeState};
pub use campaign::{
    execute_recipe, plan_waves, CampaignRecipe, CampaignReport, CampaignRunner, CampaignSpec,
    RecipeOutcome, DEFAULT_MAX_IN_FLIGHT, STEER_FLAKY_THRESHOLD,
};
pub use checker::{
    at_most_requests, check_status, combine, num_requests, reply_latency, request_rate,
    AssertionChecker, Check, CombineStep, View,
};
pub use dispatch::{
    plan_shards, CampaignDispatcher, HttpOperator, OperatorServer, OperatorStatus,
    OperatorTransport, WaveRequest, WaveResponse, DISPATCH_SCHEMA_VERSION,
};
pub use error::CoreError;
pub use flight::{
    load_baselines, FlightLog, FlightMeta, FlightRecorder, FlightSummary, MatrixSnapshot,
    TimeSeriesLine, FLIGHT_SCHEMA_VERSION,
};
pub use graph::AppGraph;
pub use ledger::{
    append_campaign_entries, cells_for_scenario, intensity_bucket, CellKey, CellObservation,
    CellStats, CoverageLedger, FaultKind, LedgerEntry, LedgerSummary, Regression, RegressionKind,
    RunOutcome, RunSummary, Steering, SteeringPlan, DEFAULT_DRIFT_Z, SERVICE_WILDCARD,
};
pub use monitor::{
    AlertEvent, LiveCheck, LiveMonitor, MonitorRecord, MonitorSpec, StreamingAssertion, Verdict,
};
pub use orchestrator::{FailureOrchestrator, OrchestrationStats};
pub use recipe::{RecipeReport, RecipeRun, TestContext};
pub use scenarios::{Scenario, ScenarioKind};
pub use timeutil::{format_duration, parse_duration};
pub use trace::{
    CallKind, ChildGroup, FlowTrace, Hop, SpanNode, SpanTree, TraceDigest, TraceSummary,
};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

//! The Failure Orchestrator (paper §4.2): pushes translated
//! fault-injection rules to every physical Gremlin agent instance
//! through the out-of-band control channel.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gremlin_proxy::{AgentControl, Rule};
use gremlin_store::now_micros;
use gremlin_telemetry::{Counter, Gauge, LatencyHistogram, MetricsRegistry};

use crate::error::CoreError;
use crate::graph::AppGraph;
use crate::scenarios::Scenario;

/// Statistics from one orchestration step (feeds the paper's
/// Figure 7 measurements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrchestrationStats {
    /// Rules produced by the translator.
    pub rules: usize,
    /// Rule installations performed (one per matching agent
    /// instance).
    pub installations: usize,
    /// Wall-clock time spent translating and installing.
    pub duration: Duration,
}

/// Programs a fleet of Gremlin agents.
///
/// Since an application may run multiple instances of any service,
/// the orchestrator locates **all** agent instances fronting a rule's
/// source service and installs the rule on each of them (paper
/// Figure 3).
pub struct FailureOrchestrator {
    agents: Vec<Arc<dyn AgentControl>>,
    telemetry: Option<ControlTelemetry>,
}

/// Control-plane telemetry: per-agent push counters and last-seen
/// timestamps (vectors parallel to `agents`), plus one push-latency
/// histogram for the whole fleet.
struct ControlTelemetry {
    pushes: Vec<Arc<Counter>>,
    last_seen: Vec<Arc<Gauge>>,
    push_seconds: Arc<LatencyHistogram>,
}

impl ControlTelemetry {
    fn new(agents: &[Arc<dyn AgentControl>], registry: &MetricsRegistry) -> ControlTelemetry {
        let mut pushes = Vec::with_capacity(agents.len());
        let mut last_seen = Vec::with_capacity(agents.len());
        for agent in agents {
            let service = agent.service_name();
            let labels = &[("service", service.as_str())];
            pushes.push(registry.counter(
                "gremlin_control_rule_pushes_total",
                "Rules pushed to the agent by the orchestrator.",
                labels,
            ));
            last_seen.push(registry.gauge(
                "gremlin_control_agent_last_seen_timestamp_us",
                "Unix microseconds of the agent's last successful control call.",
                labels,
            ));
        }
        ControlTelemetry {
            pushes,
            last_seen,
            push_seconds: registry.histogram(
                "gremlin_control_push_seconds",
                "Wall-clock time of one fleet-wide rule push.",
                &[],
            ),
        }
    }

    fn saw_agent(&self, index: usize) {
        if let Some(gauge) = self.last_seen.get(index) {
            gauge.set(now_micros() as i64);
        }
    }
}

impl std::fmt::Debug for FailureOrchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureOrchestrator")
            .field("agents", &self.agents.len())
            .finish()
    }
}

impl FailureOrchestrator {
    /// Creates an orchestrator driving the given agent handles
    /// (in-process agents or remote control clients).
    pub fn new(agents: Vec<Arc<dyn AgentControl>>) -> FailureOrchestrator {
        FailureOrchestrator {
            agents,
            telemetry: None,
        }
    }

    /// Creates an orchestrator that records control-plane telemetry
    /// (rule pushes, push latency, per-agent last-seen timestamps)
    /// into `registry`.
    pub fn with_telemetry(
        agents: Vec<Arc<dyn AgentControl>>,
        registry: &MetricsRegistry,
    ) -> FailureOrchestrator {
        let telemetry = ControlTelemetry::new(&agents, registry);
        FailureOrchestrator {
            agents,
            telemetry: Some(telemetry),
        }
    }

    /// Number of agent instances under control.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Installs `rules`, grouping them by source service and fanning
    /// each group out to every matching agent instance.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoAgentForService`] — a rule's source service
    ///   has no agent; nothing is installed in that case.
    /// * [`CoreError::AgentFailed`] — an agent rejected the batch.
    pub fn apply_rules(&self, rules: &[Rule]) -> Result<OrchestrationStats, CoreError> {
        let started = Instant::now();
        let mut by_src: HashMap<&str, Vec<Rule>> = HashMap::new();
        for rule in rules {
            by_src
                .entry(rule.src.as_str())
                .or_default()
                .push(rule.clone());
        }
        // Validate coverage before touching any agent, so a failed
        // apply is all-or-nothing at the fleet level.
        let services: Vec<String> = self.agents.iter().map(|a| a.service_name()).collect();
        for src in by_src.keys() {
            if !services.iter().any(|s| s == src) {
                return Err(CoreError::NoAgentForService(src.to_string()));
            }
        }
        let mut installations = 0;
        for (index, (agent, service)) in self.agents.iter().zip(&services).enumerate() {
            if let Some(group) = by_src.get(service.as_str()) {
                agent
                    .install_rules(group)
                    .map_err(|source| CoreError::AgentFailed {
                        service: service.clone(),
                        source,
                    })?;
                installations += group.len();
                if let Some(telemetry) = &self.telemetry {
                    telemetry.pushes[index].add(group.len() as u64);
                    telemetry.saw_agent(index);
                }
            }
        }
        let duration = started.elapsed();
        if let Some(telemetry) = &self.telemetry {
            telemetry.push_seconds.record(duration);
        }
        Ok(OrchestrationStats {
            rules: rules.len(),
            installations,
            duration,
        })
    }

    /// Translates `scenario` over `graph` and installs the resulting
    /// rules.
    ///
    /// # Errors
    ///
    /// Translation errors (see [`Scenario::to_rules`]) plus the
    /// installation errors of [`FailureOrchestrator::apply_rules`].
    pub fn inject(
        &self,
        scenario: &Scenario,
        graph: &AppGraph,
    ) -> Result<OrchestrationStats, CoreError> {
        let started = Instant::now();
        let rules = scenario.to_rules(graph)?;
        let mut stats = self.apply_rules(&rules)?;
        stats.duration = started.elapsed();
        Ok(stats)
    }

    /// Flushes the rules of every agent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AgentFailed`] on the first agent whose
    /// flush fails (remaining agents are still attempted).
    pub fn clear(&self) -> Result<(), CoreError> {
        let mut first_error = None;
        for (index, agent) in self.agents.iter().enumerate() {
            match agent.clear_rules() {
                Ok(()) => {
                    if let Some(telemetry) = &self.telemetry {
                        telemetry.saw_agent(index);
                    }
                }
                Err(source) => {
                    first_error.get_or_insert(CoreError::AgentFailed {
                        service: agent.service_name(),
                        source,
                    });
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_proxy::{AbortKind, ProxyError};
    use parking_lot::Mutex;

    /// A scriptable in-memory agent for orchestrator tests.
    struct FakeAgent {
        service: String,
        rules: Mutex<Vec<Rule>>,
        fail_installs: bool,
    }

    impl FakeAgent {
        fn new(service: &str) -> Arc<FakeAgent> {
            Arc::new(FakeAgent {
                service: service.to_string(),
                rules: Mutex::new(Vec::new()),
                fail_installs: false,
            })
        }

        fn failing(service: &str) -> Arc<FakeAgent> {
            Arc::new(FakeAgent {
                service: service.to_string(),
                rules: Mutex::new(Vec::new()),
                fail_installs: true,
            })
        }
    }

    impl AgentControl for FakeAgent {
        fn service_name(&self) -> String {
            self.service.clone()
        }

        fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
            if self.fail_installs {
                return Err(ProxyError::InvalidRule("scripted failure".into()));
            }
            self.rules.lock().extend(rules.iter().cloned());
            Ok(())
        }

        fn clear_rules(&self) -> Result<(), ProxyError> {
            self.rules.lock().clear();
            Ok(())
        }

        fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
            Ok(self.rules.lock().clone())
        }
    }

    fn graph() -> AppGraph {
        AppGraph::from_edges(vec![("a", "c"), ("b", "c")])
    }

    #[test]
    fn routes_rules_to_matching_agents() {
        let agent_a = FakeAgent::new("a");
        let agent_b = FakeAgent::new("b");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&agent_a) as Arc<dyn AgentControl>,
            Arc::clone(&agent_b) as Arc<dyn AgentControl>,
        ]);
        let stats = orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap();
        assert_eq!(stats.rules, 2);
        assert_eq!(stats.installations, 2);
        assert_eq!(agent_a.rules.lock().len(), 1);
        assert_eq!(agent_b.rules.lock().len(), 1);
        assert_eq!(agent_a.rules.lock()[0].src, "a");
        assert_eq!(agent_b.rules.lock()[0].src, "b");
    }

    #[test]
    fn all_instances_of_a_service_receive_rules() {
        // Two physical instances of the same service (Figure 3).
        let instance_1 = FakeAgent::new("a");
        let instance_2 = FakeAgent::new("a");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&instance_1) as Arc<dyn AgentControl>,
            Arc::clone(&instance_2) as Arc<dyn AgentControl>,
        ]);
        let rules = vec![Rule::abort("a", "c", AbortKind::Status(503))];
        let stats = orchestrator.apply_rules(&rules).unwrap();
        assert_eq!(stats.installations, 2);
        assert_eq!(instance_1.rules.lock().len(), 1);
        assert_eq!(instance_2.rules.lock().len(), 1);
    }

    #[test]
    fn missing_agent_fails_before_any_install() {
        let agent_a = FakeAgent::new("a");
        let orchestrator =
            FailureOrchestrator::new(vec![Arc::clone(&agent_a) as Arc<dyn AgentControl>]);
        // Crash of c requires agents for both a and b.
        let err = orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap_err();
        assert!(matches!(err, CoreError::NoAgentForService(s) if s == "b"));
        assert!(agent_a.rules.lock().is_empty(), "nothing installed");
    }

    #[test]
    fn agent_failure_is_reported() {
        let bad = FakeAgent::failing("a");
        let orchestrator = FailureOrchestrator::new(vec![bad as Arc<dyn AgentControl>]);
        let rules = vec![Rule::abort("a", "c", AbortKind::Status(503))];
        let err = orchestrator.apply_rules(&rules).unwrap_err();
        assert!(matches!(err, CoreError::AgentFailed { .. }));
    }

    #[test]
    fn clear_flushes_every_agent() {
        let agent_a = FakeAgent::new("a");
        let agent_b = FakeAgent::new("b");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&agent_a) as Arc<dyn AgentControl>,
            Arc::clone(&agent_b) as Arc<dyn AgentControl>,
        ]);
        orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap();
        orchestrator.clear().unwrap();
        assert!(agent_a.rules.lock().is_empty());
        assert!(agent_b.rules.lock().is_empty());
    }

    #[test]
    fn telemetry_counts_pushes_per_agent() {
        let registry = MetricsRegistry::new();
        let agent_a = FakeAgent::new("a");
        let agent_b = FakeAgent::new("b");
        let orchestrator = FailureOrchestrator::with_telemetry(
            vec![
                Arc::clone(&agent_a) as Arc<dyn AgentControl>,
                Arc::clone(&agent_b) as Arc<dyn AgentControl>,
            ],
            &registry,
        );
        orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap();
        orchestrator
            .apply_rules(&[Rule::abort("a", "c", AbortKind::Status(503))])
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("gremlin_control_rule_pushes_total", &[("service", "a")]),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("gremlin_control_rule_pushes_total", &[("service", "b")]),
            Some(1)
        );
        assert_eq!(
            snap.histogram("gremlin_control_push_seconds", &[])
                .unwrap()
                .count(),
            2
        );
        assert!(
            snap.gauge_value(
                "gremlin_control_agent_last_seen_timestamp_us",
                &[("service", "a")]
            )
            .unwrap()
                > 0
        );
    }

    #[test]
    fn stats_include_duration() {
        let agent_a = FakeAgent::new("a");
        let orchestrator = FailureOrchestrator::new(vec![agent_a as Arc<dyn AgentControl>]);
        let stats = orchestrator
            .apply_rules(&[Rule::abort("a", "c", AbortKind::Status(503))])
            .unwrap();
        assert!(stats.duration < Duration::from_secs(1));
        assert_eq!(orchestrator.agent_count(), 1);
    }
}

//! The Failure Orchestrator (paper §4.2): pushes translated
//! fault-injection rules to every physical Gremlin agent instance
//! through the out-of-band control channel.
//!
//! Control calls fan out **concurrently**: installs, flushes and
//! listings go to all agents at once over a bounded worker pool of
//! scoped threads (at most [`FailureOrchestrator::with_max_fanout`]
//! in flight), so a fleet-wide push costs roughly one slow agent's
//! round-trip instead of the sum of all of them. Every agent is
//! always attempted — a failing agent never shields the rest of the
//! fleet from the push or the flush — and the first error in agent
//! order is reported after the whole fan-out completes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gremlin_proxy::{AgentControl, Rule};
use gremlin_store::now_micros;
use gremlin_telemetry::{Counter, Gauge, LatencyHistogram, MetricsRegistry};

use crate::error::CoreError;
use crate::graph::AppGraph;
use crate::scenarios::Scenario;

/// Statistics from one orchestration step (feeds the paper's
/// Figure 7 measurements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrchestrationStats {
    /// Rules produced by the translator.
    pub rules: usize,
    /// Rule installations performed (one per matching agent
    /// instance).
    pub installations: usize,
    /// Wall-clock time spent translating and installing.
    pub duration: Duration,
}

/// Programs a fleet of Gremlin agents.
///
/// Since an application may run multiple instances of any service,
/// the orchestrator locates **all** agent instances fronting a rule's
/// source service and installs the rule on each of them (paper
/// Figure 3).
pub struct FailureOrchestrator {
    agents: Vec<Arc<dyn AgentControl>>,
    telemetry: Option<ControlTelemetry>,
    max_fanout: usize,
}

/// Default bound on concurrent control calls during a fan-out.
pub const DEFAULT_MAX_FANOUT: usize = 8;

/// Control-plane telemetry: per-agent push counters, last-seen
/// timestamps and push-latency histograms (vectors parallel to
/// `agents`), plus one push-latency histogram for the whole fleet.
struct ControlTelemetry {
    pushes: Vec<Arc<Counter>>,
    last_seen: Vec<Arc<Gauge>>,
    agent_push_seconds: Vec<Arc<LatencyHistogram>>,
    push_seconds: Arc<LatencyHistogram>,
}

impl ControlTelemetry {
    fn new(agents: &[Arc<dyn AgentControl>], registry: &MetricsRegistry) -> ControlTelemetry {
        let mut pushes = Vec::with_capacity(agents.len());
        let mut last_seen = Vec::with_capacity(agents.len());
        let mut agent_push_seconds = Vec::with_capacity(agents.len());
        for agent in agents {
            let service = agent.service_name();
            let labels = &[("service", service.as_str())];
            pushes.push(registry.counter(
                "gremlin_control_rule_pushes_total",
                "Rules pushed to the agent by the orchestrator.",
                labels,
            ));
            last_seen.push(registry.gauge(
                "gremlin_control_agent_last_seen_timestamp_us",
                "Unix microseconds of the agent's last successful control call.",
                labels,
            ));
            agent_push_seconds.push(registry.histogram(
                "gremlin_control_agent_push_seconds",
                "Wall-clock time of one rule push to this agent.",
                labels,
            ));
        }
        ControlTelemetry {
            pushes,
            last_seen,
            agent_push_seconds,
            push_seconds: registry.histogram(
                "gremlin_control_push_seconds",
                "Wall-clock time of one fleet-wide rule push.",
                &[],
            ),
        }
    }

    fn saw_agent(&self, index: usize) {
        if let Some(gauge) = self.last_seen.get(index) {
            gauge.set(now_micros() as i64);
        }
    }
}

impl std::fmt::Debug for FailureOrchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureOrchestrator")
            .field("agents", &self.agents.len())
            .finish()
    }
}

impl FailureOrchestrator {
    /// Creates an orchestrator driving the given agent handles
    /// (in-process agents or remote control clients).
    pub fn new(agents: Vec<Arc<dyn AgentControl>>) -> FailureOrchestrator {
        FailureOrchestrator {
            agents,
            telemetry: None,
            max_fanout: DEFAULT_MAX_FANOUT,
        }
    }

    /// Creates an orchestrator that records control-plane telemetry
    /// (rule pushes, per-agent and fleet push latency, per-agent
    /// last-seen timestamps) into `registry`.
    pub fn with_telemetry(
        agents: Vec<Arc<dyn AgentControl>>,
        registry: &MetricsRegistry,
    ) -> FailureOrchestrator {
        let telemetry = ControlTelemetry::new(&agents, registry);
        FailureOrchestrator {
            agents,
            telemetry: Some(telemetry),
            max_fanout: DEFAULT_MAX_FANOUT,
        }
    }

    /// Builder-style: bounds the worker pool used for concurrent
    /// control fan-out (minimum 1; 1 degenerates to serial pushes).
    pub fn with_max_fanout(mut self, max_fanout: usize) -> FailureOrchestrator {
        self.max_fanout = max_fanout.max(1);
        self
    }

    /// Number of agent instances under control.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Runs `task` once per agent on a bounded pool of scoped worker
    /// threads, returning the results in agent order. The pool is
    /// work-stealing over the agent index, so a slow agent delays
    /// only its own slot, never the whole fleet.
    fn fan_out<T: Send>(&self, task: impl Fn(usize, &dyn AgentControl) -> T + Sync) -> Vec<T> {
        let n = self.agents.len();
        let workers = self.max_fanout.min(n);
        if workers <= 1 {
            return self
                .agents
                .iter()
                .enumerate()
                .map(|(index, agent)| task(index, agent.as_ref()))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let result = task(index, self.agents[index].as_ref());
                    *slots[index].lock() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every agent slot is filled"))
            .collect()
    }

    /// Installs `rules`, grouping them by source service and fanning
    /// each group out to every matching agent instance — all matching
    /// agents concurrently, bounded by the fan-out pool.
    ///
    /// Every agent is attempted even when another install fails; the
    /// first failure in agent order is returned once the fan-out
    /// completes, so one broken agent never leaves the rest of the
    /// fleet unprogrammed.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoAgentForService`] — a rule's source service
    ///   has no agent; nothing is installed in that case.
    /// * [`CoreError::AgentFailed`] — an agent rejected the batch
    ///   (the first such failure, after all agents were attempted).
    pub fn apply_rules(&self, rules: &[Rule]) -> Result<OrchestrationStats, CoreError> {
        let started = Instant::now();
        let mut by_src: HashMap<&str, Vec<Rule>> = HashMap::new();
        for rule in rules {
            by_src
                .entry(rule.src.as_str())
                .or_default()
                .push(rule.clone());
        }
        // Validate coverage before touching any agent, so a failed
        // apply is all-or-nothing at the fleet level.
        let services: Vec<String> = self.agents.iter().map(|a| a.service_name()).collect();
        for src in by_src.keys() {
            if !services.iter().any(|s| s == src) {
                return Err(CoreError::NoAgentForService(src.to_string()));
            }
        }
        let outcomes = self.fan_out(|index, agent| {
            let service = &services[index];
            let Some(group) = by_src.get(service.as_str()) else {
                return Ok(0);
            };
            let push_started = Instant::now();
            let pushed = agent.install_rules(group);
            let push_duration = push_started.elapsed();
            match pushed {
                Ok(()) => {
                    if let Some(telemetry) = &self.telemetry {
                        telemetry.pushes[index].add(group.len() as u64);
                        telemetry.agent_push_seconds[index].record(push_duration);
                        telemetry.saw_agent(index);
                    }
                    Ok(group.len())
                }
                Err(source) => Err(CoreError::AgentFailed {
                    service: service.clone(),
                    source,
                }),
            }
        });
        let mut installations = 0;
        let mut first_error = None;
        for outcome in outcomes {
            match outcome {
                Ok(count) => installations += count,
                Err(err) => {
                    first_error.get_or_insert(err);
                }
            }
        }
        let duration = started.elapsed();
        if let Some(telemetry) = &self.telemetry {
            telemetry.push_seconds.record(duration);
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        Ok(OrchestrationStats {
            rules: rules.len(),
            installations,
            duration,
        })
    }

    /// Translates `scenario` over `graph` and installs the resulting
    /// rules.
    ///
    /// # Errors
    ///
    /// Translation errors (see [`Scenario::to_rules`]) plus the
    /// installation errors of [`FailureOrchestrator::apply_rules`].
    pub fn inject(
        &self,
        scenario: &Scenario,
        graph: &AppGraph,
    ) -> Result<OrchestrationStats, CoreError> {
        let started = Instant::now();
        let rules = scenario.to_rules(graph)?;
        let mut stats = self.apply_rules(&rules)?;
        stats.duration = started.elapsed();
        Ok(stats)
    }

    /// Flushes the rules of every agent, concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AgentFailed`] for the first agent (in
    /// agent order) whose flush failed — every agent is always
    /// attempted, so no agent is left with stale rules because an
    /// earlier one was unreachable.
    pub fn clear(&self) -> Result<(), CoreError> {
        let outcomes = self.fan_out(|index, agent| match agent.clear_rules() {
            Ok(()) => {
                if let Some(telemetry) = &self.telemetry {
                    telemetry.saw_agent(index);
                }
                Ok(())
            }
            Err(source) => Err(CoreError::AgentFailed {
                service: agent.service_name(),
                source,
            }),
        });
        outcomes.into_iter().find(|o| o.is_err()).unwrap_or(Ok(()))
    }

    /// Lists every agent's installed rules, concurrently, as
    /// `(service, rules)` pairs in agent order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AgentFailed`] for the first agent whose
    /// listing failed, after every agent was attempted.
    pub fn list_rules(&self) -> Result<Vec<(String, Vec<Rule>)>, CoreError> {
        let outcomes = self.fan_out(|index, agent| {
            let service = agent.service_name();
            match agent.list_rules() {
                Ok(rules) => {
                    if let Some(telemetry) = &self.telemetry {
                        telemetry.saw_agent(index);
                    }
                    Ok((service, rules))
                }
                Err(source) => Err(CoreError::AgentFailed { service, source }),
            }
        });
        outcomes.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_proxy::{AbortKind, ProxyError};
    use parking_lot::Mutex;

    /// A scriptable in-memory agent for orchestrator tests.
    struct FakeAgent {
        service: String,
        rules: Mutex<Vec<Rule>>,
        fail_installs: bool,
        fail_clears: bool,
        latency: Duration,
    }

    impl FakeAgent {
        fn new(service: &str) -> Arc<FakeAgent> {
            Arc::new(FakeAgent {
                service: service.to_string(),
                rules: Mutex::new(Vec::new()),
                fail_installs: false,
                fail_clears: false,
                latency: Duration::ZERO,
            })
        }

        fn failing(service: &str) -> Arc<FakeAgent> {
            Arc::new(FakeAgent {
                service: service.to_string(),
                rules: Mutex::new(Vec::new()),
                fail_installs: true,
                fail_clears: true,
                latency: Duration::ZERO,
            })
        }

        fn slow(service: &str, latency: Duration) -> Arc<FakeAgent> {
            Arc::new(FakeAgent {
                service: service.to_string(),
                rules: Mutex::new(Vec::new()),
                fail_installs: false,
                fail_clears: false,
                latency,
            })
        }
    }

    impl AgentControl for FakeAgent {
        fn service_name(&self) -> String {
            self.service.clone()
        }

        fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
            if !self.latency.is_zero() {
                std::thread::sleep(self.latency);
            }
            if self.fail_installs {
                return Err(ProxyError::InvalidRule("scripted failure".into()));
            }
            self.rules.lock().extend(rules.iter().cloned());
            Ok(())
        }

        fn clear_rules(&self) -> Result<(), ProxyError> {
            if self.fail_clears {
                return Err(ProxyError::InvalidRule("scripted clear failure".into()));
            }
            self.rules.lock().clear();
            Ok(())
        }

        fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
            Ok(self.rules.lock().clone())
        }
    }

    fn graph() -> AppGraph {
        AppGraph::from_edges(vec![("a", "c"), ("b", "c")])
    }

    #[test]
    fn routes_rules_to_matching_agents() {
        let agent_a = FakeAgent::new("a");
        let agent_b = FakeAgent::new("b");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&agent_a) as Arc<dyn AgentControl>,
            Arc::clone(&agent_b) as Arc<dyn AgentControl>,
        ]);
        let stats = orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap();
        assert_eq!(stats.rules, 2);
        assert_eq!(stats.installations, 2);
        assert_eq!(agent_a.rules.lock().len(), 1);
        assert_eq!(agent_b.rules.lock().len(), 1);
        assert_eq!(agent_a.rules.lock()[0].src, "a");
        assert_eq!(agent_b.rules.lock()[0].src, "b");
    }

    #[test]
    fn all_instances_of_a_service_receive_rules() {
        // Two physical instances of the same service (Figure 3).
        let instance_1 = FakeAgent::new("a");
        let instance_2 = FakeAgent::new("a");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&instance_1) as Arc<dyn AgentControl>,
            Arc::clone(&instance_2) as Arc<dyn AgentControl>,
        ]);
        let rules = vec![Rule::abort("a", "c", AbortKind::Status(503))];
        let stats = orchestrator.apply_rules(&rules).unwrap();
        assert_eq!(stats.installations, 2);
        assert_eq!(instance_1.rules.lock().len(), 1);
        assert_eq!(instance_2.rules.lock().len(), 1);
    }

    #[test]
    fn missing_agent_fails_before_any_install() {
        let agent_a = FakeAgent::new("a");
        let orchestrator =
            FailureOrchestrator::new(vec![Arc::clone(&agent_a) as Arc<dyn AgentControl>]);
        // Crash of c requires agents for both a and b.
        let err = orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap_err();
        assert!(matches!(err, CoreError::NoAgentForService(s) if s == "b"));
        assert!(agent_a.rules.lock().is_empty(), "nothing installed");
    }

    #[test]
    fn agent_failure_is_reported() {
        let bad = FakeAgent::failing("a");
        let orchestrator = FailureOrchestrator::new(vec![bad as Arc<dyn AgentControl>]);
        let rules = vec![Rule::abort("a", "c", AbortKind::Status(503))];
        let err = orchestrator.apply_rules(&rules).unwrap_err();
        assert!(matches!(err, CoreError::AgentFailed { .. }));
    }

    #[test]
    fn clear_flushes_every_agent() {
        let agent_a = FakeAgent::new("a");
        let agent_b = FakeAgent::new("b");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&agent_a) as Arc<dyn AgentControl>,
            Arc::clone(&agent_b) as Arc<dyn AgentControl>,
        ]);
        orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap();
        orchestrator.clear().unwrap();
        assert!(agent_a.rules.lock().is_empty());
        assert!(agent_b.rules.lock().is_empty());
    }

    #[test]
    fn telemetry_counts_pushes_per_agent() {
        let registry = MetricsRegistry::new();
        let agent_a = FakeAgent::new("a");
        let agent_b = FakeAgent::new("b");
        let orchestrator = FailureOrchestrator::with_telemetry(
            vec![
                Arc::clone(&agent_a) as Arc<dyn AgentControl>,
                Arc::clone(&agent_b) as Arc<dyn AgentControl>,
            ],
            &registry,
        );
        orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap();
        orchestrator
            .apply_rules(&[Rule::abort("a", "c", AbortKind::Status(503))])
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("gremlin_control_rule_pushes_total", &[("service", "a")]),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("gremlin_control_rule_pushes_total", &[("service", "b")]),
            Some(1)
        );
        assert_eq!(
            snap.histogram("gremlin_control_push_seconds", &[])
                .unwrap()
                .count(),
            2
        );
        assert!(
            snap.gauge_value(
                "gremlin_control_agent_last_seen_timestamp_us",
                &[("service", "a")]
            )
            .unwrap()
                > 0
        );
    }

    #[test]
    fn stats_include_duration() {
        let agent_a = FakeAgent::new("a");
        let orchestrator = FailureOrchestrator::new(vec![agent_a as Arc<dyn AgentControl>]);
        let stats = orchestrator
            .apply_rules(&[Rule::abort("a", "c", AbortKind::Status(503))])
            .unwrap();
        assert!(stats.duration < Duration::from_secs(1));
        assert_eq!(orchestrator.agent_count(), 1);
    }

    #[test]
    fn fan_out_pushes_concurrently() {
        // Eight slow agents, 60ms install latency each. Serial execution
        // would take ~480ms; concurrent fan-out should finish in roughly
        // one agent's latency. The 240ms bound (half of serial) keeps the
        // test robust on loaded CI machines while still proving overlap.
        let latency = Duration::from_millis(60);
        let agents: Vec<Arc<FakeAgent>> = (0..8)
            .map(|i| FakeAgent::slow(&format!("s{i}"), latency))
            .collect();
        let orchestrator = FailureOrchestrator::new(
            agents
                .iter()
                .map(|a| Arc::clone(a) as Arc<dyn AgentControl>)
                .collect(),
        );
        let rules: Vec<Rule> = (0..8)
            .map(|i| Rule::abort(&format!("s{i}"), "c", AbortKind::Status(503)))
            .collect();
        let stats = orchestrator.apply_rules(&rules).unwrap();
        assert_eq!(stats.installations, 8);
        assert!(
            stats.duration < Duration::from_millis(240),
            "fan-out took {:?}, expected well under the ~480ms serial time",
            stats.duration
        );
        for agent in &agents {
            assert_eq!(agent.rules.lock().len(), 1);
        }
    }

    #[test]
    fn fan_out_respects_max_fanout_of_one() {
        let latency = Duration::from_millis(20);
        let agents: Vec<Arc<FakeAgent>> = (0..4)
            .map(|i| FakeAgent::slow(&format!("s{i}"), latency))
            .collect();
        let orchestrator = FailureOrchestrator::new(
            agents
                .iter()
                .map(|a| Arc::clone(a) as Arc<dyn AgentControl>)
                .collect(),
        )
        .with_max_fanout(1);
        let rules: Vec<Rule> = (0..4)
            .map(|i| Rule::abort(&format!("s{i}"), "c", AbortKind::Status(503)))
            .collect();
        let stats = orchestrator.apply_rules(&rules).unwrap();
        assert_eq!(stats.installations, 4);
        assert!(
            stats.duration >= Duration::from_millis(80),
            "serial fallback should pay every agent's latency, got {:?}",
            stats.duration
        );
    }

    #[test]
    fn failing_agent_does_not_block_the_rest() {
        // Agent order: good, bad, good. The push must still reach every
        // healthy agent, and the bad agent's error is reported afterwards.
        let agent_a = FakeAgent::new("a");
        let bad = FakeAgent::failing("b");
        let agent_c = FakeAgent::new("c");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&agent_a) as Arc<dyn AgentControl>,
            Arc::clone(&bad) as Arc<dyn AgentControl>,
            Arc::clone(&agent_c) as Arc<dyn AgentControl>,
        ]);
        let rules = vec![
            Rule::abort("a", "x", AbortKind::Status(503)),
            Rule::abort("b", "x", AbortKind::Status(503)),
            Rule::abort("c", "x", AbortKind::Status(503)),
        ];
        let err = orchestrator.apply_rules(&rules).unwrap_err();
        assert!(matches!(err, CoreError::AgentFailed { ref service, .. } if service == "b"));
        assert_eq!(agent_a.rules.lock().len(), 1, "healthy agent still pushed");
        assert_eq!(agent_c.rules.lock().len(), 1, "healthy agent still pushed");
    }

    #[test]
    fn clear_attempts_every_agent_despite_failures() {
        let agent_a = FakeAgent::new("a");
        let bad = FakeAgent::failing("b");
        let agent_c = FakeAgent::new("c");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&agent_a) as Arc<dyn AgentControl>,
            Arc::clone(&bad) as Arc<dyn AgentControl>,
            Arc::clone(&agent_c) as Arc<dyn AgentControl>,
        ]);
        agent_a
            .rules
            .lock()
            .push(Rule::abort("a", "x", AbortKind::Status(503)));
        agent_c
            .rules
            .lock()
            .push(Rule::abort("c", "x", AbortKind::Status(503)));
        let err = orchestrator.clear().unwrap_err();
        assert!(matches!(err, CoreError::AgentFailed { ref service, .. } if service == "b"));
        assert!(agent_a.rules.lock().is_empty(), "cleared despite b failing");
        assert!(agent_c.rules.lock().is_empty(), "cleared despite b failing");
    }

    #[test]
    fn list_rules_aggregates_across_agents() {
        let agent_a = FakeAgent::new("a");
        let agent_b = FakeAgent::new("b");
        let orchestrator = FailureOrchestrator::new(vec![
            Arc::clone(&agent_a) as Arc<dyn AgentControl>,
            Arc::clone(&agent_b) as Arc<dyn AgentControl>,
        ]);
        orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap();
        let listing = orchestrator.list_rules().unwrap();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].0, "a");
        assert_eq!(listing[0].1.len(), 1);
        assert_eq!(listing[1].0, "b");
        assert_eq!(listing[1].1.len(), 1);
    }

    #[test]
    fn per_agent_push_latency_is_recorded() {
        let registry = MetricsRegistry::new();
        let agent_a = FakeAgent::new("a");
        let agent_b = FakeAgent::new("b");
        let orchestrator = FailureOrchestrator::with_telemetry(
            vec![
                Arc::clone(&agent_a) as Arc<dyn AgentControl>,
                Arc::clone(&agent_b) as Arc<dyn AgentControl>,
            ],
            &registry,
        );
        orchestrator
            .inject(&Scenario::crash("c"), &graph())
            .unwrap();
        let snap = registry.snapshot();
        for service in ["a", "b"] {
            let hist = snap
                .histogram(
                    "gremlin_control_agent_push_seconds",
                    &[("service", service)],
                )
                .unwrap_or_else(|| panic!("missing per-agent histogram for {service}"));
            assert_eq!(hist.count(), 1);
        }
    }
}

//! The Assertion Checker (paper §4.2, Table 3): queries over the
//! central observation store, composable base assertions, and the
//! built-in resiliency-pattern checks.
//!
//! ## The `withRule` parameter
//!
//! The paper's queries take a boolean `withRule` selecting whether
//! Gremlin's own actions are part of the picture. This crate encodes
//! the two readings as [`View`]:
//!
//! * [`View::Observed`] (`withRule = true`) — events exactly as the
//!   calling service experienced them: injected delays included in
//!   latencies, synthesized error responses counted.
//! * [`View::Untampered`] (`withRule = false`) — the callee's genuine
//!   behaviour: injected delays subtracted from latencies, and
//!   Gremlin-synthesized responses (aborts) excluded.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use gremlin_store::{Event, EventStore, Micros, Pattern, Query};

use crate::graph::AppGraph;

/// Which view of the observations an assertion computes over (the
/// paper's `withRule` boolean — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    /// `withRule = true`: as the caller observed, Gremlin effects
    /// included.
    Observed,
    /// `withRule = false`: the callee's untampered behaviour.
    Untampered,
}

impl View {
    /// Should `event` be counted under this view?
    fn counts(&self, event: &Event) -> bool {
        match self {
            View::Observed => true,
            View::Untampered => {
                // Synthesized responses never came from the callee.
                !matches!(
                    event.fault,
                    Some(gremlin_store::AppliedFault::Abort { .. })
                        | Some(gremlin_store::AppliedFault::AbortReset)
                )
            }
        }
    }

    /// The latency of a response event under this view.
    fn latency(&self, event: &Event) -> Option<Duration> {
        match self {
            View::Observed => event.observed_latency(),
            View::Untampered => event.untampered_latency(),
        }
    }
}

/// The result of one assertion or pattern check, for recipe reports.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Check {
    /// Human-readable name, e.g. `HasBoundedRetries(web, db, 5)`.
    pub name: String,
    /// Whether the expectation held.
    pub passed: bool,
    /// Supporting detail (counts, latencies, the failing position).
    pub details: String,
}

impl Check {
    fn new(name: impl Into<String>, passed: bool, details: impl Into<String>) -> Check {
        Check {
            name: name.into(),
            passed,
            details: details.into(),
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {}",
            if self.passed { "PASS" } else { "FAIL" },
            self.name,
            self.details
        )
    }
}

// ---------------------------------------------------------------------------
// Base assertions over event lists (RLists)
// ---------------------------------------------------------------------------

/// Counts request events in `rlist`, optionally limited to a time
/// window of `tdelta` anchored at the list's first event
/// (`NumRequests` in Table 3).
pub fn num_requests(rlist: &[Event], tdelta: Option<Duration>, view: View) -> usize {
    let Some(first) = rlist.first() else {
        return 0;
    };
    let cutoff: Option<Micros> = tdelta.map(|delta| {
        first
            .timestamp_us
            .saturating_add(delta.as_micros() as Micros)
    });
    rlist
        .iter()
        .filter(|event| event.kind.is_request())
        .filter(|event| view.counts(event))
        .filter(|event| match cutoff {
            Some(cutoff) => event.timestamp_us < cutoff,
            None => true,
        })
        .count()
}

/// The latency of every response event in `rlist` under `view`
/// (`ReplyLatency` in Table 3).
pub fn reply_latency(rlist: &[Event], view: View) -> Vec<Duration> {
    rlist
        .iter()
        .filter(|event| view.counts(event))
        .filter_map(|event| view.latency(event))
        .collect()
}

/// `AtMostRequests` (Table 3): at most `num` requests within `tdelta`
/// of the list's first event.
pub fn at_most_requests(rlist: &[Event], tdelta: Duration, view: View, num: usize) -> bool {
    num_requests(rlist, Some(tdelta), view) <= num
}

/// `CheckStatus` (Table 3): at least `num_match` responses in `rlist`
/// carry `status`.
pub fn check_status(rlist: &[Event], status: u16, num_match: usize, view: View) -> bool {
    rlist
        .iter()
        .filter(|event| view.counts(event))
        .filter(|event| event.status() == Some(status))
        .count()
        >= num_match
}

/// `RequestRate` (Table 3): requests per second across the span of
/// `rlist`. Returns 0.0 for empty lists and for degenerate spans
/// (a single event, or all events sharing one timestamp) — a rate
/// needs a measurable interval, and guarding the divide keeps
/// downstream comparisons (`rate >= min_rate`) conservative instead
/// of vacuously infinite.
pub fn request_rate(rlist: &[Event]) -> f64 {
    let requests = rlist.iter().filter(|e| e.kind.is_request()).count();
    if requests == 0 {
        return 0.0;
    }
    let first = rlist.iter().map(|e| e.timestamp_us).min().unwrap_or(0);
    let last = rlist.iter().map(|e| e.timestamp_us).max().unwrap_or(0);
    let span_secs = last.saturating_sub(first) as f64 / 1e6;
    if span_secs <= 0.0 {
        return 0.0;
    }
    requests as f64 / span_secs
}

/// One step of a [`combine`] chain.
#[derive(Debug, Clone, PartialEq)]
pub enum CombineStep {
    /// Consume events up to and including the `num_match`-th response
    /// with `status`; fails if fewer occur.
    CheckStatus {
        /// Status code to match.
        status: u16,
        /// Matches required.
        num_match: usize,
        /// View to count under.
        view: View,
    },
    /// Over the window `tdelta` from the first remaining event: at
    /// most `num` requests. Consumes every event in the window.
    AtMostRequests {
        /// Window length.
        tdelta: Duration,
        /// View to count under.
        view: View,
        /// Maximum allowed requests.
        num: usize,
    },
    /// Over the window `tdelta` from the first remaining event: at
    /// least `num` requests. Consumes every event in the window.
    AtLeastRequests {
        /// Window length.
        tdelta: Duration,
        /// View to count under.
        view: View,
        /// Minimum required requests.
        num: usize,
    },
}

impl CombineStep {
    /// Evaluates the step on `events`, returning how many leading
    /// events it consumed, or `None` if the step's condition failed.
    fn consume(&self, events: &[Event]) -> Option<usize> {
        match self {
            CombineStep::CheckStatus {
                status,
                num_match,
                view,
            } => {
                if *num_match == 0 {
                    return Some(0);
                }
                let mut seen = 0;
                for (index, event) in events.iter().enumerate() {
                    if view.counts(event) && event.status() == Some(*status) {
                        seen += 1;
                        if seen == *num_match {
                            return Some(index + 1);
                        }
                    }
                }
                None
            }
            CombineStep::AtMostRequests { tdelta, view, num } => {
                let (count, consumed) = window_requests(events, *tdelta, *view);
                (count <= *num).then_some(consumed)
            }
            CombineStep::AtLeastRequests { tdelta, view, num } => {
                let (count, consumed) = window_requests(events, *tdelta, *view);
                (count >= *num).then_some(consumed)
            }
        }
    }
}

/// Counts requests in the `tdelta` window anchored at `events[0]`,
/// returning `(count, events_in_window)`.
fn window_requests(events: &[Event], tdelta: Duration, view: View) -> (usize, usize) {
    let Some(first) = events.first() else {
        return (0, 0);
    };
    let cutoff = first
        .timestamp_us
        .saturating_add(tdelta.as_micros() as Micros);
    let mut count = 0;
    let mut consumed = 0;
    for event in events {
        if event.timestamp_us >= cutoff {
            break;
        }
        consumed += 1;
        if event.kind.is_request() && view.counts(event) {
            count += 1;
        }
    }
    (count, consumed)
}

/// `Combine` (Table 3): evaluates `steps` as a state machine over
/// `rlist`. Each satisfied step consumes the events that made it
/// true before handing the remainder to the next step; the chain
/// fails at the first unsatisfied step.
pub fn combine(rlist: &[Event], steps: &[CombineStep]) -> bool {
    let mut remaining = rlist;
    for step in steps {
        match step.consume(remaining) {
            Some(consumed) => remaining = &remaining[consumed..],
            None => return false,
        }
    }
    true
}

// ---------------------------------------------------------------------------
// The checker: queries + pattern checks
// ---------------------------------------------------------------------------

/// Validates recipe assertions against the central observation store.
#[derive(Debug, Clone)]
pub struct AssertionChecker {
    store: Arc<EventStore>,
}

impl AssertionChecker {
    /// Creates a checker reading from `store`.
    pub fn new(store: Arc<EventStore>) -> AssertionChecker {
        AssertionChecker { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// `GetRequests(Src, Dst, ID)` — requests on the edge, filtered
    /// by request-ID pattern, sorted by time.
    pub fn get_requests(&self, src: &str, dst: &str, pattern: &Pattern) -> Vec<Event> {
        self.store
            .query(&Query::requests(src, dst).with_id_pattern(pattern.clone()))
    }

    /// `GetReplies(Src, Dst, ID)` — replies on the edge, filtered by
    /// request-ID pattern, sorted by time.
    pub fn get_replies(&self, src: &str, dst: &str, pattern: &Pattern) -> Vec<Event> {
        self.store
            .query(&Query::replies(src, dst).with_id_pattern(pattern.clone()))
    }

    /// Both directions of the edge interleaved by time — the list
    /// shape `Combine` chains operate over.
    pub fn get_edge_events(&self, src: &str, dst: &str, pattern: &Pattern) -> Vec<Event> {
        self.store
            .query(&Query::edge(src, dst).with_id_pattern(pattern.clone()))
    }

    /// `HasTimeouts(Src, MaxLatency)` (Table 3): every reply `src`
    /// produced for its upstream callers arrived within
    /// `max_latency`.
    ///
    /// Requires the deployment to observe inbound traffic of `src`
    /// (e.g. via an ingress agent for edge services).
    pub fn has_timeouts(&self, src: &str, max_latency: Duration, pattern: &Pattern) -> Check {
        let name = format!("HasTimeouts({src}, {max_latency:?})");
        let replies = self.store.query(&Query {
            dst: Some(src.to_string()),
            kind: gremlin_store::KindFilter::Replies,
            id_pattern: Some(pattern.clone()),
            ..Query::default()
        });
        if replies.is_empty() {
            return Check::new(name, false, "no replies from the service were observed");
        }
        let latencies = reply_latency(&replies, View::Observed);
        let max = latencies.iter().max().copied().unwrap_or_default();
        let slow = latencies.iter().filter(|l| **l > max_latency).count();
        Check::new(
            name,
            slow == 0,
            format!(
                "{} replies observed, max latency {:?}, {} over the limit",
                latencies.len(),
                max,
                slow
            ),
        )
    }

    /// `HasBoundedRetries(Src, Dst, MaxTries)` (Table 3): when a call
    /// from `src` to `dst` fails, `src` issues at most `max_tries`
    /// attempts for that call.
    ///
    /// Because retries of one API call all carry the same propagated
    /// request ID (§4.1), the check groups edge traffic by ID: every
    /// flow that observed at least one failed reply (5xx or
    /// TCP-level) must contain at most `max_tries` requests. Flows
    /// without failures are ignored. The check is inconclusive
    /// (fails) when no failures were observed at all — the retry
    /// logic was never exercised.
    ///
    /// The paper's §4.2 sketch — an aggregate
    /// `Combine(CheckStatus(…), AtMostRequests(…))` chain — is
    /// available as
    /// [`AssertionChecker::has_bounded_retries_with`]; it assumes a
    /// single test flow per evaluation window.
    pub fn has_bounded_retries(
        &self,
        src: &str,
        dst: &str,
        max_tries: usize,
        pattern: &Pattern,
    ) -> Check {
        let name = format!("HasBoundedRetries({src}, {dst}, {max_tries})");
        let events = self.get_edge_events(src, dst, pattern);
        if events.is_empty() {
            return Check::new(name, false, "no traffic observed on the edge");
        }
        let mut flows: std::collections::BTreeMap<&str, (usize, usize)> =
            std::collections::BTreeMap::new();
        for event in &events {
            let Some(id) = event.request_id.as_deref() else {
                continue;
            };
            let entry = flows.entry(id).or_insert((0, 0));
            match event.status() {
                None => entry.0 += 1, // a request
                Some(status) if status == 0 || (500..600).contains(&status) => entry.1 += 1,
                Some(_) => {}
            }
        }
        let failed_flows: Vec<(&&str, &(usize, usize))> = flows
            .iter()
            .filter(|(_, (_, failures))| *failures > 0)
            .collect();
        if failed_flows.is_empty() {
            return Check::new(
                name,
                false,
                "no failed replies observed; retry logic never exercised",
            );
        }
        let worst = failed_flows
            .iter()
            .max_by_key(|(_, (requests, _))| *requests)
            .expect("non-empty");
        let violations = failed_flows
            .iter()
            .filter(|(_, (requests, _))| *requests > max_tries)
            .count();
        Check::new(
            name,
            violations == 0,
            format!(
                "{} failing flow(s); worst flow {} sent {} request(s) (budget {}); {} violation(s)",
                failed_flows.len(),
                worst.0,
                worst.1 .0,
                max_tries,
                violations
            ),
        )
    }

    /// The paper's §4.2 reference sketch of `HasBoundedRetries`, with
    /// every knob exposed: after `failures` replies with `error`, at
    /// most `max_tries` requests within `window` — an aggregate
    /// `Combine(CheckStatus(error, failures), AtMostRequests(window,
    /// max_tries))` over the interleaved edge events. Meaningful when
    /// a single test flow is evaluated per window.
    #[allow(clippy::too_many_arguments)]
    pub fn has_bounded_retries_with(
        &self,
        src: &str,
        dst: &str,
        error: u16,
        failures: usize,
        window: Duration,
        max_tries: usize,
        pattern: &Pattern,
    ) -> Check {
        let name = format!("HasBoundedRetries({src}, {dst}, {max_tries})");
        let events = self.get_edge_events(src, dst, pattern);
        if events.is_empty() {
            return Check::new(name, false, "no traffic observed on the edge");
        }
        let steps = [
            CombineStep::CheckStatus {
                status: error,
                num_match: failures,
                view: View::Observed,
            },
            CombineStep::AtMostRequests {
                tdelta: window,
                view: View::Observed,
                num: max_tries,
            },
        ];
        let passed = combine(&events, &steps);
        let total_requests = num_requests(&events, None, View::Observed);
        let total_errors = events.iter().filter(|e| e.status() == Some(error)).count();
        Check::new(
            name,
            passed,
            format!(
                "{total_requests} requests and {total_errors} {error}-replies observed; \
                 after {failures} failures at most {max_tries} requests allowed in {window:?}"
            ),
        )
    }

    /// `HasCircuitBreaker(Src, Dst, Threshold, Tdelta,
    /// SuccessThreshold)` (Table 3): after `threshold` failed replies,
    /// `src` stops calling `dst` for `tdelta`; traffic may resume
    /// afterwards (probes / close).
    pub fn has_circuit_breaker(
        &self,
        src: &str,
        dst: &str,
        threshold: usize,
        tdelta: Duration,
        success_threshold: usize,
        pattern: &Pattern,
    ) -> Check {
        let name = format!("HasCircuitBreaker({src}, {dst}, {threshold}, {tdelta:?})");
        let events = self.get_edge_events(src, dst, pattern);
        if events.is_empty() {
            return Check::new(name, false, "no traffic observed on the edge");
        }
        // Locate the `threshold`-th failed reply (5xx or TCP-level 0).
        let mut failures = 0;
        let mut trip_index = None;
        for (index, event) in events.iter().enumerate() {
            if let Some(status) = event.status() {
                if status == 0 || (500..600).contains(&status) {
                    failures += 1;
                    if failures == threshold {
                        trip_index = Some(index);
                        break;
                    }
                }
            }
        }
        let Some(trip_index) = trip_index else {
            return Check::new(
                name,
                false,
                format!("only {failures} failed replies observed, breaker never challenged"),
            );
        };
        let trip_time = events[trip_index].timestamp_us;
        let window_end = trip_time.saturating_add(tdelta.as_micros() as Micros);
        let calls_during_open = events[trip_index + 1..]
            .iter()
            .filter(|e| e.kind.is_request())
            .filter(|e| e.timestamp_us > trip_time && e.timestamp_us < window_end)
            .count();
        let resumed = events[trip_index + 1..]
            .iter()
            .filter(|e| e.kind.is_request())
            .filter(|e| e.timestamp_us >= window_end)
            .count();
        let passed = calls_during_open == 0;
        Check::new(
            name,
            passed,
            format!(
                "tripped after {threshold} failures; {calls_during_open} calls during the \
                 {tdelta:?} open window (expected 0); {resumed} calls after \
                 (success threshold {success_threshold})"
            ),
        )
    }

    /// `HasLatencySlo(Service, Quantile, Bound)` — an extension
    /// check: the `quantile` (0..=1) of the service's reply latencies
    /// to its upstream callers is at most `bound`. Where
    /// [`AssertionChecker::has_timeouts`] bounds the worst case, this
    /// bounds a percentile — the form production SLOs take.
    pub fn has_latency_slo(
        &self,
        service: &str,
        quantile: f64,
        bound: Duration,
        pattern: &Pattern,
    ) -> Check {
        let name = format!(
            "HasLatencySlo({service}, p{:.0} <= {bound:?})",
            quantile * 100.0
        );
        let replies = self.store.query(&Query {
            dst: Some(service.to_string()),
            kind: gremlin_store::KindFilter::Replies,
            id_pattern: Some(pattern.clone()),
            ..Query::default()
        });
        if replies.is_empty() {
            return Check::new(name, false, "no replies from the service were observed");
        }
        let mut latencies = reply_latency(&replies, View::Observed);
        latencies.sort();
        let rank = ((quantile * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        let measured = latencies[rank - 1];
        Check::new(
            name,
            measured <= bound,
            format!(
                "measured p{:.0} = {measured:?} over {} replies",
                quantile * 100.0,
                latencies.len()
            ),
        )
    }

    /// `HasFallback(Src, Primary, Secondary)` — an extension check
    /// for the graceful-degradation pattern the WordPress case study
    /// exercises (§7.1): every flow in which `src`'s call to
    /// `primary` failed must also contain a call from `src` to
    /// `secondary` (the fallback). Inconclusive (fails) when no
    /// primary failures were observed.
    pub fn has_fallback(
        &self,
        src: &str,
        primary: &str,
        secondary: &str,
        pattern: &Pattern,
    ) -> Check {
        let name = format!("HasFallback({src}, {primary} -> {secondary})");
        let primary_replies = self.get_replies(src, primary, pattern);
        let failed_flows: Vec<&str> = primary_replies
            .iter()
            .filter(|event| {
                matches!(event.status(), Some(0))
                    || matches!(event.status(), Some(status) if (500..600).contains(&status))
            })
            .filter_map(|event| event.request_id.as_deref())
            .collect();
        if failed_flows.is_empty() {
            return Check::new(
                name,
                false,
                "no failed primary calls observed; fallback never exercised",
            );
        }
        let secondary_requests = self.get_requests(src, secondary, pattern);
        let mut missing = 0;
        for flow in &failed_flows {
            let fell_back = secondary_requests
                .iter()
                .any(|event| event.request_id.as_deref() == Some(*flow));
            if !fell_back {
                missing += 1;
            }
        }
        Check::new(
            name,
            missing == 0,
            format!(
                "{} flow(s) saw primary failures; {} did not fall back to {secondary}",
                failed_flows.len(),
                missing
            ),
        )
    }

    /// `HasBulkHead(Src, SlowDst, Rate)` (Table 3): while `slow_dst`
    /// is degraded, `src` keeps calling each of its *other*
    /// dependencies (from `graph`) at a rate of at least
    /// `min_rate` requests/second.
    pub fn has_bulkhead(
        &self,
        graph: &AppGraph,
        src: &str,
        slow_dst: &str,
        min_rate: f64,
        pattern: &Pattern,
    ) -> Check {
        let name = format!("HasBulkHead({src}, {slow_dst}, {min_rate} req/s)");
        let others: Vec<String> = graph
            .dependencies(src)
            .into_iter()
            .filter(|dst| dst != slow_dst)
            .collect();
        if others.is_empty() {
            return Check::new(name, false, "service has no other dependencies to protect");
        }
        let mut details = Vec::new();
        let mut passed = true;
        for dst in &others {
            let requests = self.get_requests(src, dst, pattern);
            let rate = request_rate(&requests);
            // NaN (impossible here) must count as a failure, so
            // compare for the passing condition explicitly.
            if rate < min_rate || rate.is_nan() {
                passed = false;
            }
            details.push(format!("{dst}: {rate:.1} req/s"));
        }
        Check::new(name, passed, details.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_store::AppliedFault;

    fn request(src: &str, dst: &str, ts: Micros) -> Event {
        Event::request(src, dst, "GET", "/")
            .with_request_id("test-1")
            .with_timestamp(ts)
    }

    fn reply(src: &str, dst: &str, status: u16, ts: Micros, latency_ms: u64) -> Event {
        let mut event = Event::response(src, dst, status, Duration::from_millis(latency_ms))
            .with_request_id("test-1");
        event.timestamp_us = ts;
        event
    }

    fn sec(s: u64) -> Micros {
        s * 1_000_000
    }

    #[test]
    fn num_requests_counts_and_windows() {
        let events = vec![
            request("a", "b", sec(0)),
            reply("a", "b", 200, sec(1), 10),
            request("a", "b", sec(2)),
            request("a", "b", sec(10)),
        ];
        assert_eq!(num_requests(&events, None, View::Observed), 3);
        assert_eq!(
            num_requests(&events, Some(Duration::from_secs(5)), View::Observed),
            2
        );
        assert_eq!(num_requests(&[], None, View::Observed), 0);
    }

    #[test]
    fn views_differ_on_synthesized_replies() {
        let clean = reply("a", "b", 200, sec(0), 10);
        let injected =
            reply("a", "b", 503, sec(1), 1).with_fault(AppliedFault::Abort { status: 503 });
        let events = vec![clean, injected];
        assert!(check_status(&events, 503, 1, View::Observed));
        assert!(!check_status(&events, 503, 1, View::Untampered));
    }

    #[test]
    fn reply_latency_subtracts_injected_delay_in_untampered_view() {
        let delayed =
            reply("a", "b", 200, sec(0), 150).with_fault(AppliedFault::Delay { delay_us: 100_000 });
        let observed = reply_latency(std::slice::from_ref(&delayed), View::Observed);
        let untampered = reply_latency(std::slice::from_ref(&delayed), View::Untampered);
        assert_eq!(observed, vec![Duration::from_millis(150)]);
        assert_eq!(untampered, vec![Duration::from_millis(50)]);
    }

    #[test]
    fn request_rate_computation() {
        let events = vec![
            request("a", "b", sec(0)),
            request("a", "b", sec(1)),
            request("a", "b", sec(2)),
        ];
        let rate = request_rate(&events);
        assert!(
            (rate - 1.5).abs() < 1e-9,
            "3 requests over 2s = 1.5/s, got {rate}"
        );
        assert_eq!(request_rate(&[]), 0.0);
    }

    #[test]
    fn request_rate_zero_span_is_zero_not_infinite() {
        // A single event (or several sharing one timestamp) spans no
        // measurable interval: the rate is 0.0, not a divide-by-zero
        // infinity that would vacuously satisfy any minimum-rate bound.
        assert_eq!(request_rate(&[request("a", "b", sec(0))]), 0.0);
        assert_eq!(
            request_rate(&[request("a", "b", sec(3)), request("a", "b", sec(3))]),
            0.0
        );
    }

    #[test]
    fn reply_latency_tolerates_out_of_order_timestamps() {
        // Latencies come from the events' own latency fields, never
        // from subtracting adjacent timestamps, so a reply logged
        // "before" its neighbor (clock skew between agents) must not
        // panic or skew the result.
        let events = vec![
            reply("a", "b", 200, sec(5), 30),
            reply("a", "b", 200, sec(1), 20), // earlier timestamp, later in list
        ];
        let latencies = reply_latency(&events, View::Observed);
        assert_eq!(
            latencies,
            vec![Duration::from_millis(30), Duration::from_millis(20)]
        );
    }

    #[test]
    fn combine_consumes_in_sequence() {
        // 5 error replies, then 3 requests within a minute, then
        // (after the window) more requests.
        let mut events = Vec::new();
        for i in 0..5 {
            events.push(reply("a", "b", 503, sec(i), 1));
        }
        for i in 0..3 {
            events.push(request("a", "b", sec(6 + i)));
        }
        events.push(request("a", "b", sec(120)));

        // Bounded retries with budget 5: passes (3 <= 5).
        assert!(combine(
            &events,
            &[
                CombineStep::CheckStatus {
                    status: 503,
                    num_match: 5,
                    view: View::Observed
                },
                CombineStep::AtMostRequests {
                    tdelta: Duration::from_secs(60),
                    view: View::Observed,
                    num: 5
                },
            ]
        ));
        // Budget 2: fails (3 > 2).
        assert!(!combine(
            &events,
            &[
                CombineStep::CheckStatus {
                    status: 503,
                    num_match: 5,
                    view: View::Observed
                },
                CombineStep::AtMostRequests {
                    tdelta: Duration::from_secs(60),
                    view: View::Observed,
                    num: 2
                },
            ]
        ));
        // Needing 6 errors: the first step itself fails.
        assert!(!combine(
            &events,
            &[CombineStep::CheckStatus {
                status: 503,
                num_match: 6,
                view: View::Observed
            }]
        ));
    }

    #[test]
    fn combine_discards_consumed_events() {
        // CheckStatus must consume through its last match so the
        // window of the next step starts *after* the failures.
        let events = vec![
            reply("a", "b", 503, sec(0), 1),
            request("a", "b", sec(1)),
            reply("a", "b", 503, sec(2), 1),
            request("a", "b", sec(3)),
        ];
        // After consuming through the second 503 (index 2), only the
        // final request remains: count 1.
        assert!(combine(
            &events,
            &[
                CombineStep::CheckStatus {
                    status: 503,
                    num_match: 2,
                    view: View::Observed
                },
                CombineStep::AtMostRequests {
                    tdelta: Duration::from_secs(60),
                    view: View::Observed,
                    num: 1
                },
            ]
        ));
        assert!(!combine(
            &events,
            &[
                CombineStep::CheckStatus {
                    status: 503,
                    num_match: 2,
                    view: View::Observed
                },
                CombineStep::AtMostRequests {
                    tdelta: Duration::from_secs(60),
                    view: View::Observed,
                    num: 0
                },
            ]
        ));
    }

    #[test]
    fn at_least_requests_step() {
        let events = vec![request("a", "b", sec(0)), request("a", "b", sec(1))];
        assert!(combine(
            &events,
            &[CombineStep::AtLeastRequests {
                tdelta: Duration::from_secs(60),
                view: View::Observed,
                num: 2
            }]
        ));
        assert!(!combine(
            &events,
            &[CombineStep::AtLeastRequests {
                tdelta: Duration::from_secs(60),
                view: View::Observed,
                num: 3
            }]
        ));
    }

    fn store_with(events: Vec<Event>) -> AssertionChecker {
        let store = EventStore::shared();
        store.extend(events);
        AssertionChecker::new(store)
    }

    #[test]
    fn has_timeouts_passes_fast_replies() {
        let checker = store_with(vec![
            reply("user", "web", 200, sec(0), 50),
            reply("user", "web", 200, sec(1), 80),
        ]);
        let check = checker.has_timeouts("web", Duration::from_millis(100), &Pattern::Any);
        assert!(check.passed, "{check}");
    }

    #[test]
    fn has_timeouts_fails_slow_replies() {
        let checker = store_with(vec![
            reply("user", "web", 200, sec(0), 50),
            reply("user", "web", 200, sec(1), 2500),
        ]);
        let check = checker.has_timeouts("web", Duration::from_secs(1), &Pattern::Any);
        assert!(!check.passed, "{check}");
        assert!(check.details.contains("1 over the limit"));
    }

    #[test]
    fn has_timeouts_fails_without_observations() {
        let checker = store_with(vec![]);
        assert!(
            !checker
                .has_timeouts("web", Duration::from_secs(1), &Pattern::Any)
                .passed
        );
    }

    #[test]
    fn has_bounded_retries_pass_and_fail() {
        // 5 failures then 3 retries within the minute.
        let mut events = Vec::new();
        for i in 0..5 {
            events.push(reply("a", "b", 503, sec(i), 1));
        }
        for i in 0..3 {
            events.push(request("a", "b", sec(10 + i)));
        }
        let checker = store_with(events);
        assert!(
            checker
                .has_bounded_retries("a", "b", 5, &Pattern::Any)
                .passed
        );
        assert!(
            !checker
                .has_bounded_retries("a", "b", 2, &Pattern::Any)
                .passed
        );
    }

    #[test]
    fn has_circuit_breaker_detects_quiet_window() {
        let mut events = Vec::new();
        for i in 0..5 {
            events.push(request("a", "b", sec(i)));
            events.push(reply("a", "b", 503, sec(i) + 100, 1));
        }
        // Silence until sec(70), then traffic resumes.
        events.push(request("a", "b", sec(70)));
        let checker = store_with(events);
        let check =
            checker.has_circuit_breaker("a", "b", 5, Duration::from_secs(60), 1, &Pattern::Any);
        assert!(check.passed, "{check}");
        assert!(check.details.contains("1 calls after"));
    }

    #[test]
    fn has_circuit_breaker_fails_on_calls_during_open_window() {
        let mut events = Vec::new();
        for i in 0..5 {
            events.push(reply("a", "b", 503, sec(i), 1));
        }
        events.push(request("a", "b", sec(10))); // violates the open window
        let checker = store_with(events);
        let check =
            checker.has_circuit_breaker("a", "b", 5, Duration::from_secs(60), 1, &Pattern::Any);
        assert!(!check.passed, "{check}");
    }

    #[test]
    fn has_circuit_breaker_counts_tcp_failures() {
        let mut events = Vec::new();
        for i in 0..3 {
            events.push(reply("a", "b", 0, sec(i), 1));
        }
        let checker = store_with(events);
        let check =
            checker.has_circuit_breaker("a", "b", 3, Duration::from_secs(60), 1, &Pattern::Any);
        assert!(check.passed, "{check}");
    }

    #[test]
    fn has_circuit_breaker_inconclusive_without_enough_failures() {
        let checker = store_with(vec![reply("a", "b", 503, sec(0), 1)]);
        let check =
            checker.has_circuit_breaker("a", "b", 5, Duration::from_secs(60), 1, &Pattern::Any);
        assert!(!check.passed);
        assert!(check.details.contains("never challenged"));
    }

    #[test]
    fn has_latency_slo_bounds_percentile_not_max() {
        // Nine fast replies and one slow straggler: p90 passes a
        // 100ms bound even though the max does not.
        let mut events: Vec<Event> = (0..9)
            .map(|i| reply("user", "web", 200, sec(i), 10))
            .collect();
        events.push(reply("user", "web", 200, sec(9), 5000));
        let checker = store_with(events);
        let slo = checker.has_latency_slo("web", 0.9, Duration::from_millis(100), &Pattern::Any);
        assert!(slo.passed, "{slo}");
        let strict = checker.has_latency_slo("web", 1.0, Duration::from_millis(100), &Pattern::Any);
        assert!(!strict.passed, "{strict}");
        let empty = AssertionChecker::new(EventStore::shared());
        assert!(
            !empty
                .has_latency_slo("web", 0.5, Duration::from_secs(1), &Pattern::Any)
                .passed
        );
    }

    #[test]
    fn has_fallback_detects_missing_fallback() {
        // Flow test-1: primary fails, falls back. Flow test-2:
        // primary fails, no fallback.
        let mut fail_1 = reply("web", "es", 503, sec(0), 1);
        fail_1.request_id = Some("test-1".into());
        let mut fallback_1 = request("web", "mysql", sec(1));
        fallback_1.request_id = Some("test-1".into());
        let mut fail_2 = reply("web", "es", 0, sec(2), 1);
        fail_2.request_id = Some("test-2".into());
        let checker = store_with(vec![fail_1, fallback_1, fail_2]);
        let check = checker.has_fallback("web", "es", "mysql", &Pattern::Any);
        assert!(!check.passed, "{check}");
        assert!(check.details.contains("1 did not fall back"));
    }

    #[test]
    fn has_fallback_passes_when_every_failure_falls_back() {
        let mut fail = reply("web", "es", 503, sec(0), 1);
        fail.request_id = Some("test-1".into());
        let mut fallback = request("web", "mysql", sec(1));
        fallback.request_id = Some("test-1".into());
        let checker = store_with(vec![fail, fallback]);
        assert!(
            checker
                .has_fallback("web", "es", "mysql", &Pattern::Any)
                .passed
        );
    }

    #[test]
    fn has_fallback_inconclusive_without_failures() {
        let ok = reply("web", "es", 200, sec(0), 1);
        let checker = store_with(vec![ok]);
        let check = checker.has_fallback("web", "es", "mysql", &Pattern::Any);
        assert!(!check.passed);
        assert!(check.details.contains("never exercised"));
    }

    #[test]
    fn has_bulkhead_checks_other_dependencies() {
        let graph = AppGraph::from_edges(vec![("a", "slow"), ("a", "fast")]);
        // 11 requests to fast over 1 second -> 10 req/s.
        let mut events = Vec::new();
        for i in 0..=10u64 {
            events.push(request("a", "fast", i * 100_000));
        }
        let checker = store_with(events);
        assert!(
            checker
                .has_bulkhead(&graph, "a", "slow", 5.0, &Pattern::Any)
                .passed
        );
        assert!(
            !checker
                .has_bulkhead(&graph, "a", "slow", 50.0, &Pattern::Any)
                .passed
        );
    }

    #[test]
    fn has_bulkhead_requires_other_dependencies() {
        let graph = AppGraph::from_edges(vec![("a", "slow")]);
        let checker = store_with(vec![]);
        let check = checker.has_bulkhead(&graph, "a", "slow", 1.0, &Pattern::Any);
        assert!(!check.passed);
    }

    #[test]
    fn bulkhead_fails_when_other_dependency_starved() {
        let graph = AppGraph::from_edges(vec![("a", "slow"), ("a", "fast")]);
        let checker = store_with(vec![request("a", "slow", sec(0))]);
        // No traffic at all to "fast": rate 0.
        let check = checker.has_bulkhead(&graph, "a", "slow", 1.0, &Pattern::Any);
        assert!(!check.passed, "{check}");
    }

    #[test]
    fn check_display_format() {
        let check = Check::new("X", true, "fine");
        assert_eq!(check.to_string(), "[PASS] X — fine");
        let check = Check::new("Y", false, "bad");
        assert!(check.to_string().starts_with("[FAIL]"));
    }

    #[test]
    fn queries_filter_by_pattern() {
        let store = EventStore::shared();
        store.record_event(request("a", "b", sec(0)));
        store.record_event(
            Event::request("a", "b", "GET", "/")
                .with_request_id("prod-1")
                .with_timestamp(sec(1)),
        );
        let checker = AssertionChecker::new(store);
        assert_eq!(
            checker
                .get_requests("a", "b", &Pattern::new("test-*"))
                .len(),
            1
        );
        assert_eq!(checker.get_requests("a", "b", &Pattern::Any).len(), 2);
        assert!(checker.get_replies("a", "b", &Pattern::Any).is_empty());
        assert_eq!(checker.get_edge_events("a", "b", &Pattern::Any).len(), 2);
    }
}

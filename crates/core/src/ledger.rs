//! The coverage ledger: a cross-run scorecard over flight-recorder
//! artifacts.
//!
//! Every other observability layer (metrics, traces, live monitor,
//! anomaly scorer, flight recorder) watches **one run at a time**.
//! The [`CoverageLedger`] answers the questions that only make sense
//! across runs:
//!
//! * which `(src, dst, fault kind, intensity)` cells of the
//!   fault-injection space have ever been exercised, and with what
//!   outcomes ([`CellStats`]);
//! * which recipes regressed — flipped from passing to
//!   failing/violated, or still pass but drifted hard against their
//!   own historical baselines ([`Regression`], via
//!   [`drift_z`](crate::anomaly::drift_z));
//! * what to test next — [`SteeringPlan`] feeds
//!   `RecipeGenerator::steer`, which skips cells that already
//!   Violated and escalates intensity on cells with long pass
//!   streaks (feedback-based failure testing in the spirit of Cui et
//!   al., arXiv:1908.06466).
//!
//! The ledger is derived state: [`CoverageLedger::scan`] walks a
//! flight-recorder root (each subdirectory is one run, see
//! [`crate::flight`]) plus the append-only `campaigns.jsonl` the
//! [`CampaignRunner`](crate::campaign::CampaignRunner) writes for
//! runs that recorded no artifacts. Partial or crashed run
//! directories are indexed as [`RunOutcome::Incomplete`] rather than
//! failing the scan. All derived views (matrix, markdown scorecard,
//! JSON summary) are deterministic for a given root.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gremlin_store::{EdgeBaseline, Micros};
use gremlin_telemetry::MetricsRegistry;

use crate::anomaly::drift_z;
use crate::flight::{FlightLog, FlightSummary};
use crate::graph::AppGraph;
use crate::monitor::Verdict;
use crate::recipe::RecipeReport;
use crate::scenarios::{Scenario, ScenarioKind};

/// `src` placeholder for service-scoped faults (Crash, Hang, Overload,
/// FakeSuccess) that hit the service from *every* dependent rather
/// than one edge.
pub const SERVICE_WILDCARD: &str = "*";

/// Default robust-z threshold above which baseline drift between two
/// runs of the same edge is reported as a [`Regression`].
pub const DEFAULT_DRIFT_Z: f64 = 3.0;

/// Name of the append-only campaign verdict log inside a flight root.
pub const CAMPAIGN_LEDGER_FILE: &str = "campaigns.jsonl";

/// The fault-type axis of the coverage cube — one variant per
/// [`ScenarioKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// [`ScenarioKind::Abort`].
    Abort,
    /// [`ScenarioKind::Delay`].
    Delay,
    /// [`ScenarioKind::Modify`].
    Modify,
    /// [`ScenarioKind::Disconnect`].
    Disconnect,
    /// [`ScenarioKind::Crash`].
    Crash,
    /// [`ScenarioKind::Hang`].
    Hang,
    /// [`ScenarioKind::Overload`].
    Overload,
    /// [`ScenarioKind::Partition`].
    Partition,
    /// [`ScenarioKind::FakeSuccess`].
    FakeSuccess,
}

impl FaultKind {
    /// Every fault kind, in the canonical column order of the
    /// coverage matrix.
    pub fn all() -> [FaultKind; 9] {
        [
            FaultKind::Abort,
            FaultKind::Delay,
            FaultKind::Modify,
            FaultKind::Disconnect,
            FaultKind::Crash,
            FaultKind::Hang,
            FaultKind::Overload,
            FaultKind::Partition,
            FaultKind::FakeSuccess,
        ]
    }

    /// Short column header for the matrix rendering.
    pub fn short(&self) -> &'static str {
        match self {
            FaultKind::Abort => "abort",
            FaultKind::Delay => "delay",
            FaultKind::Modify => "modify",
            FaultKind::Disconnect => "disc",
            FaultKind::Crash => "crash",
            FaultKind::Hang => "hang",
            FaultKind::Overload => "over",
            FaultKind::Partition => "part",
            FaultKind::FakeSuccess => "fake",
        }
    }

    /// The fault kind of a scenario.
    pub fn of(kind: &ScenarioKind) -> FaultKind {
        match kind {
            ScenarioKind::Abort { .. } => FaultKind::Abort,
            ScenarioKind::Delay { .. } => FaultKind::Delay,
            ScenarioKind::Modify { .. } => FaultKind::Modify,
            ScenarioKind::Disconnect { .. } => FaultKind::Disconnect,
            ScenarioKind::Crash { .. } => FaultKind::Crash,
            ScenarioKind::Hang { .. } => FaultKind::Hang,
            ScenarioKind::Overload { .. } => FaultKind::Overload,
            ScenarioKind::Partition { .. } => FaultKind::Partition,
            ScenarioKind::FakeSuccess { .. } => FaultKind::FakeSuccess,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::Abort => "abort",
            FaultKind::Delay => "delay",
            FaultKind::Modify => "modify",
            FaultKind::Disconnect => "disconnect",
            FaultKind::Crash => "crash",
            FaultKind::Hang => "hang",
            FaultKind::Overload => "overload",
            FaultKind::Partition => "partition",
            FaultKind::FakeSuccess => "fake_success",
        };
        f.write_str(name)
    }
}

/// Buckets a scenario's intensity onto a small ordinal scale so that
/// "the same fault, but harder" lands in a *different* cube cell:
///
/// * probability-driven faults (Abort, Crash) map `p` onto quartiles
///   `1..=4` (`ceil(p * 4)`);
/// * duration-driven faults (Delay, Hang, Overload) map the injected
///   delay onto doubling buckets `floor(log2(ms)) + 1`, clamped to
///   `1..=10` — doubling the delay always moves up one bucket, which
///   is exactly what steering's escalation does;
/// * shape-only faults (Modify, Disconnect, Partition, FakeSuccess)
///   have no intensity knob and always bucket to `1`.
pub fn intensity_bucket(kind: &ScenarioKind) -> u8 {
    fn quartile(p: f64) -> u8 {
        ((p * 4.0).ceil() as i64).clamp(1, 4) as u8
    }
    fn duration_bucket(micros: u128) -> u8 {
        let ms = (micros / 1_000).max(1) as u64;
        let bucket = 64 - ms.leading_zeros(); // floor(log2(ms)) + 1
        (bucket as i64).clamp(1, 10) as u8
    }
    match kind {
        ScenarioKind::Abort { probability, .. } | ScenarioKind::Crash { probability, .. } => {
            quartile(*probability)
        }
        ScenarioKind::Delay { interval, .. } | ScenarioKind::Hang { interval, .. } => {
            duration_bucket(interval.as_micros())
        }
        ScenarioKind::Overload { delay, .. } => duration_bucket(delay.as_micros()),
        _ => 1,
    }
}

/// One cell of the coverage cube: `(src, dst, fault kind, intensity
/// bucket)`. Service-scoped faults use [`SERVICE_WILDCARD`] as `src`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellKey {
    /// Calling service, or [`SERVICE_WILDCARD`] for service-scoped
    /// faults.
    pub src: String,
    /// Called (or targeted) service.
    pub dst: String,
    /// Fault-type axis.
    pub fault: FaultKind,
    /// Ordinal intensity bucket (see [`intensity_bucket`]).
    pub intensity: u8,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} · {} @{}",
            self.src, self.dst, self.fault, self.intensity
        )
    }
}

/// The cube cells a scenario exercises. Edge-scoped faults yield one
/// cell; service-scoped faults yield one wildcard cell; a Partition
/// yields one cell per severed cross pair (both directions).
pub fn cells_for_scenario(scenario: &Scenario) -> Vec<CellKey> {
    let intensity = intensity_bucket(&scenario.kind);
    let fault = FaultKind::of(&scenario.kind);
    let cell = |src: &str, dst: &str| CellKey {
        src: src.to_string(),
        dst: dst.to_string(),
        fault,
        intensity,
    };
    match &scenario.kind {
        ScenarioKind::Abort { src, dst, .. }
        | ScenarioKind::Delay { src, dst, .. }
        | ScenarioKind::Modify { src, dst, .. }
        | ScenarioKind::Disconnect { src, dst, .. } => vec![cell(src, dst)],
        ScenarioKind::Crash { service, .. }
        | ScenarioKind::Hang { service, .. }
        | ScenarioKind::Overload { service, .. }
        | ScenarioKind::FakeSuccess { service, .. } => vec![cell(SERVICE_WILDCARD, service)],
        ScenarioKind::Partition { group_a, group_b } => {
            let mut cells = Vec::new();
            for a in group_a {
                for b in group_b {
                    cells.push(cell(a, b));
                    cells.push(cell(b, a));
                }
            }
            cells.sort();
            cells.dedup();
            cells
        }
    }
}

/// The outcome of one historical run, as recorded in the ledger.
///
/// Variant order is severity order — the derived `Ord` is what
/// `worst_outcome` aggregation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RunOutcome {
    /// All post-hoc checks and live assertions passed, no edge went
    /// anomalous.
    Pass,
    /// The run crashed or was killed before writing `report.json` —
    /// the directory is indexed, not trusted.
    Incomplete,
    /// The run finished but the anomaly scorer flagged at least one
    /// edge Anomalous (checks may still have passed).
    Anomalous,
    /// At least one post-hoc or live check failed.
    AssertionFailed,
    /// A streaming assertion reached the terminal
    /// [`Verdict::Violated`].
    Violated,
}

impl RunOutcome {
    /// Derives the outcome from a finished run's `report.json`.
    pub fn of_summary(summary: &FlightSummary) -> RunOutcome {
        if summary
            .monitor
            .iter()
            .any(|check| check.verdict == Verdict::Violated)
        {
            RunOutcome::Violated
        } else if !summary.passed {
            RunOutcome::AssertionFailed
        } else if summary
            .anomalies
            .iter()
            .any(|score| score.anomalous_at_us.is_some())
        {
            RunOutcome::Anomalous
        } else {
            RunOutcome::Pass
        }
    }

    /// Derives the outcome from an in-memory [`RecipeReport`] — used
    /// by the campaign runner when appending verdicts to the ledger.
    pub fn of_report(report: &RecipeReport) -> RunOutcome {
        if report
            .monitor
            .iter()
            .any(|check| check.verdict == Verdict::Violated)
        {
            RunOutcome::Violated
        } else if !report.passed {
            RunOutcome::AssertionFailed
        } else if report
            .anomalies
            .iter()
            .any(|score| score.anomalous_at_us.is_some())
        {
            RunOutcome::Anomalous
        } else {
            RunOutcome::Pass
        }
    }

    /// Single-character matrix symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            RunOutcome::Pass => "✓",
            RunOutcome::Anomalous => "A",
            RunOutcome::AssertionFailed => "F",
            RunOutcome::Violated => "V",
            RunOutcome::Incomplete => "?",
        }
    }

    /// `true` only for [`RunOutcome::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, RunOutcome::Pass)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RunOutcome::Pass => "pass",
            RunOutcome::Anomalous => "anomalous",
            RunOutcome::AssertionFailed => "assertion-failed",
            RunOutcome::Violated => "violated",
            RunOutcome::Incomplete => "incomplete",
        };
        f.write_str(name)
    }
}

/// One line of `campaigns.jsonl`: a recipe verdict appended by the
/// campaign runner, covering runs with *and without* flight
/// artifacts. Entries whose `flight_dir` was also scanned as a run
/// directory are deduplicated (the richer directory wins).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Recipe name.
    pub recipe: String,
    /// Wall-clock micros when the recipe started.
    pub started_at_us: Micros,
    /// Derived outcome.
    pub outcome: RunOutcome,
    /// Scenarios the recipe staged.
    pub scenarios: Vec<Scenario>,
    /// Flight-recorder directory, when the run recorded one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub flight_dir: Option<PathBuf>,
}

/// One indexed historical run (a flight directory or a dirless
/// `campaigns.jsonl` entry), after deduplication.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunSummary {
    /// Directory name under the root, or the recipe name for dirless
    /// campaign entries.
    pub name: String,
    /// Recipe name.
    pub recipe: String,
    /// Wall-clock micros when the run started.
    pub at_us: Micros,
    /// Derived outcome.
    pub outcome: RunOutcome,
    /// Scenarios the run staged (empty for incomplete runs and
    /// pre-ledger recordings).
    pub scenarios: Vec<Scenario>,
    /// Edges the anomaly scorer drove to Anomalous.
    pub anomalous_edges: Vec<String>,
    /// Flight-recorder directory, when the run has one.
    pub flight_dir: Option<PathBuf>,
}

/// One observation of a cube cell: a run that exercised it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellObservation {
    /// Run start time, micros.
    pub at_us: Micros,
    /// Recipe name.
    pub recipe: String,
    /// Run outcome.
    pub outcome: RunOutcome,
    /// Flight directory of the run, when recorded.
    pub flight_dir: Option<PathBuf>,
}

/// Per-cell statistics derived from the observation history.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellStats {
    /// The cube cell.
    pub key: CellKey,
    /// Total observations.
    pub attempts: usize,
    /// Observations that passed.
    pub passes: usize,
    /// Trailing consecutive passes (the signal steering escalates
    /// on).
    pub pass_streak: usize,
    /// Fraction of adjacent observation pairs that flipped between
    /// pass and non-pass: `0.0` for a stable cell, approaching `1.0`
    /// for a coin-flip cell.
    pub flakiness: f64,
    /// Most recent outcome.
    pub last_outcome: RunOutcome,
    /// Most severe outcome ever observed (what the matrix shows).
    pub worst_outcome: RunOutcome,
    /// Full history, oldest first.
    pub history: Vec<CellObservation>,
}

/// How a regression was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RegressionKind {
    /// A cell that was passing now fails or violates.
    Outcome,
    /// An edge still passes but its learned baseline drifted beyond
    /// the z threshold between its earliest and latest runs.
    Drift,
}

/// A resilience regression surfaced by the ledger.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Regression {
    /// Detection mechanism.
    pub kind: RegressionKind,
    /// Calling service (or [`SERVICE_WILDCARD`]).
    pub src: String,
    /// Called service.
    pub dst: String,
    /// The affected cube cell, for outcome regressions.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cell: Option<CellKey>,
    /// The drift z-score, for drift regressions.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub z: Option<f64>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind {
            RegressionKind::Outcome => "OUTCOME",
            RegressionKind::Drift => "DRIFT",
        };
        write!(f, "{tag:>7}  {} -> {}: {}", self.src, self.dst, self.detail)
    }
}

/// Serializable scan summary, emitted by `gremlin coverage --json`.
#[derive(Debug, Clone, Serialize)]
pub struct LedgerSummary {
    /// The scanned flight root.
    pub root: PathBuf,
    /// Number of runs indexed (directories + dirless campaign
    /// entries).
    pub runs_scanned: usize,
    /// Names of runs indexed as incomplete.
    pub incomplete_runs: Vec<String>,
    /// Number of distinct cube cells with at least one observation.
    pub covered_cells: usize,
    /// Every indexed run.
    pub runs: Vec<RunSummary>,
    /// Per-cell stats, in cube-key order.
    pub cells: Vec<CellStats>,
    /// Detected regressions.
    pub regressions: Vec<Regression>,
}

/// The feedback signal extracted from a ledger for
/// `RecipeGenerator::steer`: per `(src, dst, fault kind)` —
/// intensity buckets merged — whether the cell family ever Violated,
/// and its trailing pass streak.
#[derive(Debug, Clone, Default)]
pub struct SteeringPlan {
    violated: BTreeSet<(String, String, FaultKind)>,
    streaks: BTreeMap<(String, String, FaultKind), usize>,
}

/// The steering verdict for one candidate scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Steering {
    /// No history worth acting on: emit the test unchanged.
    Fresh,
    /// The cell already Violated — re-running it re-confirms a known
    /// defect; skip it and spend the budget elsewhere.
    Skip {
        /// Why the test was dropped.
        reason: String,
    },
    /// The cell keeps passing: escalate intensity.
    Escalate {
        /// Trailing consecutive passes observed.
        streak: usize,
    },
}

impl SteeringPlan {
    /// The steering verdict for a candidate scenario, given the
    /// escalation threshold (minimum trailing pass streak).
    pub fn verdict_for(&self, scenario: &Scenario, escalate_after: usize) -> Steering {
        let mut best_streak = 0usize;
        for cell in cells_for_scenario(scenario) {
            let key = (cell.src, cell.dst, cell.fault);
            if self.violated.contains(&key) {
                return Steering::Skip {
                    reason: format!(
                        "skip: {} -> {} already violated under {}",
                        key.0, key.1, key.2
                    ),
                };
            }
            if let Some(streak) = self.streaks.get(&key) {
                best_streak = best_streak.max(*streak);
            }
        }
        if escalate_after > 0 && best_streak >= escalate_after {
            Steering::Escalate {
                streak: best_streak,
            }
        } else {
            Steering::Fresh
        }
    }
}

/// The cross-run coverage ledger. Build one with
/// [`CoverageLedger::scan`]; see the module docs for what it indexes.
#[derive(Debug, Clone)]
pub struct CoverageLedger {
    root: PathBuf,
    runs: Vec<RunSummary>,
    incomplete: Vec<String>,
    cells: BTreeMap<CellKey, CellStats>,
    regressions: Vec<Regression>,
}

impl CoverageLedger {
    /// Scans a flight root with the default drift threshold
    /// ([`DEFAULT_DRIFT_Z`]). A missing root yields an empty ledger,
    /// not an error — "never ran anything" is a valid coverage state.
    ///
    /// # Errors
    ///
    /// Filesystem errors walking the root (individual broken run
    /// directories are indexed as incomplete instead).
    pub fn scan(root: impl AsRef<Path>) -> io::Result<CoverageLedger> {
        Self::scan_with(root, DEFAULT_DRIFT_Z)
    }

    /// Like [`CoverageLedger::scan`], but also bumps the
    /// `gremlin_ledger_runs_scanned_total` and
    /// `gremlin_ledger_regressions_total` counters on `registry`.
    ///
    /// # Errors
    ///
    /// Same as [`CoverageLedger::scan`].
    pub fn scan_with_telemetry(
        root: impl AsRef<Path>,
        registry: &MetricsRegistry,
    ) -> io::Result<CoverageLedger> {
        let ledger = Self::scan(root)?;
        registry
            .counter(
                "gremlin_ledger_runs_scanned_total",
                "Historical runs indexed into the coverage ledger.",
                &[],
            )
            .add(ledger.runs.len() as u64);
        registry
            .counter(
                "gremlin_ledger_regressions_total",
                "Resilience regressions (outcome flips and baseline drift) detected by ledger scans.",
                &[],
            )
            .add(ledger.regressions.len() as u64);
        Ok(ledger)
    }

    /// Scans a flight root with an explicit drift-z threshold.
    ///
    /// # Errors
    ///
    /// Filesystem errors walking the root.
    pub fn scan_with(root: impl AsRef<Path>, drift_threshold: f64) -> io::Result<CoverageLedger> {
        let root = root.as_ref();
        let mut runs: Vec<RunSummary> = Vec::new();
        let mut incomplete: Vec<String> = Vec::new();
        // Per-edge baseline timeline across runs, for drift detection.
        let mut baselines: BTreeMap<(String, String), Vec<(Micros, EdgeBaseline)>> =
            BTreeMap::new();
        let mut scanned_dirs: BTreeSet<String> = BTreeSet::new();

        if root.is_dir() {
            let mut dirs: Vec<PathBuf> = fs::read_dir(root)?
                .filter_map(|entry| entry.ok())
                .map(|entry| entry.path())
                .filter(|path| path.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                scanned_dirs.insert(name.clone());
                match FlightLog::load(&dir) {
                    Ok(log) => {
                        for baseline in &log.baselines {
                            baselines
                                .entry((baseline.src.clone(), baseline.dst.clone()))
                                .or_default()
                                .push((log.meta.started_at_us, baseline.clone()));
                        }
                        let (outcome, scenarios, anomalous_edges) = match &log.report {
                            Some(report) => (
                                RunOutcome::of_summary(report),
                                report.scenarios.clone(),
                                report
                                    .anomalies
                                    .iter()
                                    .filter(|score| score.anomalous_at_us.is_some())
                                    .map(|score| format!("{} -> {}", score.src, score.dst))
                                    .collect(),
                            ),
                            None => (RunOutcome::Incomplete, Vec::new(), Vec::new()),
                        };
                        if outcome == RunOutcome::Incomplete {
                            incomplete.push(name.clone());
                        }
                        runs.push(RunSummary {
                            name,
                            recipe: log.meta.recipe.clone(),
                            at_us: log.meta.started_at_us,
                            outcome,
                            scenarios,
                            anomalous_edges,
                            flight_dir: Some(dir),
                        });
                    }
                    Err(_) => {
                        // Even meta.json is gone or garbage: index the
                        // husk so the scorecard shows it happened.
                        incomplete.push(name.clone());
                        runs.push(RunSummary {
                            at_us: trailing_micros(&name),
                            recipe: name.clone(),
                            name,
                            outcome: RunOutcome::Incomplete,
                            scenarios: Vec::new(),
                            anomalous_edges: Vec::new(),
                            flight_dir: Some(dir),
                        });
                    }
                }
            }
        }

        // Campaign verdicts without artifacts (unmonitored recipes):
        // tolerate torn tail lines, skip entries whose directory was
        // already indexed above.
        for entry in read_campaign_entries(&root.join(CAMPAIGN_LEDGER_FILE)) {
            let claimed = entry
                .flight_dir
                .as_ref()
                .and_then(|dir| dir.file_name())
                .map(|n| n.to_string_lossy().into_owned());
            if matches!(&claimed, Some(dir) if scanned_dirs.contains(dir)) {
                continue;
            }
            if entry.outcome == RunOutcome::Incomplete {
                incomplete.push(entry.recipe.clone());
            }
            runs.push(RunSummary {
                name: entry.recipe.clone(),
                recipe: entry.recipe,
                at_us: entry.started_at_us,
                outcome: entry.outcome,
                scenarios: entry.scenarios,
                anomalous_edges: Vec::new(),
                flight_dir: entry.flight_dir,
            });
        }

        runs.sort_by(|a, b| (a.at_us, &a.name).cmp(&(b.at_us, &b.name)));

        // Fold runs into the cube.
        let mut histories: BTreeMap<CellKey, Vec<CellObservation>> = BTreeMap::new();
        for run in &runs {
            for scenario in &run.scenarios {
                for key in cells_for_scenario(scenario) {
                    histories.entry(key).or_default().push(CellObservation {
                        at_us: run.at_us,
                        recipe: run.recipe.clone(),
                        outcome: run.outcome,
                        flight_dir: run.flight_dir.clone(),
                    });
                }
            }
        }
        let cells: BTreeMap<CellKey, CellStats> = histories
            .into_iter()
            .map(|(key, history)| (key.clone(), CellStats::from_history(key, history)))
            .collect();

        let mut regressions = Vec::new();
        for stats in cells.values() {
            let n = stats.history.len();
            if n >= 2
                && stats.history[n - 2].outcome.is_pass()
                && matches!(
                    stats.history[n - 1].outcome,
                    RunOutcome::AssertionFailed | RunOutcome::Violated
                )
            {
                regressions.push(Regression {
                    kind: RegressionKind::Outcome,
                    src: stats.key.src.clone(),
                    dst: stats.key.dst.clone(),
                    cell: Some(stats.key.clone()),
                    z: None,
                    detail: format!(
                        "{} was passing, latest run {} ({})",
                        stats.key,
                        stats.history[n - 1].outcome,
                        stats.history[n - 1].recipe
                    ),
                });
            }
        }
        for ((src, dst), mut timeline) in baselines {
            if timeline.len() < 2 {
                continue;
            }
            timeline.sort_by_key(|(at, _)| *at);
            let (_, reference) = &timeline[0];
            let (_, current) = &timeline[timeline.len() - 1];
            let z = drift_z(reference, current);
            if z >= drift_threshold {
                regressions.push(Regression {
                    kind: RegressionKind::Drift,
                    detail: format!(
                        "baseline drift z={z:.1} across {} runs (p50 {}us -> {}us, error rate {:.3} -> {:.3})",
                        timeline.len(),
                        reference.p50_us,
                        current.p50_us,
                        reference.error_rate,
                        current.error_rate,
                    ),
                    src,
                    dst,
                    cell: None,
                    z: Some(z),
                });
            }
        }
        regressions.sort_by(|a, b| {
            (&a.src, &a.dst, a.kind == RegressionKind::Drift).cmp(&(
                &b.src,
                &b.dst,
                b.kind == RegressionKind::Drift,
            ))
        });

        Ok(CoverageLedger {
            root: root.to_path_buf(),
            runs,
            incomplete,
            cells,
            regressions,
        })
    }

    /// The scanned root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Every indexed run, sorted by start time.
    pub fn runs(&self) -> &[RunSummary] {
        &self.runs
    }

    /// Number of indexed runs.
    pub fn runs_scanned(&self) -> usize {
        self.runs.len()
    }

    /// Names of runs indexed as [`RunOutcome::Incomplete`].
    pub fn incomplete_runs(&self) -> &[String] {
        &self.incomplete
    }

    /// Per-cell stats, in cube-key order.
    pub fn cells(&self) -> impl Iterator<Item = &CellStats> {
        self.cells.values()
    }

    /// Stats for one cell.
    pub fn cell(&self, key: &CellKey) -> Option<&CellStats> {
        self.cells.get(key)
    }

    /// Number of distinct covered cells.
    pub fn covered_cells(&self) -> usize {
        self.cells.len()
    }

    /// The set of covered cell keys — the campaign runner diffs this
    /// before/after to report cells newly covered by a campaign.
    pub fn covered_keys(&self) -> BTreeSet<CellKey> {
        self.cells.keys().cloned().collect()
    }

    /// Detected regressions, sorted by edge.
    pub fn regressions(&self) -> &[Regression] {
        &self.regressions
    }

    /// Extracts the steering signal (see [`SteeringPlan`]).
    pub fn steering_plan(&self) -> SteeringPlan {
        let mut merged: BTreeMap<(String, String, FaultKind), Vec<CellObservation>> =
            BTreeMap::new();
        for stats in self.cells.values() {
            merged
                .entry((
                    stats.key.src.clone(),
                    stats.key.dst.clone(),
                    stats.key.fault,
                ))
                .or_default()
                .extend(stats.history.iter().cloned());
        }
        let mut plan = SteeringPlan::default();
        for (key, mut history) in merged {
            history.sort_by_key(|obs| obs.at_us);
            if history
                .iter()
                .any(|obs| obs.outcome == RunOutcome::Violated)
            {
                plan.violated.insert(key);
                continue;
            }
            let streak = history
                .iter()
                .rev()
                .take_while(|obs| obs.outcome.is_pass())
                .count();
            if streak > 0 {
                plan.streaks.insert(key, streak);
            }
        }
        plan
    }

    /// Cube cells the application graph makes testable but no run has
    /// ever exercised: per edge the Abort/Delay/Disconnect family,
    /// per service with dependents the Crash/Hang/Overload family
    /// (intensity ignored — any bucket counts as exercised).
    pub fn untested(&self, graph: &AppGraph) -> Vec<(String, String, FaultKind)> {
        let covered: BTreeSet<(String, String, FaultKind)> = self
            .cells
            .keys()
            .map(|key| (key.src.clone(), key.dst.clone(), key.fault))
            .collect();
        let mut missing = Vec::new();
        for (src, dst) in graph.edges() {
            for fault in [FaultKind::Abort, FaultKind::Delay, FaultKind::Disconnect] {
                let key = (src.clone(), dst.clone(), fault);
                if !covered.contains(&key) {
                    missing.push(key);
                }
            }
        }
        for service in graph.services() {
            if graph.dependents(&service).is_empty() {
                continue;
            }
            for fault in [FaultKind::Crash, FaultKind::Hang, FaultKind::Overload] {
                let key = (SERVICE_WILDCARD.to_string(), service.clone(), fault);
                if !covered.contains(&key) {
                    missing.push(key);
                }
            }
        }
        missing.sort();
        missing
    }

    /// The serializable scan summary (`gremlin coverage --json`).
    pub fn summary(&self) -> LedgerSummary {
        LedgerSummary {
            root: self.root.clone(),
            runs_scanned: self.runs.len(),
            incomplete_runs: self.incomplete.clone(),
            covered_cells: self.cells.len(),
            runs: self.runs.clone(),
            cells: self.cells.values().cloned().collect(),
            regressions: self.regressions.clone(),
        }
    }

    /// Rows of the coverage matrix: distinct `(src, dst)` pairs with
    /// any coverage, plus (when a graph is given) every graph edge
    /// and every service-wildcard row the graph implies.
    fn matrix_rows(&self, graph: Option<&AppGraph>) -> Vec<(String, String)> {
        let mut rows: BTreeSet<(String, String)> = self
            .cells
            .keys()
            .map(|key| (key.src.clone(), key.dst.clone()))
            .collect();
        if let Some(graph) = graph {
            for (src, dst) in graph.edges() {
                rows.insert((src, dst));
            }
            for service in graph.services() {
                if !graph.dependents(&service).is_empty() {
                    rows.insert((SERVICE_WILDCARD.to_string(), service));
                }
            }
        }
        rows.into_iter().collect()
    }

    /// Columns of the coverage matrix: fault kinds with any coverage,
    /// plus the graph-implied universe when a graph is given, in
    /// canonical order.
    fn matrix_columns(&self, graph: Option<&AppGraph>) -> Vec<FaultKind> {
        let mut present: BTreeSet<FaultKind> = self.cells.keys().map(|key| key.fault).collect();
        if graph.is_some() {
            present.extend([
                FaultKind::Abort,
                FaultKind::Delay,
                FaultKind::Disconnect,
                FaultKind::Crash,
                FaultKind::Hang,
                FaultKind::Overload,
            ]);
        }
        FaultKind::all()
            .into_iter()
            .filter(|fault| present.contains(fault))
            .collect()
    }

    /// Aggregates one matrix slot across intensity buckets: worst
    /// outcome plus total attempts, or `None` if untested.
    fn slot(&self, src: &str, dst: &str, fault: FaultKind) -> Option<(RunOutcome, usize)> {
        let mut worst: Option<RunOutcome> = None;
        let mut attempts = 0usize;
        for (key, stats) in &self.cells {
            if key.src == src && key.dst == dst && key.fault == fault {
                attempts += stats.attempts;
                worst = Some(match worst {
                    Some(prev) => prev.max(stats.worst_outcome),
                    None => stats.worst_outcome,
                });
            }
        }
        worst.map(|w| (w, attempts))
    }

    /// Renders the scorecard as text: header, edge × fault matrix,
    /// regression section, and (with a graph) the untested-cell
    /// listing. `color` enables ANSI escapes.
    pub fn render(&self, graph: Option<&AppGraph>, color: bool) -> String {
        let paint = |text: String, code: &str| -> String {
            if color {
                format!("\x1b[{code}m{text}\x1b[0m")
            } else {
                text
            }
        };
        let mut out = format!(
            "coverage ledger: {}\n  {} run(s) scanned, {} incomplete, {} cell(s) covered, {} regression(s)\n",
            self.root.display(),
            self.runs.len(),
            self.incomplete.len(),
            self.cells.len(),
            self.regressions.len(),
        );
        let rows = self.matrix_rows(graph);
        let columns = self.matrix_columns(graph);
        if rows.is_empty() || columns.is_empty() {
            out.push_str("  (no runs recorded)\n");
            return out;
        }
        let label_width = rows
            .iter()
            .map(|(src, dst)| src.chars().count() + dst.chars().count() + 4)
            .max()
            .unwrap_or(8)
            .max("edge \\ fault".len());
        out.push('\n');
        out.push_str(&format!("  {:label_width$}", "edge \\ fault"));
        for fault in &columns {
            out.push_str(&format!("  {:>6}", fault.short()));
        }
        out.push('\n');
        for (src, dst) in &rows {
            let label = format!("{src} -> {dst}");
            out.push_str(&format!("  {label:label_width$}"));
            for fault in &columns {
                match self.slot(src, dst, *fault) {
                    Some((worst, attempts)) => {
                        let text = format!("{}{}", worst.symbol(), attempts);
                        let code = match worst {
                            RunOutcome::Pass => "32",
                            RunOutcome::Anomalous => "33",
                            RunOutcome::AssertionFailed | RunOutcome::Violated => "31",
                            RunOutcome::Incomplete => "2",
                        };
                        // Pad before painting: escape codes have no
                        // width.
                        out.push_str(&format!("  {}", paint(format!("{text:>6}"), code)));
                    }
                    None => out.push_str(&format!("  {}", paint(format!("{:>6}", "·"), "2"))),
                }
            }
            out.push('\n');
        }
        if !self.regressions.is_empty() {
            out.push_str("\nregressions:\n");
            for regression in &self.regressions {
                out.push_str(&format!("  {}\n", paint(regression.to_string(), "31")));
            }
        }
        if let Some(graph) = graph {
            let untested = self.untested(graph);
            if !untested.is_empty() {
                out.push_str("\nuntested cells:\n");
                let mut by_edge: BTreeMap<(String, String), Vec<FaultKind>> = BTreeMap::new();
                for (src, dst, fault) in untested {
                    by_edge.entry((src, dst)).or_default().push(fault);
                }
                for ((src, dst), faults) in by_edge {
                    let list: Vec<String> = faults.iter().map(|f| f.to_string()).collect();
                    out.push_str(&format!("  {src} -> {dst}: {}\n", list.join(", ")));
                }
            }
        }
        if !self.incomplete.is_empty() {
            out.push_str("\nincomplete runs:\n");
            for name in &self.incomplete {
                out.push_str(&format!("  {name}\n"));
            }
        }
        out
    }

    /// Renders the scorecard as Markdown — the CI build artifact.
    pub fn to_markdown(&self, graph: Option<&AppGraph>) -> String {
        let mut out = String::from("# Resilience coverage scorecard\n\n");
        out.push_str(&format!(
            "`{}` — {} run(s) scanned, {} incomplete, {} cell(s) covered, {} regression(s).\n\n",
            self.root.display(),
            self.runs.len(),
            self.incomplete.len(),
            self.cells.len(),
            self.regressions.len(),
        ));
        let rows = self.matrix_rows(graph);
        let columns = self.matrix_columns(graph);
        if !rows.is_empty() && !columns.is_empty() {
            out.push_str("| edge \\ fault |");
            for fault in &columns {
                out.push_str(&format!(" {fault} |"));
            }
            out.push_str("\n|---|");
            for _ in &columns {
                out.push_str("---|");
            }
            out.push('\n');
            for (src, dst) in &rows {
                out.push_str(&format!("| `{src} -> {dst}` |"));
                for fault in &columns {
                    match self.slot(src, dst, *fault) {
                        Some((worst, attempts)) => {
                            let text = format!("{worst} ×{attempts}");
                            if matches!(worst, RunOutcome::Violated | RunOutcome::AssertionFailed) {
                                out.push_str(&format!(" **{text}** |"));
                            } else {
                                out.push_str(&format!(" {text} |"));
                            }
                        }
                        None => out.push_str(" — |"),
                    }
                }
                out.push('\n');
            }
            out.push('\n');
        }
        if !self.regressions.is_empty() {
            out.push_str("## Regressions\n\n");
            for regression in &self.regressions {
                let tag = match regression.kind {
                    RegressionKind::Outcome => "outcome",
                    RegressionKind::Drift => "drift",
                };
                out.push_str(&format!(
                    "- **{tag}** `{} -> {}`: {}\n",
                    regression.src, regression.dst, regression.detail
                ));
            }
            out.push('\n');
        }
        if let Some(graph) = graph {
            let untested = self.untested(graph);
            if !untested.is_empty() {
                out.push_str("## Untested cells\n\n");
                let mut by_edge: BTreeMap<(String, String), Vec<FaultKind>> = BTreeMap::new();
                for (src, dst, fault) in untested {
                    by_edge.entry((src, dst)).or_default().push(fault);
                }
                for ((src, dst), faults) in by_edge {
                    let list: Vec<String> = faults.iter().map(|f| f.to_string()).collect();
                    out.push_str(&format!("- `{src} -> {dst}`: {}\n", list.join(", ")));
                }
                out.push('\n');
            }
        }
        if !self.incomplete.is_empty() {
            out.push_str("## Incomplete runs\n\n");
            for name in &self.incomplete {
                out.push_str(&format!("- `{name}`\n"));
            }
            out.push('\n');
        }
        out
    }
}

impl CellStats {
    fn from_history(key: CellKey, history: Vec<CellObservation>) -> CellStats {
        let attempts = history.len();
        let passes = history.iter().filter(|obs| obs.outcome.is_pass()).count();
        let pass_streak = history
            .iter()
            .rev()
            .take_while(|obs| obs.outcome.is_pass())
            .count();
        let flips = history
            .windows(2)
            .filter(|pair| pair[0].outcome.is_pass() != pair[1].outcome.is_pass())
            .count();
        let flakiness = if attempts > 1 {
            flips as f64 / (attempts - 1) as f64
        } else {
            0.0
        };
        let last_outcome = history
            .last()
            .map(|obs| obs.outcome)
            .unwrap_or(RunOutcome::Incomplete);
        let worst_outcome = history
            .iter()
            .map(|obs| obs.outcome)
            .max()
            .unwrap_or(RunOutcome::Incomplete);
        CellStats {
            key,
            attempts,
            passes,
            pass_streak,
            flakiness,
            last_outcome,
            worst_outcome,
            history,
        }
    }
}

/// Appends campaign verdict entries to `<root>/campaigns.jsonl`
/// (creating the root if needed) — called by the campaign runner
/// after every campaign.
///
/// # Errors
///
/// Directory creation, serialization or file I/O failures.
pub fn append_campaign_entries(root: impl AsRef<Path>, entries: &[LedgerEntry]) -> io::Result<()> {
    if entries.is_empty() {
        return Ok(());
    }
    let root = root.as_ref();
    fs::create_dir_all(root)?;
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(root.join(CAMPAIGN_LEDGER_FILE))?;
    use std::io::Write;
    for entry in entries {
        let line = serde_json::to_string(entry)?;
        writeln!(file, "{line}")?;
    }
    Ok(())
}

fn read_campaign_entries(path: &Path) -> Vec<LedgerEntry> {
    match fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .filter(|line| !line.trim().is_empty())
            .filter_map(|line| serde_json::from_str(line).ok())
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Best-effort start-time recovery for a husk directory whose
/// `meta.json` is gone: the directory name ends in `-<started_at_us>`.
fn trailing_micros(name: &str) -> Micros {
    name.rsplit('-')
        .next()
        .and_then(|tail| tail.parse::<Micros>().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightRecorder, FLIGHT_SCHEMA_VERSION};
    use crate::monitor::LiveCheck;
    use std::time::Duration;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gremlin-ledger-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn summary(name: &str, passed: bool, scenarios: Vec<Scenario>) -> FlightSummary {
        FlightSummary {
            name: name.to_string(),
            passed,
            injected: scenarios.iter().map(|s| s.to_string()).collect(),
            checks: Vec::new(),
            monitor: Vec::new(),
            anomalies: Vec::new(),
            scenarios,
        }
    }

    fn violated_check() -> LiveCheck {
        LiveCheck {
            name: "LiveErrorRate(web, <= 1%)".to_string(),
            verdict: Verdict::Violated,
            detail: "error rate 40%".to_string(),
            windows: 4,
            first_failing_at_us: Some(1_000_000),
            violated_at_us: Some(3_000_000),
        }
    }

    fn record_run(
        root: &Path,
        recipe: &str,
        at: Micros,
        summary: &FlightSummary,
        baselines: &[EdgeBaseline],
    ) -> PathBuf {
        let mut recorder = FlightRecorder::create(root, recipe, at, 1_000_000).unwrap();
        recorder.record_baselines(baselines).unwrap();
        recorder.finish(summary).unwrap()
    }

    fn baseline(src: &str, dst: &str, p50_ms: u64) -> EdgeBaseline {
        EdgeBaseline {
            src: src.to_string(),
            dst: dst.to_string(),
            windows: 10,
            rate_ewma: 10.0,
            rate_mad: 0.5,
            error_rate: 0.0,
            error_upper: 0.02,
            responses: 100,
            p50_us: p50_ms * 1_000,
            p99_us: p50_ms * 2_000,
            latency_mad_us: 400.0,
        }
    }

    #[test]
    fn intensity_buckets_are_ordinal_and_escalation_moves_them() {
        let delay = |ms| Scenario::delay("a", "b", Duration::from_millis(ms)).kind;
        assert_eq!(intensity_bucket(&delay(1)), 1);
        assert_eq!(intensity_bucket(&delay(60)), 6);
        assert_eq!(
            intensity_bucket(&delay(120)),
            intensity_bucket(&delay(60)) + 1,
            "doubling the delay moves up exactly one bucket"
        );
        assert_eq!(intensity_bucket(&delay(1 << 20)), 10, "clamped");
        let abort = |p| ScenarioKind::Abort {
            src: "a".into(),
            dst: "b".into(),
            error: Some(503),
            probability: p,
        };
        assert_eq!(intensity_bucket(&abort(0.1)), 1);
        assert_eq!(intensity_bucket(&abort(0.5)), 2);
        assert_eq!(intensity_bucket(&abort(1.0)), 4);
        assert_eq!(intensity_bucket(&Scenario::disconnect("a", "b").kind), 1);
    }

    #[test]
    fn cells_cover_edge_service_and_partition_scopes() {
        let edge = cells_for_scenario(&Scenario::delay("web", "db", Duration::from_millis(60)));
        assert_eq!(edge.len(), 1);
        assert_eq!(edge[0].src, "web");
        assert_eq!(edge[0].dst, "db");
        assert_eq!(edge[0].fault, FaultKind::Delay);

        let service = cells_for_scenario(&Scenario::crash("db"));
        assert_eq!(service.len(), 1);
        assert_eq!(service[0].src, SERVICE_WILDCARD);
        assert_eq!(service[0].dst, "db");
        assert_eq!(service[0].fault, FaultKind::Crash);

        let cut = cells_for_scenario(&Scenario::partition(
            vec!["a".to_string()],
            vec!["b".to_string(), "c".to_string()],
        ));
        assert_eq!(cut.len(), 4, "{cut:?}");
        assert!(cut.iter().all(|c| c.fault == FaultKind::Partition));
    }

    #[test]
    fn outcome_derivation_orders_by_severity() {
        let mut s = summary("r", true, Vec::new());
        assert_eq!(RunOutcome::of_summary(&s), RunOutcome::Pass);
        s.anomalies.push(crate::anomaly::AnomalyScore {
            src: "a".into(),
            dst: "b".into(),
            state: crate::anomaly::EdgeState::Anomalous,
            score: 9.0,
            rate_z: 0.0,
            error_z: 0.0,
            latency_z: 9.0,
            peak_score: 9.0,
            windows: 5,
            first_suspect_at_us: Some(1),
            anomalous_at_us: Some(2),
            baseline: None,
        });
        assert_eq!(RunOutcome::of_summary(&s), RunOutcome::Anomalous);
        s.passed = false;
        assert_eq!(RunOutcome::of_summary(&s), RunOutcome::AssertionFailed);
        s.monitor.push(violated_check());
        assert_eq!(RunOutcome::of_summary(&s), RunOutcome::Violated);
        assert!(RunOutcome::Violated > RunOutcome::Pass, "Ord = severity");
    }

    #[test]
    fn scan_indexes_runs_streaks_and_incomplete_dirs() {
        let root = tmp_root("scan");
        let hang = vec![Scenario::delay("web", "db", Duration::from_secs(2))];
        let mut violated = summary("hang db", false, hang.clone());
        violated.monitor.push(violated_check());
        record_run(&root, "hang db", 100, &violated, &[]);
        for at in [200, 300, 400] {
            record_run(
                &root,
                "hang cache",
                at,
                &summary(
                    "hang cache",
                    true,
                    vec![Scenario::delay("web", "cache", Duration::from_secs(2))],
                ),
                &[],
            );
        }
        // A crashed run: meta.json only.
        let husk = root.join("crashy-999");
        fs::create_dir_all(&husk).unwrap();
        fs::write(
            husk.join("meta.json"),
            serde_json::to_string(&crate::flight::FlightMeta {
                schema_version: FLIGHT_SCHEMA_VERSION,
                recipe: "crashy".to_string(),
                started_at_us: 999,
                window_us: 1_000_000,
            })
            .unwrap(),
        )
        .unwrap();

        let ledger = CoverageLedger::scan(&root).unwrap();
        assert_eq!(ledger.runs_scanned(), 5);
        assert_eq!(ledger.incomplete_runs(), ["crashy-999".to_string()]);
        assert_eq!(ledger.covered_cells(), 2);

        let streak_cell = ledger
            .cell(&CellKey {
                src: "web".into(),
                dst: "cache".into(),
                fault: FaultKind::Delay,
                intensity: intensity_bucket(
                    &Scenario::delay("web", "cache", Duration::from_secs(2)).kind,
                ),
            })
            .unwrap();
        assert_eq!(streak_cell.attempts, 3);
        assert_eq!(streak_cell.pass_streak, 3);
        assert_eq!(streak_cell.flakiness, 0.0);
        assert_eq!(streak_cell.worst_outcome, RunOutcome::Pass);

        let plan = ledger.steering_plan();
        let hang_db = Scenario::delay("web", "db", Duration::from_secs(2));
        assert!(matches!(
            plan.verdict_for(&hang_db, 3),
            Steering::Skip { .. }
        ));
        let hang_cache = Scenario::delay("web", "cache", Duration::from_secs(2));
        assert_eq!(
            plan.verdict_for(&hang_cache, 3),
            Steering::Escalate { streak: 3 }
        );
        assert_eq!(plan.verdict_for(&hang_cache, 4), Steering::Fresh);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn drift_between_runs_is_a_regression_even_when_passing() {
        let root = tmp_root("drift");
        let run = |at, p50_ms| {
            record_run(
                &root,
                "steady",
                at,
                &summary(
                    "steady",
                    true,
                    vec![Scenario::delay("user", "web", Duration::from_millis(10))],
                ),
                &[baseline("user", "web", p50_ms)],
            );
        };
        run(100, 5);
        run(200, 120); // 24x latency blowup, still "passing"
        let ledger = CoverageLedger::scan(&root).unwrap();
        assert_eq!(ledger.regressions().len(), 1, "{:?}", ledger.regressions());
        let regression = &ledger.regressions()[0];
        assert_eq!(regression.kind, RegressionKind::Drift);
        assert_eq!(
            (regression.src.as_str(), regression.dst.as_str()),
            ("user", "web")
        );
        assert!(regression.z.unwrap() >= DEFAULT_DRIFT_Z);
        assert!(
            regression.detail.contains("p50 5000us -> 120000us"),
            "{}",
            regression.detail
        );
        // And the rendered scorecard surfaces it.
        let text = ledger.render(None, false);
        assert!(text.contains("DRIFT"), "{text}");
        assert!(text.contains("1 regression(s)"), "{text}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn outcome_flip_is_a_regression() {
        let root = tmp_root("flip");
        let scenario = vec![Scenario::disconnect("web", "db")];
        record_run(
            &root,
            "disc",
            100,
            &summary("disc", true, scenario.clone()),
            &[],
        );
        record_run(&root, "disc", 200, &summary("disc", false, scenario), &[]);
        let ledger = CoverageLedger::scan(&root).unwrap();
        assert_eq!(ledger.regressions().len(), 1);
        assert_eq!(ledger.regressions()[0].kind, RegressionKind::Outcome);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn campaign_entries_fill_dirless_runs_and_dedupe_dirs() {
        let root = tmp_root("entries");
        let scenario = vec![Scenario::crash("db")];
        let dir = record_run(
            &root,
            "crash db",
            100,
            &summary("crash db", true, scenario.clone()),
            &[],
        );
        append_campaign_entries(
            &root,
            &[
                // Duplicates the recorded dir: must be skipped.
                LedgerEntry {
                    recipe: "crash db".to_string(),
                    started_at_us: 100,
                    outcome: RunOutcome::Pass,
                    scenarios: scenario,
                    flight_dir: Some(dir),
                },
                // Dirless (unmonitored) run: must be indexed.
                LedgerEntry {
                    recipe: "abort cache".to_string(),
                    started_at_us: 150,
                    outcome: RunOutcome::AssertionFailed,
                    scenarios: vec![Scenario::abort("web", "cache", 503)],
                    flight_dir: None,
                },
            ],
        )
        .unwrap();
        let ledger = CoverageLedger::scan(&root).unwrap();
        assert_eq!(ledger.runs_scanned(), 2, "{:?}", ledger.runs());
        assert_eq!(ledger.covered_cells(), 2);
        let abort_cell = ledger
            .cells()
            .find(|c| c.key.fault == FaultKind::Abort)
            .unwrap();
        assert_eq!(abort_cell.last_outcome, RunOutcome::AssertionFailed);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn renders_are_deterministic_and_scoped_by_graph() {
        let root = tmp_root("render");
        record_run(
            &root,
            "hang cache",
            100,
            &summary(
                "hang cache",
                true,
                vec![Scenario::delay("web", "cache", Duration::from_secs(2))],
            ),
            &[],
        );
        let graph = AppGraph::from_edges(vec![("web", "db"), ("web", "cache")]);
        let ledger = CoverageLedger::scan(&root).unwrap();
        let once = ledger.render(Some(&graph), false);
        let twice = CoverageLedger::scan(&root)
            .unwrap()
            .render(Some(&graph), false);
        assert_eq!(once, twice, "render is deterministic");
        assert!(once.contains("✓1"), "{once}");
        assert!(once.contains("untested cells:"), "{once}");
        assert!(
            once.contains("web -> db: abort, delay, disconnect"),
            "{once}"
        );
        assert!(once.contains("* -> db"), "{once}");

        let md = ledger.to_markdown(Some(&graph));
        assert!(md.contains("# Resilience coverage scorecard"), "{md}");
        assert!(md.contains("| `web -> cache` |"), "{md}");
        assert!(md.contains("pass ×1"), "{md}");

        let json = serde_json::to_string(&ledger.summary()).unwrap();
        assert!(json.contains("\"runs_scanned\":1"), "{json}");
        assert!(json.contains("\"incomplete_runs\":[]"), "{json}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_root_scans_to_an_empty_ledger() {
        let root = tmp_root("missing");
        let ledger = CoverageLedger::scan(&root).unwrap();
        assert_eq!(ledger.runs_scanned(), 0);
        assert_eq!(ledger.covered_cells(), 0);
        assert!(ledger.render(None, false).contains("no runs recorded"));
    }

    #[test]
    fn scan_with_telemetry_bumps_the_counters() {
        let root = tmp_root("telemetry");
        record_run(
            &root,
            "one",
            100,
            &summary("one", true, vec![Scenario::disconnect("a", "b")]),
            &[],
        );
        let registry = MetricsRegistry::new();
        let _ = CoverageLedger::scan_with_telemetry(&root, &registry).unwrap();
        assert_eq!(
            registry.counter_value("gremlin_ledger_runs_scanned_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("gremlin_ledger_regressions_total", &[]),
            Some(0)
        );
        let _ = fs::remove_dir_all(&root);
    }
}

//! Error type for the Gremlin control plane.

use std::error::Error as StdError;
use std::fmt;

use gremlin_proxy::ProxyError;

/// Errors produced by the control plane (translator, orchestrator,
/// checker).
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A scenario referenced a service missing from the application
    /// graph.
    UnknownService(String),
    /// A scenario could not be translated into rules (e.g. a crash of
    /// a service nothing depends on).
    EmptyTranslation(String),
    /// Installing rules on an agent failed. Carries the agent's
    /// service name.
    AgentFailed {
        /// Service whose agent failed.
        service: String,
        /// The underlying failure.
        source: ProxyError,
    },
    /// A duration string could not be parsed (e.g. `"1min"`).
    BadDuration(String),
    /// No agent matches the rule's source service.
    NoAgentForService(String),
    /// Distributed campaign dispatch failed: an operator became
    /// unreachable (and no survivor could absorb its waves), returned
    /// a malformed response, or spoke an incompatible protocol
    /// version.
    DispatchFailed(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownService(name) => {
                write!(f, "service {name:?} is not in the application graph")
            }
            CoreError::EmptyTranslation(msg) => {
                write!(f, "scenario translated to no rules: {msg}")
            }
            CoreError::AgentFailed { service, source } => {
                write!(f, "agent for {service:?} failed: {source}")
            }
            CoreError::BadDuration(text) => write!(f, "cannot parse duration {text:?}"),
            CoreError::NoAgentForService(name) => {
                write!(f, "no gremlin agent fronts service {name:?}")
            }
            CoreError::DispatchFailed(msg) => {
                write!(f, "distributed dispatch failed: {msg}")
            }
        }
    }
}

impl StdError for CoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CoreError::AgentFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            CoreError::UnknownService("x".into()),
            CoreError::EmptyTranslation("y".into()),
            CoreError::AgentFailed {
                service: "s".into(),
                source: ProxyError::InvalidRule("r".into()),
            },
            CoreError::BadDuration("1parsec".into()),
            CoreError::NoAgentForService("s".into()),
            CoreError::DispatchFailed("operator op-1 unreachable".into()),
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains() {
        let err = CoreError::AgentFailed {
            service: "s".into(),
            source: ProxyError::InvalidRule("r".into()),
        };
        assert!(err.source().is_some());
        assert!(CoreError::BadDuration("x".into()).source().is_none());
    }
}

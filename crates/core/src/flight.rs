//! The flight recorder: persisted postmortem timelines for recipe
//! runs.
//!
//! A live run's monitor state is ephemeral — once the recipe process
//! exits, the verdict timeline, anomaly transitions and edge health
//! matrix are gone. The [`FlightRecorder`] persists them as they
//! happen into a per-run artifact directory:
//!
//! ```text
//! <root>/<recipe-slug>-<started_at_us>/
//!   meta.json        run identity: schema version, recipe, window
//!   alerts.jsonl     every MonitorRecord (verdicts + anomalies)
//!   snapshots.jsonl  periodic edge-health + anomaly-score matrices
//!   baselines.json   learned per-edge baselines, for seeding reruns
//!   timeseries.jsonl metric history + phase annotations (timeline runs)
//!   report.json      final summary, written by RecipeRun::finish
//! ```
//!
//! Because the monitor evaluates **event-time** windows, the recorded
//! log is sufficient to re-derive the run: `gremlin replay <dir>`
//! loads the directory with [`FlightLog::load`] and re-renders the
//! same verdict/anomaly timeline the live run produced, offline.
//!
//! All files are JSON or newline-delimited JSON so shell tooling
//! (`jq`, `grep`) works on them directly.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gremlin_store::{EdgeBaseline, EdgeHealth, Micros};
use gremlin_telemetry::{SeriesKind, TimeSeriesStore};

use crate::anomaly::AnomalyScore;
use crate::checker::Check;
use crate::monitor::{LiveCheck, LiveMonitor, MonitorRecord};
use crate::scenarios::Scenario;

/// Schema version stamped into `meta.json` (bump on breaking changes
/// to any artifact file).
pub const FLIGHT_SCHEMA_VERSION: u32 = 1;

/// Run identity, written once as `meta.json` when the recorder is
/// created.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightMeta {
    /// Artifact layout version ([`FLIGHT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Recipe name as passed to `RecipeRun::new`.
    pub recipe: String,
    /// Wall-clock micros when recording started (also the directory
    /// suffix, making per-run directories unique).
    pub started_at_us: Micros,
    /// The monitor's event-time window length in micros.
    pub window_us: Micros,
}

/// One periodic dump of the monitor's matrices, a line in
/// `snapshots.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixSnapshot {
    /// Event-time clock when the snapshot was taken.
    pub at_us: Micros,
    /// Per-edge health (requests, errors, latency percentiles).
    pub edges: Vec<EdgeHealth>,
    /// Per-edge anomaly scores (empty without an anomaly config).
    pub scores: Vec<AnomalyScore>,
}

/// The final run summary, written as `report.json` by
/// `RecipeRun::finish`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightSummary {
    /// Recipe name.
    pub name: String,
    /// Overall outcome.
    pub passed: bool,
    /// Scenarios staged, in order.
    pub injected: Vec<String>,
    /// Post-hoc check results.
    pub checks: Vec<Check>,
    /// Final streaming-assertion verdicts.
    pub monitor: Vec<LiveCheck>,
    /// Edges that left `Nominal` during the run, worst first.
    pub anomalies: Vec<AnomalyScore>,
    /// Structured scenarios staged during the run, in injection
    /// order. Older recordings (pre coverage-ledger) lack the field
    /// and deserialize to an empty vector.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub scenarios: Vec<Scenario>,
}

/// One line of `timeseries.jsonl`: either a sampled metric point or a
/// control-plane phase annotation, tagged by `kind`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TimeSeriesLine {
    /// One sampled metric point.
    Point {
        /// Source target (`local`, or a scrape-target name).
        target: String,
        /// Metric name as exposed.
        name: String,
        /// Sorted label pairs.
        labels: Vec<(String, String)>,
        /// Sample timestamp in microseconds.
        at_us: u64,
        /// Sampled value.
        value: f64,
    },
    /// One phase annotation (warmup, install, wave, abort, clear).
    Annotation {
        /// When the phase event happened.
        at_us: u64,
        /// Short phase keyword.
        phase: String,
        /// Free-form detail.
        detail: String,
    },
}

fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    let trimmed = out.trim_matches('-');
    if trimmed.is_empty() {
        "recipe".to_string()
    } else {
        trimmed.to_string()
    }
}

/// Streams a run's monitor records and periodic matrix snapshots into
/// a per-run artifact directory (see the module docs for the layout).
///
/// Attached to a run via `RecipeRun::start_flight_recorder`; drained
/// opportunistically on every monitor poll. Snapshots are throttled
/// to at most one per monitor window so a tight poll loop doesn't
/// bloat `snapshots.jsonl`.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    alerts: fs::File,
    snapshots: fs::File,
    window_us: Micros,
    last_snapshot_us: Option<Micros>,
}

impl FlightRecorder {
    /// Creates `<root>/<slug(recipe)>-<started_at_us>/`, writes
    /// `meta.json`, and opens the append-only log files.
    ///
    /// # Errors
    ///
    /// Directory creation or file I/O failures.
    pub fn create(
        root: impl AsRef<Path>,
        recipe: &str,
        started_at_us: Micros,
        window_us: Micros,
    ) -> io::Result<FlightRecorder> {
        let dir = root
            .as_ref()
            .join(format!("{}-{started_at_us}", slug(recipe)));
        fs::create_dir_all(&dir)?;
        let meta = FlightMeta {
            schema_version: FLIGHT_SCHEMA_VERSION,
            recipe: recipe.to_string(),
            started_at_us,
            window_us,
        };
        fs::write(dir.join("meta.json"), serde_json::to_string_pretty(&meta)?)?;
        let alerts = fs::File::create(dir.join("alerts.jsonl"))?;
        let snapshots = fs::File::create(dir.join("snapshots.jsonl"))?;
        Ok(FlightRecorder {
            dir,
            alerts,
            snapshots,
            window_us: window_us.max(1),
            last_snapshot_us: None,
        })
    }

    /// The artifact directory this recorder writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends monitor records (verdict and anomaly transitions) to
    /// `alerts.jsonl`, one JSON object per line.
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failures.
    pub fn append_records(&mut self, records: &[MonitorRecord]) -> io::Result<()> {
        for record in records {
            let line = serde_json::to_string(record)?;
            writeln!(self.alerts, "{line}")?;
        }
        Ok(())
    }

    /// Dumps the monitor's edge-health matrix and anomaly scores to
    /// `snapshots.jsonl`, throttled to one snapshot per event-time
    /// window (extra calls within the same window are no-ops).
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failures.
    pub fn record_snapshot(&mut self, monitor: &LiveMonitor) -> io::Result<()> {
        let at_us = monitor.health().clock_us();
        if let Some(last) = self.last_snapshot_us {
            if at_us < last.saturating_add(self.window_us) {
                return Ok(());
            }
        }
        self.record_snapshot_now(monitor)
    }

    /// Like [`FlightRecorder::record_snapshot`] but bypasses the
    /// per-window throttle — used for the final matrix dump when a
    /// run finishes, so the replay's closing state is never stale.
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failures.
    pub fn record_snapshot_now(&mut self, monitor: &LiveMonitor) -> io::Result<()> {
        let at_us = monitor.health().clock_us();
        self.last_snapshot_us = Some(at_us);
        let snapshot = MatrixSnapshot {
            at_us,
            edges: monitor.edge_health(),
            scores: monitor.anomaly_scores(),
        };
        let line = serde_json::to_string(&snapshot)?;
        writeln!(self.snapshots, "{line}")?;
        Ok(())
    }

    /// Writes the run's learned per-edge baselines as
    /// `baselines.json` — the snapshot a later run seeds its anomaly
    /// scorer from to skip the warmup (see
    /// [`load_baselines`]). Writing an empty slice is a no-op so a
    /// run that learned nothing never clobbers an earlier snapshot.
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failures.
    pub fn record_baselines(&mut self, baselines: &[EdgeBaseline]) -> io::Result<()> {
        if baselines.is_empty() {
            return Ok(());
        }
        fs::write(
            self.dir.join("baselines.json"),
            serde_json::to_string_pretty(baselines)?,
        )
    }

    /// Dumps a timeline's full retained history — every series plus
    /// every annotation, in time order per series — as
    /// `timeseries.jsonl`, replacing any previous dump. Called once
    /// when a run finishes so `gremlin replay` can re-render the
    /// metric history offline.
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failures.
    pub fn record_timeseries(&mut self, timeline: &TimeSeriesStore) -> io::Result<()> {
        let mut out = String::new();
        for annotation in timeline.annotations(0, u64::MAX) {
            let line = TimeSeriesLine::Annotation {
                at_us: annotation.at_us,
                phase: annotation.phase,
                detail: annotation.detail,
            };
            out.push_str(&serde_json::to_string(&line)?);
            out.push('\n');
        }
        for (id, points) in timeline.dump() {
            for point in points {
                let line = TimeSeriesLine::Point {
                    target: id.target.clone(),
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    at_us: point.at_us,
                    value: point.value,
                };
                out.push_str(&serde_json::to_string(&line)?);
                out.push('\n');
            }
        }
        fs::write(self.dir.join("timeseries.jsonl"), out)
    }

    /// Writes the final `report.json` and flushes the log files.
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failures.
    pub fn finish(mut self, summary: &FlightSummary) -> io::Result<PathBuf> {
        fs::write(
            self.dir.join("report.json"),
            serde_json::to_string_pretty(summary)?,
        )?;
        self.alerts.flush()?;
        self.snapshots.flush()?;
        Ok(self.dir)
    }
}

/// A flight-recorder directory loaded back into memory — the input to
/// `gremlin replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightLog {
    /// Run identity from `meta.json`.
    pub meta: FlightMeta,
    /// Every recorded monitor record, in log order.
    pub records: Vec<MonitorRecord>,
    /// Periodic matrix snapshots, in time order.
    pub snapshots: Vec<MatrixSnapshot>,
    /// Learned per-edge baselines from `baselines.json` (empty for
    /// runs without anomaly scoring, or recorded before the file
    /// existed).
    pub baselines: Vec<EdgeBaseline>,
    /// Metric history and phase annotations from `timeseries.jsonl`
    /// (empty for runs without an attached timeline, or recorded
    /// before the file existed).
    pub timeseries: Vec<TimeSeriesLine>,
    /// The final summary, when the run completed (`None` for a run
    /// that crashed before `finish`).
    pub report: Option<FlightSummary>,
}

impl FlightLog {
    /// Loads a flight-recorder directory.
    ///
    /// Requires `meta.json`; everything else is loaded leniently so a
    /// run that crashed mid-write still replays: a missing or
    /// truncated `report.json` yields `report: None`, malformed
    /// `.jsonl` lines are skipped, and an unparseable `baselines.json`
    /// yields an empty baseline set.
    ///
    /// # Errors
    ///
    /// Missing/unreadable `meta.json` or unreadable log files.
    pub fn load(dir: impl AsRef<Path>) -> io::Result<FlightLog> {
        let dir = dir.as_ref();
        let meta: FlightMeta = serde_json::from_str(&fs::read_to_string(dir.join("meta.json"))?)?;
        let records = read_jsonl(&dir.join("alerts.jsonl"))?;
        let snapshots = read_jsonl(&dir.join("snapshots.jsonl"))?;
        let baselines = load_baselines(dir).unwrap_or_default();
        let timeseries = read_jsonl(&dir.join("timeseries.jsonl"))?;
        let report = match fs::read_to_string(dir.join("report.json")) {
            Ok(text) => serde_json::from_str(&text).ok(),
            Err(err) if err.kind() == io::ErrorKind::NotFound => None,
            Err(err) => return Err(err),
        };
        Ok(FlightLog {
            meta,
            records,
            snapshots,
            baselines,
            timeseries,
            report,
        })
    }

    /// Rebuilds an in-memory [`TimeSeriesStore`] from the recorded
    /// `timeseries.jsonl`, so replay can run the same range and rate
    /// queries the live collector served. Empty when the run had no
    /// timeline.
    pub fn timeseries_store(&self) -> TimeSeriesStore {
        let store = TimeSeriesStore::new();
        for line in &self.timeseries {
            match line {
                TimeSeriesLine::Point {
                    target,
                    name,
                    labels,
                    at_us,
                    value,
                } => {
                    store.append(target, name, labels, *at_us, *value);
                }
                TimeSeriesLine::Annotation {
                    at_us,
                    phase,
                    detail,
                } => store.annotate(*at_us, phase, detail),
            }
        }
        store
    }

    /// Renders the recorded metric history as human-readable text:
    /// phase annotations in time order, then one line per series with
    /// its point count and value range (counters shown as their total
    /// increase). Empty string when the run recorded no timeline —
    /// callers can append it to [`FlightLog::render_timeline`]
    /// unconditionally.
    pub fn render_metrics(&self) -> String {
        let store = self.timeseries_store();
        let series = store.dump();
        let annotations = store.annotations(0, u64::MAX);
        if series.is_empty() && annotations.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "metric history: {} series, {} annotation(s)\n",
            series.len(),
            annotations.len(),
        );
        for annotation in &annotations {
            out.push_str(&format!(
                "  @{}us {}: {}\n",
                annotation.at_us, annotation.phase, annotation.detail
            ));
        }
        for (id, points) in &series {
            // Bucket series are an internal decomposition; the
            // summary stays readable without them.
            if id.name.ends_with("_bucket") {
                continue;
            }
            let labels = if id.labels.is_empty() {
                String::new()
            } else {
                let pairs: Vec<String> =
                    id.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{{{}}}", pairs.join(","))
            };
            let detail = match (SeriesKind::infer(&id.name), points.first(), points.last()) {
                (SeriesKind::Counter, Some(first), Some(last)) => {
                    format!("+{:.0} over the run", last.value - first.value)
                }
                (SeriesKind::Gauge, _, Some(last)) => format!("last {:.3}", last.value),
                _ => "no points".to_string(),
            };
            out.push_str(&format!(
                "  {} {}{}: {} point(s), {}\n",
                id.target,
                id.name,
                labels,
                points.len(),
                detail,
            ));
        }
        out
    }

    /// Renders the run's timeline as human-readable text: the header,
    /// every record in log order, per-edge anomaly peaks, and the
    /// final outcome. `gremlin replay <dir>` prints exactly this.
    pub fn render_timeline(&self) -> String {
        let mut out = format!(
            "flight recording of recipe {:?} (window {}us, {} record(s), {} snapshot(s))\n",
            self.meta.recipe,
            self.meta.window_us,
            self.records.len(),
            self.snapshots.len(),
        );
        for record in &self.records {
            let tag = match record {
                MonitorRecord::Verdict(_) => "verdict",
                MonitorRecord::Anomaly(_) => "anomaly",
            };
            out.push_str(&format!("  {tag:>7}  {record}\n"));
        }
        if let Some(last) = self.snapshots.last() {
            let flagged: Vec<&AnomalyScore> = last
                .scores
                .iter()
                .filter(|s| s.first_suspect_at_us.is_some())
                .collect();
            if !flagged.is_empty() {
                out.push_str("anomalous edges:\n");
                for score in flagged {
                    out.push_str(&format!(
                        "  {} -> {}: {} (peak score {:.1}, first suspect at {}us)\n",
                        score.src,
                        score.dst,
                        score.state,
                        score.peak_score,
                        score.first_suspect_at_us.unwrap_or(0),
                    ));
                }
            }
        }
        match &self.report {
            Some(report) => {
                out.push_str(&format!(
                    "outcome: {}\n",
                    if report.passed { "PASSED" } else { "FAILED" }
                ));
            }
            None => out.push_str("outcome: (run never finished — no report.json)\n"),
        }
        out
    }
}

/// Loads `baselines.json` from a flight-recorder directory — the
/// input to `MonitorSpec::seed` / `AnomalyScorer::seed` for
/// warmup-free reruns. A directory without the file (a run that
/// never learned baselines, or a pre-baseline recording) yields an
/// empty vector, not an error.
///
/// # Errors
///
/// An unreadable or malformed `baselines.json`.
pub fn load_baselines(dir: impl AsRef<Path>) -> io::Result<Vec<EdgeBaseline>> {
    match fs::read_to_string(dir.as_ref().join("baselines.json")) {
        Ok(text) => Ok(serde_json::from_str(&text)?),
        Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(err) => Err(err),
    }
}

fn read_jsonl<T: serde::de::DeserializeOwned>(path: &Path) -> io::Result<Vec<T>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(err),
    };
    Ok(text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| serde_json::from_str(line).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::EdgeState;
    use crate::monitor::{AlertEvent, Verdict};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gremlin-flight-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn verdict_record(seq: u64, at_us: Micros, to: Verdict) -> MonitorRecord {
        MonitorRecord::Verdict(AlertEvent {
            seq,
            at_us,
            check: "LiveLatencySlo(b, p99 <= 10ms)".to_string(),
            from: Verdict::Pending,
            to,
            detail: "window p99 = 90ms".to_string(),
        })
    }

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(slug("Checkout Flow (v2)"), "checkout-flow-v2");
        assert_eq!(slug("___"), "recipe");
        assert_eq!(slug("simple"), "simple");
    }

    #[test]
    fn record_load_and_render_round_trip() {
        let root = tmp_root("roundtrip");
        let mut recorder = FlightRecorder::create(&root, "My Recipe", 42, 1_000_000).unwrap();
        assert!(recorder.dir().starts_with(&root));
        assert!(recorder.dir().ends_with("my-recipe-42"));

        recorder
            .append_records(&[verdict_record(0, 2_000_000, Verdict::Failing)])
            .unwrap();
        let summary = FlightSummary {
            name: "My Recipe".to_string(),
            passed: false,
            injected: vec!["Delay(user -> web, 60ms)".to_string()],
            checks: Vec::new(),
            monitor: Vec::new(),
            anomalies: Vec::new(),
            scenarios: vec![Scenario::delay(
                "user",
                "web",
                std::time::Duration::from_millis(60),
            )],
        };
        let dir = recorder.finish(&summary).unwrap();

        let log = FlightLog::load(&dir).unwrap();
        assert_eq!(log.meta.schema_version, FLIGHT_SCHEMA_VERSION);
        assert_eq!(log.meta.recipe, "My Recipe");
        assert_eq!(log.meta.window_us, 1_000_000);
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.report.as_ref().map(|r| r.passed), Some(false));

        let timeline = log.render_timeline();
        assert!(timeline.contains("recipe \"My Recipe\""), "{timeline}");
        assert!(timeline.contains("verdict"), "{timeline}");
        assert!(timeline.contains("outcome: FAILED"), "{timeline}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshots_are_throttled_to_one_per_window() {
        use crate::monitor::MonitorSpec;
        use gremlin_store::EventStore;
        use std::sync::Arc;
        use std::time::Duration;

        let root = tmp_root("throttle");
        let mut recorder = FlightRecorder::create(&root, "throttle", 7, 1_000_000).unwrap();
        let store = EventStore::shared();
        let monitor =
            LiveMonitor::new(Arc::clone(&store), MonitorSpec::new(Duration::from_secs(1)));

        store
            .record_event(gremlin_store::Event::request("a", "b", "GET", "/x").with_timestamp(100));
        monitor.poll();
        recorder.record_snapshot(&monitor).unwrap();
        // Same window: a no-op.
        recorder.record_snapshot(&monitor).unwrap();
        // A full window later: recorded.
        store.record_event(
            gremlin_store::Event::request("a", "b", "GET", "/x").with_timestamp(1_500_000),
        );
        monitor.poll();
        recorder.record_snapshot(&monitor).unwrap();

        let summary = FlightSummary {
            name: "throttle".to_string(),
            passed: true,
            injected: Vec::new(),
            checks: Vec::new(),
            monitor: Vec::new(),
            anomalies: Vec::new(),
            scenarios: Vec::new(),
        };
        let dir = recorder.finish(&summary).unwrap();
        let log = FlightLog::load(&dir).unwrap();
        assert_eq!(log.snapshots.len(), 2, "{:?}", log.snapshots);
        assert_eq!(log.snapshots[0].edges.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn timeseries_round_trip_and_offline_rendering() {
        let timeline = TimeSeriesStore::new();
        for (at, v) in [(1_000_000u64, 0.0), (2_000_000, 40.0), (3_000_000, 45.0)] {
            timeline.append("local", "demo_requests_total", &[], at, v);
        }
        timeline.append(
            "web",
            "gremlin_proxy_open_connections",
            &[("service".to_string(), "web".to_string())],
            2_500_000,
            3.0,
        );
        timeline.annotate(1_500_000, "install", "Abort(a -> b, 503)");
        timeline.annotate(2_800_000, "clear", "all faults removed");

        let root = tmp_root("timeseries");
        let mut recorder = FlightRecorder::create(&root, "ts", 5, 1_000_000).unwrap();
        recorder.record_timeseries(&timeline).unwrap();
        let summary = FlightSummary {
            name: "ts".to_string(),
            passed: true,
            injected: Vec::new(),
            checks: Vec::new(),
            monitor: Vec::new(),
            anomalies: Vec::new(),
            scenarios: Vec::new(),
        };
        let dir = recorder.finish(&summary).unwrap();

        let log = FlightLog::load(&dir).unwrap();
        assert_eq!(log.timeseries.len(), 6, "{:?}", log.timeseries);

        // The rebuilt store answers the same queries the live one did.
        let store = log.timeseries_store();
        assert_eq!(store.series_count(), 2);
        let rates = store.query_rate("demo_requests_total", Some("local"), 0, u64::MAX);
        assert_eq!(rates[0].1.len(), 2);
        assert_eq!(rates[0].1[0].value, 40.0);
        assert_eq!(store.annotations(0, u64::MAX).len(), 2);

        let rendered = log.render_metrics();
        assert!(rendered.contains("metric history: 2 series"), "{rendered}");
        assert!(rendered.contains("@1500000us install"), "{rendered}");
        assert!(
            rendered.contains("local demo_requests_total: 3 point(s), +45 over the run"),
            "{rendered}"
        );
        assert!(
            rendered.contains("web gremlin_proxy_open_connections{service=web}"),
            "{rendered}"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn logs_without_timeseries_render_no_metric_history() {
        let root = tmp_root("no-ts");
        let recorder = FlightRecorder::create(&root, "plain", 3, 1_000_000).unwrap();
        let dir = recorder.dir().to_path_buf();
        drop(recorder);
        let log = FlightLog::load(&dir).unwrap();
        assert!(log.timeseries.is_empty());
        assert_eq!(log.render_metrics(), "");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn baselines_round_trip_through_the_artifact_dir() {
        let baseline = EdgeBaseline {
            src: "a".to_string(),
            dst: "b".to_string(),
            windows: 5,
            rate_ewma: 10.0,
            rate_mad: 0.5,
            error_rate: 0.01,
            error_upper: 0.05,
            responses: 50,
            p50_us: 5_000,
            p99_us: 9_000,
            latency_mad_us: 300.0,
        };
        let root = tmp_root("baselines");
        let mut recorder = FlightRecorder::create(&root, "seedable", 9, 1_000_000).unwrap();
        let dir = recorder.dir().to_path_buf();
        // An empty write is a no-op: no file, load yields empty.
        recorder.record_baselines(&[]).unwrap();
        assert!(load_baselines(&dir).unwrap().is_empty());
        recorder.record_baselines(&[baseline.clone()]).unwrap();
        assert_eq!(load_baselines(&dir).unwrap(), vec![baseline.clone()]);
        // FlightLog::load picks them up too.
        drop(recorder);
        let log = FlightLog::load(&dir).unwrap();
        assert_eq!(log.baselines, vec![baseline]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn partial_run_dirs_load_leniently() {
        // A hand-built crashed run: meta.json only, a truncated
        // alerts.jsonl (killed mid-write) and a garbage report.json.
        let root = tmp_root("partial");
        let dir = root.join("partial-77");
        fs::create_dir_all(&dir).unwrap();
        let meta = FlightMeta {
            schema_version: FLIGHT_SCHEMA_VERSION,
            recipe: "partial".to_string(),
            started_at_us: 77,
            window_us: 1_000_000,
        };
        fs::write(
            dir.join("meta.json"),
            serde_json::to_string_pretty(&meta).unwrap(),
        )
        .unwrap();
        let good = serde_json::to_string(&verdict_record(0, 1_000_000, Verdict::Failing)).unwrap();
        fs::write(
            dir.join("alerts.jsonl"),
            format!("{good}\n{{\"kind\":\"ver"),
        )
        .unwrap();
        fs::write(dir.join("report.json"), "{\"name\": \"partial\", \"pas").unwrap();
        fs::write(dir.join("baselines.json"), "[{\"src\":").unwrap();

        let log = FlightLog::load(&dir).unwrap();
        assert_eq!(log.meta.recipe, "partial");
        assert_eq!(log.records.len(), 1, "truncated tail line is skipped");
        assert!(log.report.is_none(), "garbage report.json loads as None");
        assert!(log.baselines.is_empty(), "garbage baselines load as empty");
        assert!(log.render_timeline().contains("run never finished"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unfinished_runs_load_without_a_report() {
        let root = tmp_root("unfinished");
        let recorder = FlightRecorder::create(&root, "crashy", 1, 500_000).unwrap();
        let dir = recorder.dir().to_path_buf();
        drop(recorder); // no finish(): no report.json
        let log = FlightLog::load(&dir).unwrap();
        assert!(log.report.is_none());
        assert!(log.render_timeline().contains("run never finished"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn timeline_lists_anomalous_edges_from_the_last_snapshot() {
        let log = FlightLog {
            meta: FlightMeta {
                schema_version: FLIGHT_SCHEMA_VERSION,
                recipe: "r".to_string(),
                started_at_us: 0,
                window_us: 1_000_000,
            },
            records: Vec::new(),
            baselines: Vec::new(),
            timeseries: Vec::new(),
            snapshots: vec![MatrixSnapshot {
                at_us: 5_000_000,
                edges: Vec::new(),
                scores: vec![AnomalyScore {
                    src: "user".to_string(),
                    dst: "web".to_string(),
                    state: EdgeState::Anomalous,
                    score: 12.0,
                    rate_z: 0.1,
                    error_z: 0.0,
                    latency_z: 12.0,
                    peak_score: 14.5,
                    windows: 6,
                    first_suspect_at_us: Some(3_000_000),
                    anomalous_at_us: Some(4_000_000),
                    baseline: None,
                }],
            }],
            report: None,
        };
        let timeline = log.render_timeline();
        assert!(timeline.contains("anomalous edges:"), "{timeline}");
        assert!(
            timeline
                .contains("user -> web: anomalous (peak score 14.5, first suspect at 3000000us)"),
            "{timeline}"
        );
    }
}

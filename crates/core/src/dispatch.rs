//! Distributed campaign execution: shard waves across operator hosts.
//!
//! A single [`CampaignRunner`](crate::campaign::CampaignRunner) is
//! bounded by one host's fan-out. This module distributes a campaign
//! across several **operator hosts**, each fronting its own slice of
//! the agent fleet for the same logical application graph:
//!
//! * [`OperatorServer`] — the worker half (`gremlin operator serve`):
//!   an httpwire control endpoint that accepts a wave of recipes,
//!   drives them over its local [`TestContext`] with the same
//!   [`execute_wave`] the single-host runner uses, and streams the
//!   full [`RecipeOutcome`]s back.
//! * [`CampaignDispatcher`] — the coordinator half
//!   (`gremlin campaign --operators ...`): plans **shards** with
//!   [`plan_shards`] (footprint-disjoint waves, widened to the whole
//!   fleet's capacity, split round-robin across operators), dispatches
//!   each wave's slices concurrently, retries transient failures with
//!   bounded exponential backoff, re-shards a dead operator's slices
//!   over the survivors, and merges the outcomes through the same
//!   aggregation path as the single-host runner — the merged
//!   [`CampaignReport`] is identical in shape and content.
//!
//! # Failure semantics
//!
//! Every wave POST carries an **idempotency token** stable across
//! retries. An operator caches the response of each completed token,
//! so a retry after a lost response replays the recorded outcomes
//! instead of re-running the wave — the coordinator observes
//! exactly-once wave results per operator. When an operator dies
//! mid-wave its recipes re-execute on a survivor (at-least-once
//! against the *mesh*, which is safe: rule install and clear are
//! idempotent and every attempt is preceded by a fault flush), but the
//! coordinator accepts exactly one outcome per recipe and appends each
//! wave's ledger entries exactly once, after the wave's verdicts are
//! final.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use gremlin_http::{
    ClientConfig, ConnInfo, HttpClient, HttpServer, Method, Request, Response, StatusCode,
};
use gremlin_store::{now_micros, EdgeBaseline};
use gremlin_telemetry::TimeSeriesStore;

use crate::campaign::{
    assemble_report, execute_wave, persist_merged_baselines, plan_waves, steer_priority,
    CampaignRecipe, CampaignReport, RecipeOutcome, DEFAULT_MAX_IN_FLIGHT,
};
use crate::error::CoreError;
use crate::graph::AppGraph;
use crate::ledger::{append_campaign_entries, CellKey, CoverageLedger, LedgerEntry};
use crate::recipe::TestContext;

/// Version of the coordinator–operator wire protocol. A coordinator
/// and an operator must agree exactly; both sides reject mismatches
/// up front rather than mis-merging reports later.
pub const DISPATCH_SCHEMA_VERSION: u32 = 1;

/// Completed-wave responses an operator keeps for idempotent retries.
const WAVE_CACHE_CAPACITY: usize = 256;

/// Default number of re-dispatch attempts after a failed slice
/// (beyond the initial attempt) before the operator is declared dead.
pub const DEFAULT_DISPATCH_RETRIES: usize = 2;

/// Default initial backoff before the first retry; doubles per
/// attempt, capped at [`MAX_DISPATCH_BACKOFF`].
pub const DEFAULT_DISPATCH_BACKOFF: Duration = Duration::from_millis(100);

/// Ceiling for the exponential retry backoff.
pub const MAX_DISPATCH_BACKOFF: Duration = Duration::from_secs(5);

/// One wave slice as POSTed to `POST /operator/wave`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveRequest {
    /// Protocol version ([`DISPATCH_SCHEMA_VERSION`]); the operator
    /// rejects anything else.
    pub schema_version: u32,
    /// Idempotency token, stable across retries of the same slice:
    /// an operator that already completed it replays the cached
    /// response instead of re-running the recipes.
    pub token: String,
    /// The footprint-disjoint recipes to run concurrently.
    pub recipes: Vec<CampaignRecipe>,
    /// Baselines seeding every monitored recipe's anomaly scorer
    /// (the coordinator's [`CampaignDispatcher::seed`] snapshot).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub seed_baselines: Vec<EdgeBaseline>,
}

/// An operator's answer to a wave: one outcome per posted recipe, in
/// request order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveResponse {
    /// The operator's name, for report attribution and logs.
    pub operator: String,
    /// Per-recipe outcomes, aligned with [`WaveRequest::recipes`].
    pub outcomes: Vec<RecipeOutcome>,
    /// `true` when this response was replayed from the idempotency
    /// cache instead of freshly executed.
    pub cached: bool,
}

/// Operator identity and counters returned by `GET /operator/status`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorStatus {
    /// Protocol version the operator speaks.
    pub schema_version: u32,
    /// Operator name.
    pub name: String,
    /// Agents in this operator's fleet slice.
    pub agents: usize,
    /// Waves executed since start.
    pub waves_executed: u64,
    /// Wave retries answered from the idempotency cache.
    pub waves_cached: u64,
}

/// Bounded FIFO cache of completed wave responses, keyed by token.
struct WaveCache {
    order: VecDeque<String>,
    map: HashMap<String, WaveResponse>,
}

impl WaveCache {
    fn new() -> WaveCache {
        WaveCache {
            order: VecDeque::new(),
            map: HashMap::new(),
        }
    }

    fn get(&self, token: &str) -> Option<&WaveResponse> {
        self.map.get(token)
    }

    fn insert(&mut self, token: String, response: WaveResponse) {
        if self.map.insert(token.clone(), response).is_none() {
            self.order.push_back(token);
            if self.order.len() > WAVE_CACHE_CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }
}

struct OperatorState {
    name: String,
    ctx: TestContext,
    flight_root: Option<PathBuf>,
    completed: Mutex<WaveCache>,
    /// Serializes wave execution: concurrent POSTs (a retry racing
    /// the original) run one at a time, and the loser then hits the
    /// idempotency cache.
    wave_lock: Mutex<()>,
    waves_executed: AtomicU64,
    waves_cached: AtomicU64,
}

impl OperatorState {
    fn status(&self) -> OperatorStatus {
        OperatorStatus {
            schema_version: DISPATCH_SCHEMA_VERSION,
            name: self.name.clone(),
            agents: self.ctx.orchestrator().agent_count(),
            waves_executed: self.waves_executed.load(Ordering::Relaxed),
            waves_cached: self.waves_cached.load(Ordering::Relaxed),
        }
    }

    fn cached(&self, token: &str) -> Option<WaveResponse> {
        let completed = self.completed.lock();
        completed.get(token).map(|done| {
            self.waves_cached.fetch_add(1, Ordering::Relaxed);
            let mut replay = done.clone();
            replay.cached = true;
            replay
        })
    }

    fn run_wave(&self, wave: &WaveRequest) -> WaveResponse {
        if let Some(replay) = self.cached(&wave.token) {
            return replay;
        }
        let _guard = self.wave_lock.lock();
        // A retry may have raced the original attempt to the lock;
        // whoever lost replays instead of re-executing.
        if let Some(replay) = self.cached(&wave.token) {
            return replay;
        }
        let names: Vec<&str> = wave.recipes.iter().map(|r| r.name.as_str()).collect();
        self.ctx.annotate(
            "wave-begin",
            &format!("operator {}: {}", self.name, names.join(", ")),
        );
        let outcomes = execute_wave(
            &self.ctx,
            &wave.recipes,
            &wave.seed_baselines,
            self.flight_root.as_deref(),
        );
        // Defensive wave-boundary flush: a re-sharded or retried wave
        // must start against a fault-free fleet even if the
        // coordinator never sends `POST /operator/clear`. Best-effort
        // — the coordinator also clears before every retry.
        let _ = self.ctx.clear_faults();
        self.ctx
            .annotate("wave-end", &format!("operator {}", self.name));
        self.waves_executed.fetch_add(1, Ordering::Relaxed);
        let response = WaveResponse {
            operator: self.name.clone(),
            outcomes,
            cached: false,
        };
        self.completed
            .lock()
            .insert(wave.token.clone(), response.clone());
        response
    }
}

/// The worker half of a distributed campaign: an httpwire control
/// endpoint driving one host's agent-fleet slice.
///
/// Routes:
///
/// | Method | Path               | Effect                               |
/// |--------|--------------------|--------------------------------------|
/// | GET    | `/operator/status` | [`OperatorStatus`] JSON              |
/// | POST   | `/operator/wave`   | run a [`WaveRequest`], reply with a  |
/// |        |                    | [`WaveResponse`] (idempotent per     |
/// |        |                    | token)                               |
/// | POST   | `/operator/clear`  | flush all staged faults              |
///
/// Waves execute serially (one at a time per operator); a `POST` with
/// an already-completed token replays the recorded response without
/// touching the fleet.
pub struct OperatorServer {
    server: HttpServer,
    state: Arc<OperatorState>,
}

impl std::fmt::Debug for OperatorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorServer")
            .field("name", &self.state.name)
            .field("addr", &self.server.local_addr())
            .finish()
    }
}

impl OperatorServer {
    /// Binds the operator control endpoint on `addr` and starts
    /// serving waves over `ctx`. Monitored recipes record flight
    /// artifacts under `flight_root`, when one is given.
    ///
    /// # Errors
    ///
    /// [`CoreError::DispatchFailed`] when the address cannot be bound.
    pub fn start(
        name: impl Into<String>,
        ctx: TestContext,
        addr: impl ToSocketAddrs,
        flight_root: Option<PathBuf>,
    ) -> Result<OperatorServer, CoreError> {
        let state = Arc::new(OperatorState {
            name: name.into(),
            ctx,
            flight_root,
            completed: Mutex::new(WaveCache::new()),
            wave_lock: Mutex::new(()),
            waves_executed: AtomicU64::new(0),
            waves_cached: AtomicU64::new(0),
        });
        let handler_state = Arc::clone(&state);
        let server = HttpServer::bind(addr, move |request: Request, _conn: &ConnInfo| {
            handle_operator(&handler_state, &request)
        })
        .map_err(|err| CoreError::DispatchFailed(format!("bind operator endpoint: {err}")))?;
        Ok(OperatorServer { server, state })
    }

    /// The address the operator listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The operator's current identity and counters.
    pub fn status(&self) -> OperatorStatus {
        self.state.status()
    }

    /// Stops accepting waves and tears down the endpoint. In-flight
    /// connections are shut down, so a coordinator mid-POST observes
    /// a transport error — exactly what its retry path expects from a
    /// dying operator.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

fn handle_operator(state: &Arc<OperatorState>, request: &Request) -> Response {
    match (request.method().clone(), request.path()) {
        (Method::Get, "/operator/status") => json_response(StatusCode::OK, &state.status()),
        (Method::Post, "/operator/wave") => {
            let wave: WaveRequest = match serde_json::from_slice(request.body()) {
                Ok(wave) => wave,
                Err(err) => {
                    return Response::builder(StatusCode::BAD_REQUEST)
                        .body(format!("cannot decode wave: {err}"))
                        .build()
                }
            };
            if wave.schema_version != DISPATCH_SCHEMA_VERSION {
                return Response::builder(StatusCode::BAD_REQUEST)
                    .body(format!(
                        "dispatch schema {} unsupported (operator speaks {DISPATCH_SCHEMA_VERSION})",
                        wave.schema_version
                    ))
                    .build();
            }
            json_response(StatusCode::OK, &state.run_wave(&wave))
        }
        (Method::Post, "/operator/clear") => match state.ctx.clear_faults() {
            Ok(()) => Response::builder(StatusCode::NO_CONTENT).build(),
            Err(err) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                .body(err.to_string())
                .build(),
        },
        _ => Response::error(StatusCode::NOT_FOUND),
    }
}

fn json_response<T: Serialize>(status: StatusCode, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::builder(status)
            .header("Content-Type", "application/json")
            .body(body)
            .build(),
        Err(err) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
            .body(err.to_string())
            .build(),
    }
}

/// How a coordinator reaches one operator. [`HttpOperator`] is the
/// production transport; tests swap in in-process fakes.
pub trait OperatorTransport: Send + Sync {
    /// The operator's name, for logs and error messages.
    fn name(&self) -> String;

    /// Runs (or replays) one wave slice, blocking until every recipe
    /// in it finished.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses; the dispatcher
    /// treats any error as "this attempt failed" and retries or
    /// re-shards.
    fn run_wave(&self, wave: &WaveRequest) -> Result<WaveResponse, CoreError>;

    /// Flushes all staged faults on the operator's fleet slice.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn clear(&self) -> Result<(), CoreError>;
}

/// [`OperatorTransport`] over the wire: a client for one
/// [`OperatorServer`].
#[derive(Debug)]
pub struct HttpOperator {
    name: String,
    addr: SocketAddr,
    client: HttpClient,
}

impl HttpOperator {
    /// Connects to the operator at `addr`, fetching its identity from
    /// `GET /operator/status` and checking protocol compatibility.
    ///
    /// The client's read timeout is sized for wave execution (an
    /// operator answers a wave POST only once every recipe in the
    /// slice finished its hold).
    ///
    /// # Errors
    ///
    /// [`CoreError::DispatchFailed`] when the operator is
    /// unreachable, unhealthy, or speaks a different
    /// [`DISPATCH_SCHEMA_VERSION`].
    pub fn connect(addr: SocketAddr) -> Result<HttpOperator, CoreError> {
        let client = HttpClient::with_config(ClientConfig {
            read_timeout: Some(Duration::from_secs(600)),
            write_timeout: Some(Duration::from_secs(60)),
            ..ClientConfig::default()
        });
        let response = client
            .send(addr, Request::get("/operator/status"))
            .map_err(|err| {
                CoreError::DispatchFailed(format!("operator {addr} unreachable: {err}"))
            })?;
        if !response.status().is_success() {
            return Err(CoreError::DispatchFailed(format!(
                "operator {addr} status {}: {}",
                response.status(),
                response.body_str()
            )));
        }
        let status: OperatorStatus = serde_json::from_slice(response.body()).map_err(|err| {
            CoreError::DispatchFailed(format!("operator {addr} sent malformed status: {err}"))
        })?;
        if status.schema_version != DISPATCH_SCHEMA_VERSION {
            return Err(CoreError::DispatchFailed(format!(
                "operator {addr} speaks dispatch schema {}, coordinator speaks {}",
                status.schema_version, DISPATCH_SCHEMA_VERSION
            )));
        }
        Ok(HttpOperator {
            name: status.name,
            addr,
            client,
        })
    }

    /// The operator endpoint's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl OperatorTransport for HttpOperator {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run_wave(&self, wave: &WaveRequest) -> Result<WaveResponse, CoreError> {
        let body = serde_json::to_string(wave)
            .map_err(|err| CoreError::DispatchFailed(format!("encode wave: {err}")))?;
        let request = Request::builder(Method::Post, "/operator/wave")
            .header("Content-Type", "application/json")
            .body(body)
            .build();
        let response = self.client.send(self.addr, request).map_err(|err| {
            CoreError::DispatchFailed(format!("operator {} ({}): {err}", self.name, self.addr))
        })?;
        if !response.status().is_success() {
            return Err(CoreError::DispatchFailed(format!(
                "operator {} refused wave: {} {}",
                self.name,
                response.status(),
                response.body_str()
            )));
        }
        serde_json::from_slice(response.body()).map_err(|err| {
            CoreError::DispatchFailed(format!(
                "operator {} sent malformed wave response: {err}",
                self.name
            ))
        })
    }

    fn clear(&self) -> Result<(), CoreError> {
        let request = Request::post("/operator/clear", "");
        let response = self.client.send(self.addr, request).map_err(|err| {
            CoreError::DispatchFailed(format!("operator {} ({}): {err}", self.name, self.addr))
        })?;
        if response.status().is_success() {
            Ok(())
        } else {
            Err(CoreError::DispatchFailed(format!(
                "operator {} refused clear: {} {}",
                self.name,
                response.status(),
                response.body_str()
            )))
        }
    }
}

/// Plans shard assignments: packs `footprints` into footprint-disjoint
/// waves sized for the *whole* fleet (`operators * max_in_flight`),
/// then splits each wave round-robin into per-operator slices.
///
/// Returns, per wave, one slice of recipe indices per operator
/// (positionally: `shards[w][op]`; possibly empty). Every index
/// appears in exactly one slice of exactly one wave; two recipes in
/// the same wave have disjoint footprints even across operators
/// (inherited from [`plan_waves`]), so concurrent slices never fault
/// or observe each other's edges; and no slice exceeds
/// `max_in_flight`.
pub fn plan_shards(
    footprints: &[BTreeSet<(String, String)>],
    operators: usize,
    max_in_flight: usize,
) -> Vec<Vec<Vec<usize>>> {
    let operators = operators.max(1);
    let max_in_flight = max_in_flight.max(1);
    plan_waves(footprints, max_in_flight * operators)
        .into_iter()
        .map(|wave| {
            let mut slices: Vec<Vec<usize>> = vec![Vec::new(); operators];
            for (position, index) in wave.into_iter().enumerate() {
                slices[position % operators].push(index);
            }
            slices
        })
        .collect()
}

/// Re-shards pooled recipe indices (from dead operators) round-robin
/// across `survivors` slots, each slice capped at `max_in_flight`.
/// Returns the per-slot slices and whatever exceeded this round's
/// capacity (dispatched in a later round).
pub(crate) fn reassign(
    pool: &[usize],
    survivors: usize,
    max_in_flight: usize,
) -> (Vec<Vec<usize>>, Vec<usize>) {
    let survivors = survivors.max(1);
    let max_in_flight = max_in_flight.max(1);
    let capacity = survivors * max_in_flight;
    let (taken, leftover) = pool.split_at(pool.len().min(capacity));
    let mut slices: Vec<Vec<usize>> = vec![Vec::new(); survivors];
    for (position, &index) in taken.iter().enumerate() {
        slices[position % survivors].push(index);
    }
    (slices, leftover.to_vec())
}

/// Result of dispatching one slice to one operator.
type SliceResult = Result<Vec<RecipeOutcome>, CoreError>;

/// The coordinator half of a distributed campaign: shards
/// footprint-disjoint waves across several [`OperatorTransport`]s,
/// survives operator deaths, and merges the partial results into one
/// [`CampaignReport`] with the same shape as a single-host run.
///
/// # Examples
///
/// ```no_run
/// use gremlin_core::dispatch::{CampaignDispatcher, HttpOperator, OperatorTransport};
/// use gremlin_core::{AppGraph, CampaignRecipe, Scenario};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = AppGraph::from_edges(vec![("web", "db"), ("web", "cache")]);
/// let operators: Vec<Arc<dyn OperatorTransport>> = vec![
///     Arc::new(HttpOperator::connect("10.0.0.1:7070".parse()?)?),
///     Arc::new(HttpOperator::connect("10.0.0.2:7070".parse()?)?),
/// ];
/// let report = CampaignDispatcher::new(graph, operators).run(vec![
///     CampaignRecipe::new("db-down").scenario(Scenario::crash("db")),
///     CampaignRecipe::new("cache-down").scenario(Scenario::crash("cache")),
/// ])?;
/// println!("{report}");
/// # Ok(())
/// # }
/// ```
pub struct CampaignDispatcher {
    graph: AppGraph,
    operators: Vec<Arc<dyn OperatorTransport>>,
    max_in_flight: usize,
    flight_root: Option<PathBuf>,
    seed_baselines: Vec<EdgeBaseline>,
    steer_order: bool,
    retries: usize,
    backoff: Duration,
    timeline: Option<Arc<TimeSeriesStore>>,
}

impl std::fmt::Debug for CampaignDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignDispatcher")
            .field(
                "operators",
                &self
                    .operators
                    .iter()
                    .map(|op| op.name())
                    .collect::<Vec<_>>(),
            )
            .field("max_in_flight", &self.max_in_flight)
            .field("retries", &self.retries)
            .finish_non_exhaustive()
    }
}

impl CampaignDispatcher {
    /// Creates a dispatcher over `graph` and the given operators, with
    /// the default per-operator wave width, retry budget and backoff.
    pub fn new(graph: AppGraph, operators: Vec<Arc<dyn OperatorTransport>>) -> CampaignDispatcher {
        CampaignDispatcher {
            graph,
            operators,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            flight_root: None,
            seed_baselines: Vec::new(),
            steer_order: false,
            retries: DEFAULT_DISPATCH_RETRIES,
            backoff: DEFAULT_DISPATCH_BACKOFF,
            timeline: None,
        }
    }

    /// Builder-style: caps concurrently running recipes **per
    /// operator** (minimum 1). The planner packs waves up to
    /// `operators * max_in_flight` wide.
    pub fn max_in_flight(mut self, max_in_flight: usize) -> CampaignDispatcher {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Builder-style: the coordinator-side flight root — the ledger
    /// (`campaigns.jsonl`) is appended here wave by wave, prior
    /// coverage is scanned from here, and the merged `baselines.json`
    /// is persisted here.
    pub fn flight_root(mut self, root: impl Into<PathBuf>) -> CampaignDispatcher {
        self.flight_root = Some(root.into());
        self
    }

    /// Builder-style: baselines shipped with every wave to seed
    /// monitored recipes' anomaly scorers on the operators.
    pub fn seed(mut self, baselines: Vec<EdgeBaseline>) -> CampaignDispatcher {
        self.seed_baselines = baselines;
        self
    }

    /// Builder-style: reorders waves by coverage-ledger priority
    /// (untested, then flaky, then stable), exactly like
    /// [`CampaignRunner::steer_order`](crate::campaign::CampaignRunner::steer_order).
    pub fn steer_order(mut self, steer: bool) -> CampaignDispatcher {
        self.steer_order = steer;
        self
    }

    /// Builder-style: re-dispatch attempts per slice after the first
    /// failure, before the operator is declared dead and its recipes
    /// re-shard to survivors.
    pub fn retries(mut self, retries: usize) -> CampaignDispatcher {
        self.retries = retries;
        self
    }

    /// Builder-style: initial retry backoff (doubles per attempt,
    /// capped at [`MAX_DISPATCH_BACKOFF`]).
    pub fn backoff(mut self, backoff: Duration) -> CampaignDispatcher {
        self.backoff = backoff;
        self
    }

    /// Builder-style: attaches a coordinator-side timeline; wave
    /// begin/end and re-shard events are annotated onto it.
    pub fn timeline(mut self, timeline: Arc<TimeSeriesStore>) -> CampaignDispatcher {
        self.timeline = Some(timeline);
        self
    }

    fn annotate(&self, phase: &str, detail: &str) {
        if let Some(timeline) = &self.timeline {
            timeline.annotate(now_micros(), phase, detail);
        }
    }

    /// Executes the recipes across the operators: plans shards, drives
    /// each wave's slices concurrently, retries and re-shards around
    /// operator failures, appends each completed wave to the ledger,
    /// and merges everything into one [`CampaignReport`].
    ///
    /// # Errors
    ///
    /// Footprint computation failures before anything runs;
    /// [`CoreError::DispatchFailed`] when no operator is configured or
    /// every operator died with recipes still pending. Failures
    /// *inside* a recipe fail that recipe's report, not the campaign.
    pub fn run(&self, recipes: Vec<CampaignRecipe>) -> Result<CampaignReport, CoreError> {
        if self.operators.is_empty() {
            return Err(CoreError::DispatchFailed(
                "no operators configured".to_string(),
            ));
        }
        let footprints = recipes
            .iter()
            .map(|recipe| recipe.footprint(&self.graph))
            .collect::<Result<Vec<_>, CoreError>>()?;
        let mut shards = plan_shards(&footprints, self.operators.len(), self.max_in_flight);

        let ledger: Option<CoverageLedger> = self
            .flight_root
            .as_ref()
            .and_then(|root| CoverageLedger::scan(root).ok());
        let prior_covered: BTreeSet<CellKey> = ledger
            .as_ref()
            .map(CoverageLedger::covered_keys)
            .unwrap_or_default();
        if self.steer_order {
            let priorities: Vec<u8> = recipes
                .iter()
                .map(|recipe| steer_priority(recipe, ledger.as_ref(), &prior_covered))
                .collect();
            shards.sort_by_key(|wave| {
                wave.iter()
                    .flatten()
                    .map(|&index| priorities[index])
                    .min()
                    .unwrap_or(u8::MAX)
            });
        }
        let wave_names: Vec<Vec<String>> = shards
            .iter()
            .map(|wave| {
                wave.iter()
                    .flatten()
                    .map(|&index| recipes[index].name.clone())
                    .collect()
            })
            .collect();

        // Unique per campaign, so tokens never collide with an earlier
        // campaign's cached waves on a long-lived operator.
        let campaign_id = format!("{}-{}", now_micros(), std::process::id());
        let started = Instant::now();
        let mut alive: Vec<bool> = vec![true; self.operators.len()];
        let mut outcomes: Vec<Option<RecipeOutcome>> = Vec::new();
        outcomes.resize_with(recipes.len(), || None);

        for (wave_index, wave) in shards.iter().enumerate() {
            self.annotate(
                "wave-begin",
                &format!(
                    "wave {}: {}",
                    wave_index + 1,
                    wave_names[wave_index].join(", ")
                ),
            );
            self.run_wave_resilient(
                wave,
                wave_index,
                &recipes,
                &campaign_id,
                &mut alive,
                &mut outcomes,
            )?;
            // The wave's verdicts are final: append its ledger entries
            // now, before anything else can fail, mirroring the
            // single-host runner. Best-effort, deduplicated at read
            // time against directly scanned flight dirs.
            if let Some(root) = &self.flight_root {
                let entries: Vec<LedgerEntry> = wave
                    .iter()
                    .flatten()
                    .map(|&index| {
                        outcomes[index]
                            .as_ref()
                            .expect("wave completed")
                            .ledger_entry()
                    })
                    .collect();
                let _ = append_campaign_entries(root, &entries);
            }
            self.annotate("wave-end", &format!("wave {}", wave_index + 1));
        }
        let wall_clock = started.elapsed();

        let outcomes: Vec<RecipeOutcome> = outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every recipe ran"))
            .collect();
        let report = assemble_report(
            outcomes,
            wave_names,
            self.steer_order,
            wall_clock,
            &self.seed_baselines,
            &prior_covered,
        );
        if let Some(root) = &self.flight_root {
            persist_merged_baselines(root, &report.baselines);
        }
        Ok(report)
    }

    /// Drives one planned wave to completion: dispatches the live
    /// slices concurrently, marks failed operators dead, and
    /// re-shards their recipes over the survivors until every recipe
    /// in the wave has an outcome.
    fn run_wave_resilient(
        &self,
        wave: &[Vec<usize>],
        wave_index: usize,
        recipes: &[CampaignRecipe],
        campaign_id: &str,
        alive: &mut [bool],
        outcomes: &mut [Option<RecipeOutcome>],
    ) -> Result<(), CoreError> {
        // (operator index, recipe indices) ready to dispatch; recipes
        // stranded by dead operators wait in the pool.
        let mut assignments: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut pool: Vec<usize> = Vec::new();
        for (op_index, slice) in wave.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            if alive[op_index] {
                assignments.push((op_index, slice.clone()));
            } else {
                pool.extend(slice.iter().copied());
            }
        }

        while !assignments.is_empty() || !pool.is_empty() {
            if assignments.is_empty() {
                let survivors: Vec<usize> =
                    (0..self.operators.len()).filter(|&op| alive[op]).collect();
                if survivors.is_empty() {
                    return Err(CoreError::DispatchFailed(format!(
                        "every operator died; {} recipe(s) stranded in wave {}",
                        pool.len(),
                        wave_index + 1
                    )));
                }
                let (slices, leftover) = reassign(&pool, survivors.len(), self.max_in_flight);
                self.annotate(
                    "reshard",
                    &format!(
                        "wave {}: {} recipe(s) over {} survivor(s)",
                        wave_index + 1,
                        pool.len() - leftover.len(),
                        survivors.len()
                    ),
                );
                pool = leftover;
                for (slot, slice) in slices.into_iter().enumerate() {
                    if !slice.is_empty() {
                        assignments.push((survivors[slot], slice));
                    }
                }
                continue;
            }

            let current = std::mem::take(&mut assignments);
            let slots: Vec<Mutex<Option<SliceResult>>> =
                current.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..current.len() {
                    scope.spawn(|| {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let (op_index, indices) = &current[slot];
                        *slots[slot].lock() = Some(self.dispatch_slice(
                            *op_index,
                            indices,
                            recipes,
                            wave_index,
                            campaign_id,
                        ));
                    });
                }
            });
            let results: Vec<SliceResult> = slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every slice dispatched"))
                .collect();
            for ((op_index, indices), result) in current.into_iter().zip(results) {
                match result {
                    Ok(slice_outcomes) => {
                        for (index, outcome) in indices.into_iter().zip(slice_outcomes) {
                            outcomes[index] = Some(outcome);
                        }
                    }
                    Err(err) => {
                        self.annotate(
                            "operator-dead",
                            &format!("{}: {err}", self.operators[op_index].name()),
                        );
                        alive[op_index] = false;
                        pool.extend(indices);
                    }
                }
            }
        }
        Ok(())
    }

    /// Dispatches one slice to one operator with bounded-backoff
    /// retries. The idempotency token is stable across attempts, so a
    /// retry after a lost response replays the operator's recorded
    /// outcomes; before every retry the operator's faults are flushed
    /// so a half-staged attempt cannot leak into the next one.
    fn dispatch_slice(
        &self,
        op_index: usize,
        indices: &[usize],
        recipes: &[CampaignRecipe],
        wave_index: usize,
        campaign_id: &str,
    ) -> SliceResult {
        let operator = &self.operators[op_index];
        let names: Vec<&str> = indices
            .iter()
            .map(|&index| recipes[index].name.as_str())
            .collect();
        let request = WaveRequest {
            schema_version: DISPATCH_SCHEMA_VERSION,
            token: format!("{campaign_id}:w{wave_index}:{}", names.join("+")),
            recipes: indices
                .iter()
                .map(|&index| recipes[index].clone())
                .collect(),
            seed_baselines: self.seed_baselines.clone(),
        };
        let mut backoff = self.backoff;
        let mut last_err = CoreError::DispatchFailed("no attempt made".to_string());
        for attempt in 0..=self.retries {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_DISPATCH_BACKOFF);
                // Idempotent retry precondition: flush whatever the
                // failed attempt may have half-staged. Best-effort —
                // if the operator is truly gone this fails too and the
                // wave POST below settles it.
                let _ = operator.clear();
            }
            match operator.run_wave(&request) {
                Ok(response) if response.outcomes.len() == request.recipes.len() => {
                    return Ok(response.outcomes);
                }
                Ok(response) => {
                    last_err = CoreError::DispatchFailed(format!(
                        "operator {} answered {} outcome(s) for {} recipe(s)",
                        operator.name(),
                        response.outcomes.len(),
                        request.recipes.len()
                    ));
                }
                Err(err) => last_err = err,
            }
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Scenario;
    use gremlin_proxy::{AgentControl, ProxyError, Rule};
    use gremlin_store::EventStore;
    use std::sync::atomic::AtomicBool;

    /// In-memory agent recording installed rules.
    struct SinkAgent {
        service: String,
        rules: Mutex<Vec<Rule>>,
    }

    impl SinkAgent {
        fn new(service: &str) -> Arc<SinkAgent> {
            Arc::new(SinkAgent {
                service: service.to_string(),
                rules: Mutex::new(Vec::new()),
            })
        }
    }

    impl AgentControl for SinkAgent {
        fn service_name(&self) -> String {
            self.service.clone()
        }

        fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
            self.rules.lock().extend(rules.iter().cloned());
            Ok(())
        }

        fn clear_rules(&self) -> Result<(), ProxyError> {
            self.rules.lock().clear();
            Ok(())
        }

        fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
            Ok(self.rules.lock().clone())
        }
    }

    fn fan_pairs() -> Vec<(&'static str, &'static str)> {
        vec![("c1", "s1"), ("c2", "s2"), ("c3", "s3"), ("c4", "s4")]
    }

    fn fleet_ctx(pairs: &[(&'static str, &'static str)]) -> TestContext {
        let graph = AppGraph::from_edges(pairs.to_vec());
        let agents: Vec<Arc<dyn AgentControl>> = pairs
            .iter()
            .map(|(src, _)| SinkAgent::new(src) as Arc<dyn AgentControl>)
            .collect();
        TestContext::new(graph, agents, EventStore::shared())
    }

    fn abort_recipes(
        pairs: &[(&'static str, &'static str)],
        hold: Duration,
    ) -> Vec<CampaignRecipe> {
        pairs
            .iter()
            .map(|(src, dst)| {
                CampaignRecipe::new(format!("{src}-{dst}"))
                    .scenario(Scenario::abort(*src, *dst, 503))
                    .hold(hold)
            })
            .collect()
    }

    /// In-process transport over a full [`TestContext`], with optional
    /// scripted failures.
    struct LocalOperator {
        name: String,
        ctx: TestContext,
        calls: AtomicUsize,
        fail_first: usize,
        dead: AtomicBool,
    }

    impl LocalOperator {
        fn new(name: &str, ctx: TestContext) -> LocalOperator {
            LocalOperator {
                name: name.to_string(),
                ctx,
                calls: AtomicUsize::new(0),
                fail_first: 0,
                dead: AtomicBool::new(false),
            }
        }

        fn failing_first(mut self, failures: usize) -> LocalOperator {
            self.fail_first = failures;
            self
        }

        fn kill(&self) {
            self.dead.store(true, Ordering::SeqCst);
        }
    }

    impl OperatorTransport for LocalOperator {
        fn name(&self) -> String {
            self.name.clone()
        }

        fn run_wave(&self, wave: &WaveRequest) -> Result<WaveResponse, CoreError> {
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if self.dead.load(Ordering::SeqCst) {
                return Err(CoreError::DispatchFailed(format!(
                    "operator {} is down",
                    self.name
                )));
            }
            if call < self.fail_first {
                return Err(CoreError::DispatchFailed(format!(
                    "operator {} transient failure",
                    self.name
                )));
            }
            let outcomes = execute_wave(&self.ctx, &wave.recipes, &wave.seed_baselines, None);
            let _ = self.ctx.clear_faults();
            Ok(WaveResponse {
                operator: self.name.clone(),
                outcomes,
                cached: false,
            })
        }

        fn clear(&self) -> Result<(), CoreError> {
            if self.dead.load(Ordering::SeqCst) {
                return Err(CoreError::DispatchFailed(format!(
                    "operator {} is down",
                    self.name
                )));
            }
            self.ctx.clear_faults()
        }
    }

    #[test]
    fn shards_split_waves_round_robin() {
        let edges: Vec<BTreeSet<(String, String)>> = (0..4)
            .map(|i| {
                let mut set = BTreeSet::new();
                set.insert((format!("c{i}"), format!("s{i}")));
                set
            })
            .collect();
        // 4 disjoint footprints, 2 operators, width 2 -> one wave of
        // two 2-recipe slices.
        let shards = plan_shards(&edges, 2, 2);
        assert_eq!(shards, vec![vec![vec![0, 2], vec![1, 3]]]);
        // One operator degenerates to plain waves.
        let shards = plan_shards(&edges, 1, 2);
        assert_eq!(shards, vec![vec![vec![0, 1]], vec![vec![2, 3]]]);
    }

    #[test]
    fn reassign_caps_slices_and_keeps_leftover() {
        let pool = vec![7, 8, 9, 10, 11];
        let (slices, leftover) = reassign(&pool, 2, 2);
        assert_eq!(slices, vec![vec![7, 9], vec![8, 10]]);
        assert_eq!(leftover, vec![11]);
    }

    #[test]
    fn dispatcher_runs_disjoint_recipes_across_two_operators() {
        let pairs = fan_pairs();
        let graph = AppGraph::from_edges(pairs.clone());
        let operators: Vec<Arc<dyn OperatorTransport>> = vec![
            Arc::new(LocalOperator::new("op-a", fleet_ctx(&pairs))),
            Arc::new(LocalOperator::new("op-b", fleet_ctx(&pairs))),
        ];
        let report = CampaignDispatcher::new(graph, operators)
            .max_in_flight(2)
            .run(abort_recipes(&pairs, Duration::from_millis(40)))
            .unwrap();
        assert_eq!(report.recipes.len(), 4);
        assert!(report.passed(), "{report}");
        assert_eq!(report.waves.len(), 1, "{:?}", report.waves);
        assert_eq!(report.waves[0].len(), 4);
        // Reports stay aligned with campaign input order.
        assert_eq!(report.recipes[0].name, "c1-s1");
        assert_eq!(report.recipes[3].name, "c4-s4");
    }

    #[test]
    fn transient_operator_failure_is_retried() {
        let pairs = fan_pairs();
        let graph = AppGraph::from_edges(pairs.clone());
        let flaky = Arc::new(LocalOperator::new("flaky", fleet_ctx(&pairs)).failing_first(1));
        let operators: Vec<Arc<dyn OperatorTransport>> = vec![Arc::clone(&flaky) as _];
        let report = CampaignDispatcher::new(graph, operators)
            .max_in_flight(4)
            .retries(2)
            .backoff(Duration::from_millis(1))
            .run(abort_recipes(&pairs, Duration::from_millis(10)))
            .unwrap();
        assert!(report.passed(), "{report}");
        assert!(
            flaky.calls.load(Ordering::SeqCst) >= 2,
            "first attempt failed, retry succeeded"
        );
    }

    #[test]
    fn dead_operator_waves_reshard_to_survivor() {
        let pairs = fan_pairs();
        let graph = AppGraph::from_edges(pairs.clone());
        let survivor = Arc::new(LocalOperator::new("survivor", fleet_ctx(&pairs)));
        let doomed = Arc::new(LocalOperator::new("doomed", fleet_ctx(&pairs)));
        doomed.kill();
        let operators: Vec<Arc<dyn OperatorTransport>> =
            vec![Arc::clone(&survivor) as _, Arc::clone(&doomed) as _];
        let report = CampaignDispatcher::new(graph, operators)
            .max_in_flight(2)
            .retries(0)
            .backoff(Duration::from_millis(1))
            .run(abort_recipes(&pairs, Duration::from_millis(10)))
            .unwrap();
        // Every recipe completed despite the dead operator, and the
        // survivor executed all of them.
        assert_eq!(report.recipes.len(), 4);
        assert!(report.passed(), "{report}");
        assert!(survivor.calls.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn campaign_fails_when_every_operator_dies() {
        let pairs = fan_pairs();
        let graph = AppGraph::from_edges(pairs.clone());
        let doomed = Arc::new(LocalOperator::new("doomed", fleet_ctx(&pairs)));
        doomed.kill();
        let operators: Vec<Arc<dyn OperatorTransport>> = vec![Arc::clone(&doomed) as _];
        let err = CampaignDispatcher::new(graph, operators)
            .retries(0)
            .backoff(Duration::from_millis(1))
            .run(abort_recipes(&pairs, Duration::from_millis(10)))
            .unwrap_err();
        assert!(matches!(err, CoreError::DispatchFailed(_)), "{err}");
    }

    #[test]
    fn no_operators_is_an_error() {
        let err = CampaignDispatcher::new(AppGraph::from_edges(vec![("a", "b")]), Vec::new())
            .run(vec![CampaignRecipe::new("r")])
            .unwrap_err();
        assert!(matches!(err, CoreError::DispatchFailed(_)), "{err}");
    }

    #[test]
    fn wave_wire_types_round_trip() {
        let pairs = vec![("c1", "s1")];
        let ctx = fleet_ctx(&pairs);
        let recipe = CampaignRecipe::new("rt")
            .scenario(Scenario::abort("c1", "s1", 503))
            .hold(Duration::from_millis(5));
        let outcome = crate::campaign::execute_recipe(&ctx, &recipe, &[], None);
        let response = WaveResponse {
            operator: "op-a".to_string(),
            outcomes: vec![outcome],
            cached: false,
        };
        let json = serde_json::to_string(&response).unwrap();
        let back: WaveResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(response, back);

        let request = WaveRequest {
            schema_version: DISPATCH_SCHEMA_VERSION,
            token: "c:w0:rt".to_string(),
            recipes: vec![recipe],
            seed_baselines: Vec::new(),
        };
        let json = serde_json::to_string(&request).unwrap();
        let back: WaveRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(request, back);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn footprint_strategy() -> impl Strategy<Value = BTreeSet<(String, String)>> {
            proptest::collection::btree_set(
                (0..4u8, 0..4u8).prop_map(|(s, d)| (format!("s{s}"), format!("d{d}"))),
                1..4,
            )
        }

        proptest! {
            #[test]
            fn shards_assign_every_recipe_exactly_once_and_stay_disjoint(
                footprints in proptest::collection::vec(footprint_strategy(), 1..12),
                operators in 1usize..5,
                max_in_flight in 1usize..4,
            ) {
                let shards = plan_shards(&footprints, operators, max_in_flight);
                let mut seen: Vec<usize> = shards
                    .iter()
                    .flatten()
                    .flatten()
                    .copied()
                    .collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..footprints.len()).collect::<Vec<_>>());
                for wave in &shards {
                    prop_assert_eq!(wave.len(), operators);
                    for slice in wave {
                        prop_assert!(slice.len() <= max_in_flight);
                    }
                    // Disjointness holds across the whole wave, even
                    // between recipes on different operators.
                    let flat: Vec<usize> = wave.iter().flatten().copied().collect();
                    for (i, &a) in flat.iter().enumerate() {
                        for &b in &flat[i + 1..] {
                            prop_assert!(
                                footprints[a].is_disjoint(&footprints[b]),
                                "wave co-schedules intersecting footprints {} and {}",
                                a, b,
                            );
                        }
                    }
                }
            }

            #[test]
            fn reassign_conserves_the_pool(
                pool in proptest::collection::vec(0usize..64, 0..16),
                survivors in 1usize..5,
                max_in_flight in 1usize..4,
            ) {
                let (slices, leftover) = reassign(&pool, survivors, max_in_flight);
                prop_assert_eq!(slices.len(), survivors);
                for slice in &slices {
                    prop_assert!(slice.len() <= max_in_flight);
                }
                let mut rebuilt: Vec<usize> =
                    slices.iter().flatten().copied().collect();
                rebuilt.extend(leftover.iter().copied());
                rebuilt.sort_unstable();
                let mut original = pool.clone();
                original.sort_unstable();
                prop_assert_eq!(rebuilt, original);
            }

            #[test]
            fn shards_survive_random_operator_failures(
                footprints in proptest::collection::vec(footprint_strategy(), 1..10),
                operators in 2usize..5,
                max_in_flight in 1usize..4,
                failures in proptest::collection::vec(any::<bool>(), 2..5),
            ) {
                // Simulate the dispatcher's pooling/re-sharding control
                // flow without executing recipes: every recipe must be
                // assigned exactly once as long as one operator lives.
                let shards = plan_shards(&footprints, operators, max_in_flight);
                let alive: Vec<bool> = (0..operators)
                    .map(|op| *failures.get(op).unwrap_or(&true))
                    .collect();
                prop_assume!(alive.iter().any(|&a| a));
                let mut executed: Vec<usize> = Vec::new();
                for wave in &shards {
                    let mut pool: Vec<usize> = Vec::new();
                    for (op, slice) in wave.iter().enumerate() {
                        if alive[op] {
                            executed.extend(slice.iter().copied());
                        } else {
                            pool.extend(slice.iter().copied());
                        }
                    }
                    let survivors = alive.iter().filter(|&&a| a).count();
                    while !pool.is_empty() {
                        let (slices, leftover) =
                            reassign(&pool, survivors, max_in_flight);
                        for slice in slices {
                            executed.extend(slice);
                        }
                        pool = leftover;
                    }
                }
                executed.sort_unstable();
                prop_assert_eq!(executed, (0..footprints.len()).collect::<Vec<_>>());
            }
        }
    }
}

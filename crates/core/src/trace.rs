//! Flow reconstruction: assembling the end-to-end path of one request
//! ID from the observation logs.
//!
//! The paper leans on request-ID propagation (§4.1, citing Dapper and
//! Zipkin) to confine faults to flows; the same IDs let us rebuild
//! what actually happened to a request after a test — which hops it
//! took, where it was faulted, where time was spent. Recipe authors
//! use this when an assertion fails and they want the why.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use gremlin_store::{
    spans_from_store, AppliedFault, Event, EventStore, Micros, Name, Pattern, Query, SpanRecord,
};

/// One caller→callee hop of a flow: a request observation paired with
/// the matching response (if one was observed).
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// Calling service.
    pub src: String,
    /// Called service.
    pub dst: String,
    /// When the request was observed.
    pub requested_at: Micros,
    /// Method and URI of the request.
    pub call: String,
    /// Response status (`None` when no response was observed, `0`
    /// for TCP-level failures).
    pub status: Option<u16>,
    /// Caller-observed latency of the response.
    pub latency: Option<Duration>,
    /// Fault applied on this hop, if any.
    pub fault: Option<AppliedFault>,
}

impl Hop {
    /// Returns `true` when the hop ended in a failure (no response,
    /// TCP reset, or a 5xx).
    pub fn failed(&self) -> bool {
        match self.status {
            None | Some(0) => true,
            Some(status) => (500..600).contains(&status),
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} {}", self.src, self.dst, self.call)?;
        match self.status {
            Some(0) => write!(f, " => connection reset")?,
            Some(status) => write!(f, " => {status}")?,
            None => write!(f, " => (no response observed)")?,
        }
        if let Some(latency) = self.latency {
            write!(f, " in {latency:?}")?;
        }
        if let Some(fault) = &self.fault {
            write!(f, " [gremlin: {fault}]")?;
        }
        Ok(())
    }
}

/// The reconstructed path of one request ID through the application.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowTrace {
    /// The flow's request ID.
    pub request_id: String,
    /// Hops in request-time order.
    pub hops: Vec<Hop>,
    /// Timestamp of the last observation (request *or* response) in
    /// the flow; duration fallback when responses are missing.
    pub last_observed_us: Option<Micros>,
}

impl FlowTrace {
    /// Rebuilds the flow for `request_id` from `store`.
    ///
    /// Requests are paired with responses per edge in order —
    /// retries of the same edge become separate hops, matching how
    /// the agent logged them.
    pub fn from_store(store: &EventStore, request_id: &str) -> FlowTrace {
        let events =
            store.query(&Query::new().with_id_pattern(Pattern::Exact(request_id.to_string())));
        FlowTrace::from_events(request_id, &events)
    }

    /// Rebuilds a flow from pre-fetched, time-sorted events.
    pub fn from_events(request_id: &str, events: &[Event]) -> FlowTrace {
        let mut hops: Vec<Hop> = Vec::new();
        // Pending request hops per edge awaiting their response, as
        // indices into `hops` (FIFO per edge: responses pair with the
        // oldest outstanding request on that edge).
        let mut pending: Vec<usize> = Vec::new();
        for event in events {
            match &event.kind {
                gremlin_store::EventKind::Request { method, uri } => {
                    hops.push(Hop {
                        src: event.src.to_string(),
                        dst: event.dst.to_string(),
                        requested_at: event.timestamp_us,
                        call: format!("{method} {uri}"),
                        status: None,
                        latency: None,
                        fault: event.fault.clone(),
                    });
                    pending.push(hops.len() - 1);
                }
                gremlin_store::EventKind::Response { status, .. } => {
                    let slot = pending.iter().position(|&index| {
                        hops[index].src == event.src && hops[index].dst == event.dst
                    });
                    match slot {
                        Some(position) => {
                            let index = pending.remove(position);
                            let hop = &mut hops[index];
                            hop.status = Some(*status);
                            hop.latency = event.observed_latency();
                            if hop.fault.is_none() {
                                hop.fault = event.fault.clone();
                            }
                        }
                        None => {
                            // A response with no recorded request
                            // (e.g. log loss): surface it as its own
                            // hop rather than dropping it.
                            hops.push(Hop {
                                src: event.src.to_string(),
                                dst: event.dst.to_string(),
                                requested_at: event.timestamp_us,
                                call: "(request not observed)".to_string(),
                                status: Some(*status),
                                latency: event.observed_latency(),
                                fault: event.fault.clone(),
                            });
                        }
                    }
                }
            }
        }
        hops.sort_by_key(|hop| hop.requested_at);
        FlowTrace {
            request_id: request_id.to_string(),
            hops,
            last_observed_us: events.iter().map(|event| event.timestamp_us).max(),
        }
    }

    /// Returns `true` when any hop failed.
    pub fn has_failures(&self) -> bool {
        self.hops.iter().any(Hop::failed)
    }

    /// Returns `true` when any hop was touched by Gremlin.
    pub fn was_faulted(&self) -> bool {
        self.hops.iter().any(|hop| hop.fault.is_some())
    }

    /// Number of hops on edge `(src, dst)` — e.g. retries of one
    /// call.
    pub fn attempts(&self, src: &str, dst: &str) -> usize {
        self.hops
            .iter()
            .filter(|hop| hop.src == src && hop.dst == dst)
            .count()
    }

    /// Total caller-observed time of the flow, from the first request
    /// to the end of the latest response.
    ///
    /// Hops whose response was never observed (e.g. the root request
    /// timed out before the agent could log one) contribute no
    /// latency, so the flow additionally falls back to the span
    /// between the first and the last *observed* event timestamps —
    /// the duration never undercounts what the log actually shows,
    /// but it still cannot account for time spent after the final
    /// observation.
    pub fn total_duration(&self) -> Duration {
        let Some(first) = self.hops.first() else {
            return Duration::ZERO;
        };
        let start = first.requested_at;
        let end = self
            .hops
            .iter()
            .map(|hop| hop.requested_at + hop.latency.map(|l| l.as_micros() as Micros).unwrap_or(0))
            .chain(self.last_observed_us)
            .max()
            .unwrap_or(start);
        Duration::from_micros(end.saturating_sub(start))
    }
}

impl fmt::Display for FlowTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flow {} ({} hop(s), {:?} total)",
            self.request_id,
            self.hops.len(),
            self.total_duration()
        )?;
        for hop in &self.hops {
            writeln!(f, "  {hop}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Span trees
// ---------------------------------------------------------------------------

/// How a group of same-edge sibling calls relates in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// A single call on this edge.
    Single,
    /// Sequential re-attempts of one logical call: each starts only
    /// after the previous one ended (or was abandoned unanswered).
    Retry,
    /// Concurrent calls on the same edge (a fan-out to replicas or
    /// parallel work), overlapping in time.
    Parallel,
}

impl fmt::Display for CallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallKind::Single => write!(f, "single"),
            CallKind::Retry => write!(f, "retry"),
            CallKind::Parallel => write!(f, "parallel"),
        }
    }
}

/// Sibling spans of one parent that target the same `(src, dst)`
/// edge, with their temporal classification.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildGroup {
    /// Destination service of the group's calls.
    pub dst: Name,
    /// How the group's calls relate ([`CallKind::Retry`] vs
    /// [`CallKind::Parallel`]).
    pub kind: CallKind,
    /// Node indices of the group's spans, in start order.
    pub spans: Vec<usize>,
}

/// One node of a [`SpanTree`]: a span record plus its place in the
/// causal hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The underlying span record.
    pub record: SpanRecord,
    /// Index of the parent node, if any.
    pub parent: Option<usize>,
    /// Indices of child nodes, in start order.
    pub children: Vec<usize>,
    /// `true` when the parent was inferred from timestamps and the
    /// call graph rather than read from span IDs (legacy events).
    pub inferred_parent: bool,
}

impl SpanNode {
    fn effective_end(&self) -> Micros {
        self.record.end_us().unwrap_or(self.record.start_us)
    }
}

/// Compact per-flow statistics, suitable for recipe reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// The flow's request ID.
    pub request_id: String,
    /// Number of spans in the flow.
    pub spans: usize,
    /// Depth of the deepest causal chain (a lone root is depth 1).
    pub depth: usize,
    /// End-to-end duration, first request to last observation.
    pub duration_us: Micros,
    /// Spans touched by an injected fault.
    pub faulted_spans: usize,
    /// Spans that failed (no response, reset, or 5xx).
    pub failed_spans: usize,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} span(s), depth {}, {:?}",
            self.request_id,
            self.spans,
            self.depth,
            Duration::from_micros(self.duration_us)
        )?;
        if self.faulted_spans > 0 {
            write!(f, ", {} faulted", self.faulted_spans)?;
        }
        if self.failed_spans > 0 {
            write!(f, ", {} failed", self.failed_spans)?;
        }
        Ok(())
    }
}

/// The causal tree of one request flow, assembled from span records.
///
/// Parent/child edges come from the `X-Gremlin-Parent` span IDs the
/// agents record. Legacy records without span IDs (and records whose
/// parent span was never observed) fall back to inference: a span is
/// attached to the latest span whose destination is the child's
/// source and whose lifetime encloses the child's start. Spans with
/// no plausible parent become roots — a flow can have several roots
/// when observations are incomplete.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// The flow's request ID.
    pub request_id: String,
    /// All nodes, in start order.
    pub nodes: Vec<SpanNode>,
    /// Indices of parentless nodes, in start order.
    pub roots: Vec<usize>,
}

impl SpanTree {
    /// Assembles the tree for `request_id` from `store`.
    pub fn from_store(store: &EventStore, request_id: &str) -> SpanTree {
        SpanTree::from_records(request_id, spans_from_store(store, request_id))
    }

    /// Assembles a tree from pre-assembled span records.
    pub fn from_records(request_id: &str, mut records: Vec<SpanRecord>) -> SpanTree {
        records.sort_by(|a, b| a.start_us.cmp(&b.start_us));
        let mut nodes: Vec<SpanNode> = records
            .into_iter()
            .map(|record| SpanNode {
                record,
                parent: None,
                children: Vec::new(),
                inferred_parent: false,
            })
            .collect();

        let by_span: HashMap<Name, usize> = nodes
            .iter()
            .enumerate()
            .filter_map(|(index, node)| node.record.span_id.clone().map(|span| (span, index)))
            .collect();

        for index in 0..nodes.len() {
            // Explicit linkage first: the parent span ID the agent
            // recorded, when that span was itself observed.
            let explicit = nodes[index]
                .record
                .parent_id
                .as_ref()
                .and_then(|parent| by_span.get(parent).copied())
                .filter(|&parent| parent != index);
            let (parent, inferred) = match explicit {
                Some(parent) => (Some(parent), false),
                None => (SpanTree::infer_parent(&nodes, index), true),
            };
            if let Some(parent) = parent {
                nodes[index].parent = Some(parent);
                nodes[index].inferred_parent = inferred;
                nodes[parent].children.push(index);
            }
        }

        let roots = (0..nodes.len())
            .filter(|&index| nodes[index].parent.is_none())
            .collect();
        SpanTree {
            request_id: request_id.to_string(),
            nodes,
            roots,
        }
    }

    /// Timestamp/graph fallback for records without usable span IDs:
    /// the parent is the latest earlier span whose destination is
    /// this span's source and whose lifetime encloses this span's
    /// start (an open span — no observed end — counts as enclosing).
    fn infer_parent(nodes: &[SpanNode], index: usize) -> Option<usize> {
        let child = &nodes[index];
        (0..index)
            .filter(|&candidate| {
                let parent = &nodes[candidate].record;
                parent.dst == child.record.src
                    && parent.start_us <= child.record.start_us
                    && parent
                        .end_us()
                        .map(|end| end >= child.record.start_us)
                        .unwrap_or(true)
            })
            .max_by_key(|&candidate| nodes[candidate].record.start_us)
    }

    /// Number of spans in the flow.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the flow has no spans.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Depth of the deepest causal chain (a lone root is depth 1).
    pub fn depth(&self) -> usize {
        let mut deepest = 0;
        let mut stack: Vec<(usize, usize)> = self.roots.iter().map(|&root| (root, 1)).collect();
        while let Some((index, depth)) = stack.pop() {
            deepest = deepest.max(depth);
            for &child in &self.nodes[index].children {
                stack.push((child, depth + 1));
            }
        }
        deepest
    }

    /// End-to-end duration: first request to the last observation
    /// (response end, or request time for unanswered spans).
    pub fn total_duration_us(&self) -> Micros {
        let start = self.nodes.iter().map(|n| n.record.start_us).min();
        let end = self.nodes.iter().map(SpanNode::effective_end).max();
        match (start, end) {
            (Some(start), Some(end)) => end.saturating_sub(start),
            _ => 0,
        }
    }

    /// The chain of spans that bounded end-to-end completion time: at
    /// each level, the child that finished last (an unanswered child
    /// counts as last — the caller waited on it until giving up).
    /// Under an injected Delay, the faulted hop sits on this path.
    /// Returns node indices from the slowest root downwards.
    pub fn critical_path(&self) -> Vec<usize> {
        let slowest_root = self
            .roots
            .iter()
            .copied()
            .max_by_key(|&root| self.nodes[root].effective_end());
        let Some(mut current) = slowest_root else {
            return Vec::new();
        };
        let mut path = vec![current];
        loop {
            // An unanswered span has no observed end; rank it after
            // every answered sibling.
            let rank = |index: usize| match self.nodes[index].record.end_us() {
                Some(end) => (0u8, end),
                None => (1u8, self.nodes[index].record.start_us),
            };
            match self.nodes[current]
                .children
                .iter()
                .copied()
                .max_by_key(|&c| rank(c))
            {
                Some(next) => {
                    path.push(next);
                    current = next;
                }
                None => return path,
            }
        }
    }

    /// Groups the children of `index` by destination edge and
    /// classifies each group as retries (sequential) or a parallel
    /// fan-out (overlapping).
    pub fn child_groups(&self, index: usize) -> Vec<ChildGroup> {
        let mut groups: Vec<ChildGroup> = Vec::new();
        for &child in &self.nodes[index].children {
            let record = &self.nodes[child].record;
            match groups.iter_mut().find(|g| g.dst == record.dst) {
                Some(group) => group.spans.push(child),
                None => groups.push(ChildGroup {
                    dst: record.dst.clone(),
                    kind: CallKind::Single,
                    spans: vec![child],
                }),
            }
        }
        for group in &mut groups {
            group.spans.sort_by_key(|&i| self.nodes[i].record.start_us);
            if group.spans.len() < 2 {
                continue;
            }
            // Retries run back-to-back: each attempt starts at or
            // after the previous one's observed end (an unanswered
            // attempt was abandoned, so anything after it counts as
            // sequential). Any overlap makes the group parallel.
            let sequential =
                group
                    .spans
                    .windows(2)
                    .all(|pair| match self.nodes[pair[0]].record.end_us() {
                        Some(end) => self.nodes[pair[1]].record.start_us >= end,
                        None => true,
                    });
            group.kind = if sequential {
                CallKind::Retry
            } else {
                CallKind::Parallel
            };
        }
        groups
    }

    /// Compact statistics for this flow.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            request_id: self.request_id.clone(),
            spans: self.nodes.len(),
            depth: self.depth(),
            duration_us: self.total_duration_us(),
            faulted_spans: self
                .nodes
                .iter()
                .filter(|n| n.record.fault.is_some())
                .count(),
            failed_spans: self.nodes.iter().filter(|n| n.record.failed()).count(),
        }
    }

    /// Renders the tree as an ASCII waterfall: one line per span,
    /// indented by causal depth, with a proportional time bar
    /// (`=` observed lifetime, `-` open-ended), latency, status and
    /// any applied fault.
    pub fn waterfall(&self) -> String {
        const BAR: usize = 32;
        let mut out = format!(
            "trace {} ({} span(s), depth {}, {:?} total)\n",
            self.request_id,
            self.nodes.len(),
            self.depth(),
            Duration::from_micros(self.total_duration_us())
        );
        if self.nodes.is_empty() {
            return out;
        }
        let t0 = self
            .nodes
            .iter()
            .map(|n| n.record.start_us)
            .min()
            .unwrap_or(0);
        let total = self.total_duration_us().max(1);

        // Pre-order walk, tracking depth; collect labels first so the
        // bars line up in one column.
        let mut order: Vec<(usize, usize)> = Vec::new();
        let mut stack: Vec<(usize, usize)> =
            self.roots.iter().rev().map(|&root| (root, 0)).collect();
        while let Some((index, depth)) = stack.pop() {
            order.push((index, depth));
            for &child in self.nodes[index].children.iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        let labels: Vec<String> = order
            .iter()
            .map(|&(index, depth)| {
                let record = &self.nodes[index].record;
                format!(
                    "{}{} -> {} {}",
                    "  ".repeat(depth),
                    record.src,
                    record.dst,
                    record.call
                )
            })
            .collect();
        let label_width = labels.iter().map(String::len).max().unwrap_or(0);

        for (&(index, _), label) in order.iter().zip(&labels) {
            let record = &self.nodes[index].record;
            let offset = ((record.start_us - t0) as u128 * BAR as u128 / total as u128) as usize;
            let offset = offset.min(BAR - 1);
            let mut bar = vec![b' '; BAR];
            match record.latency_us {
                Some(latency) => {
                    let len = ((latency as u128 * BAR as u128) / total as u128) as usize;
                    let len = len.clamp(1, BAR - offset);
                    bar[offset..offset + len].fill(b'=');
                }
                None => {
                    // No observed end: the span runs off the chart.
                    bar[offset..].fill(b'-');
                }
            }
            let bar = String::from_utf8(bar).expect("ascii bar");
            let timing = match record.latency_us {
                Some(latency) => format!("{:?}", Duration::from_micros(latency)),
                None => "...".to_string(),
            };
            let status = match record.status {
                Some(0) => "RST".to_string(),
                Some(status) => status.to_string(),
                None => "-".to_string(),
            };
            let mut line = format!("{label:<label_width$} |{bar}| {timing:>9} {status}");
            if let Some(fault) = &record.fault {
                line.push_str(&format!(" [gremlin: {fault}]"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SpanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.waterfall())
    }
}

/// Per-experiment trace statistics, aggregated over every flow in an
/// event store. Attached to recipe reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceDigest {
    /// Number of distinct request flows observed.
    pub flows: usize,
    /// Total spans across all flows.
    pub spans: usize,
    /// Spans touched by an injected fault, across all flows.
    pub faulted_spans: usize,
    /// The flow with the longest end-to-end duration.
    pub slowest: Option<TraceSummary>,
    /// The flow with the deepest causal chain.
    pub deepest: Option<TraceSummary>,
}

impl TraceDigest {
    /// Builds the digest by assembling the span tree of every request
    /// ID in `store`.
    pub fn from_store(store: &EventStore) -> TraceDigest {
        let mut digest = TraceDigest {
            flows: 0,
            spans: 0,
            faulted_spans: 0,
            slowest: None,
            deepest: None,
        };
        for request_id in store.request_ids() {
            let summary = SpanTree::from_store(store, request_id.as_str()).summary();
            digest.flows += 1;
            digest.spans += summary.spans;
            digest.faulted_spans += summary.faulted_spans;
            if digest
                .slowest
                .as_ref()
                .map(|s| summary.duration_us > s.duration_us)
                .unwrap_or(true)
            {
                digest.slowest = Some(summary.clone());
            }
            if digest
                .deepest
                .as_ref()
                .map(|d| summary.depth > d.depth)
                .unwrap_or(true)
            {
                digest.deepest = Some(summary);
            }
        }
        digest
    }
}

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} flow(s), {} span(s), {} faulted",
            self.flows, self.spans, self.faulted_spans
        )?;
        if let Some(slowest) = &self.slowest {
            write!(f, "; slowest {slowest}")?;
        }
        if let Some(deepest) = &self.deepest {
            write!(f, "; deepest {deepest}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn store() -> Arc<EventStore> {
        EventStore::shared()
    }

    fn request(s: &Arc<EventStore>, src: &str, dst: &str, ts: Micros) {
        s.record_event(
            Event::request(src, dst, "GET", "/x")
                .with_request_id("test-1")
                .with_timestamp(ts),
        );
    }

    fn response(s: &Arc<EventStore>, src: &str, dst: &str, status: u16, ts: Micros, ms: u64) {
        let mut event =
            Event::response(src, dst, status, Duration::from_millis(ms)).with_request_id("test-1");
        event.timestamp_us = ts;
        s.record_event(event);
    }

    #[test]
    fn reconstructs_simple_chain() {
        let s = store();
        request(&s, "user", "web", 0);
        request(&s, "web", "db", 100);
        response(&s, "web", "db", 200, 200, 1);
        response(&s, "user", "web", 200, 300, 3);
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops.len(), 2);
        assert_eq!(trace.hops[0].src, "user");
        assert_eq!(trace.hops[0].status, Some(200));
        assert_eq!(trace.hops[1].dst, "db");
        assert!(!trace.has_failures());
        assert!(!trace.was_faulted());
        // First request at t=0; the user->web hop completes at
        // 0 + 3ms latency = 3ms.
        assert_eq!(trace.total_duration(), Duration::from_millis(3));
    }

    #[test]
    fn retries_become_separate_hops() {
        let s = store();
        for attempt in 0..3u64 {
            request(&s, "a", "b", attempt * 100);
            response(&s, "a", "b", 503, attempt * 100 + 50, 1);
        }
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.attempts("a", "b"), 3);
        assert!(trace.has_failures());
        assert!(trace.hops.iter().all(|h| h.status == Some(503)));
    }

    #[test]
    fn unanswered_request_has_no_status() {
        let s = store();
        request(&s, "a", "b", 0);
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops.len(), 1);
        assert_eq!(trace.hops[0].status, None);
        assert!(trace.has_failures());
    }

    #[test]
    fn faults_are_surfaced() {
        let s = store();
        request(&s, "a", "b", 0);
        let mut event = Event::response("a", "b", 0, Duration::from_millis(1))
            .with_request_id("test-1")
            .with_fault(AppliedFault::AbortReset);
        event.timestamp_us = 10;
        s.record_event(event);
        let trace = FlowTrace::from_store(&s, "test-1");
        assert!(trace.was_faulted());
        assert!(trace.hops[0].failed());
        let text = trace.to_string();
        assert!(text.contains("connection reset"));
        assert!(text.contains("gremlin: abort(reset)"));
    }

    #[test]
    fn orphan_response_is_kept() {
        let s = store();
        response(&s, "a", "b", 200, 5, 1);
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops.len(), 1);
        assert_eq!(trace.hops[0].call, "(request not observed)");
    }

    #[test]
    fn responses_pair_fifo_per_edge() {
        let s = store();
        request(&s, "a", "b", 0);
        request(&s, "a", "b", 10);
        response(&s, "a", "b", 500, 20, 1); // pairs with the first
        response(&s, "a", "b", 200, 30, 1); // pairs with the second
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops[0].status, Some(500));
        assert_eq!(trace.hops[1].status, Some(200));
    }

    #[test]
    fn empty_flow() {
        let s = store();
        let trace = FlowTrace::from_store(&s, "test-none");
        assert!(trace.hops.is_empty());
        assert!(!trace.has_failures());
        assert_eq!(trace.total_duration(), Duration::ZERO);
    }

    #[test]
    fn other_flows_are_excluded() {
        let s = store();
        request(&s, "a", "b", 0);
        s.record_event(
            Event::request("a", "b", "GET", "/other")
                .with_request_id("test-2")
                .with_timestamp(1),
        );
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops.len(), 1);
    }

    #[test]
    fn duration_falls_back_to_last_observation() {
        let s = store();
        // Root request never answered; a child completes, but a later
        // response observation (the child's response event at t=5000)
        // is the last thing the log shows.
        request(&s, "user", "web", 0);
        request(&s, "web", "db", 100);
        response(&s, "web", "db", 200, 5_000, 1);
        let trace = FlowTrace::from_store(&s, "test-1");
        // Latency-derived end would be 100us + 1ms = 1100us; the
        // fallback stretches to the last observed timestamp.
        assert_eq!(trace.total_duration(), Duration::from_micros(5_000));
    }

    // --- span trees --------------------------------------------------

    fn spanned_request(
        s: &Arc<EventStore>,
        src: &str,
        dst: &str,
        ts: Micros,
        span: &str,
        parent: Option<&str>,
    ) {
        let mut event = Event::request(src, dst, "GET", "/x")
            .with_request_id("test-1")
            .with_timestamp(ts)
            .with_span_id(span);
        if let Some(parent) = parent {
            event = event.with_parent_id(parent);
        }
        s.record_event(event);
    }

    fn spanned_response(
        s: &Arc<EventStore>,
        src: &str,
        dst: &str,
        status: u16,
        ts: Micros,
        ms: u64,
        span: &str,
    ) {
        let mut event = Event::response(src, dst, status, Duration::from_millis(ms))
            .with_request_id("test-1")
            .with_span_id(span);
        event.timestamp_us = ts;
        s.record_event(event);
    }

    #[test]
    fn span_tree_nests_by_parent_ids() {
        let s = store();
        spanned_request(&s, "user", "web", 0, "s1", None);
        spanned_request(&s, "web", "db", 100, "s2", Some("s1"));
        spanned_request(&s, "web", "cache", 150, "s3", Some("s1"));
        spanned_response(&s, "web", "cache", 200, 250, 0, "s3");
        spanned_response(&s, "web", "db", 200, 1_100, 1, "s2");
        spanned_response(&s, "user", "web", 200, 2_000, 2, "s1");
        let tree = SpanTree::from_store(&s, "test-1");
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.nodes[tree.roots[0]];
        assert_eq!(root.record.dst.as_str(), "web");
        assert_eq!(root.children.len(), 2);
        assert!(!root.inferred_parent);
        assert_eq!(tree.depth(), 2);
        assert!(tree
            .nodes
            .iter()
            .filter(|n| n.parent.is_some())
            .all(|n| !n.inferred_parent));
    }

    #[test]
    fn span_tree_infers_parents_for_legacy_events() {
        // No span IDs anywhere: nesting must come from timestamps and
        // the call graph (web -> db starts inside user -> web).
        let s = store();
        request(&s, "user", "web", 0);
        request(&s, "web", "db", 100);
        response(&s, "web", "db", 200, 1_100, 1);
        response(&s, "user", "web", 200, 3_000, 3);
        let tree = SpanTree::from_store(&s, "test-1");
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.depth(), 2);
        let child = tree
            .nodes
            .iter()
            .find(|n| n.record.dst.as_str() == "db")
            .unwrap();
        assert!(child.inferred_parent);
        assert_eq!(tree.nodes[child.parent.unwrap()].record.dst.as_str(), "web");
    }

    #[test]
    fn retries_classified_as_sequential_same_edge() {
        let s = store();
        spanned_request(&s, "user", "web", 0, "root", None);
        // Three sequential attempts of web -> db under the root; the
        // first two fail, the third succeeds.
        spanned_request(&s, "web", "db", 100, "t1", Some("root"));
        spanned_response(&s, "web", "db", 503, 1_100, 1, "t1");
        spanned_request(&s, "web", "db", 2_000, "t2", Some("root"));
        spanned_response(&s, "web", "db", 503, 3_000, 1, "t2");
        spanned_request(&s, "web", "db", 4_000, "t3", Some("root"));
        spanned_response(&s, "web", "db", 200, 5_000, 1, "t3");
        spanned_response(&s, "user", "web", 200, 6_000, 6, "root");
        let tree = SpanTree::from_store(&s, "test-1");
        let groups = tree.child_groups(tree.roots[0]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].kind, CallKind::Retry);
        assert_eq!(groups[0].spans.len(), 3);
    }

    #[test]
    fn fan_out_classified_as_parallel() {
        let s = store();
        spanned_request(&s, "user", "web", 0, "root", None);
        // Two overlapping calls on the same edge: a fan-out, not a
        // retry.
        spanned_request(&s, "web", "db", 100, "p1", Some("root"));
        spanned_request(&s, "web", "db", 200, "p2", Some("root"));
        spanned_response(&s, "web", "db", 200, 1_100, 1, "p1");
        spanned_response(&s, "web", "db", 200, 1_200, 1, "p2");
        spanned_response(&s, "user", "web", 200, 2_000, 2, "root");
        let tree = SpanTree::from_store(&s, "test-1");
        let groups = tree.child_groups(tree.roots[0]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].kind, CallKind::Parallel);
    }

    #[test]
    fn critical_path_finds_delayed_hop() {
        let s = store();
        spanned_request(&s, "user", "web", 0, "s1", None);
        // Fast sibling.
        spanned_request(&s, "web", "cache", 100, "s2", Some("s1"));
        spanned_response(&s, "web", "cache", 200, 300, 0, "s2");
        // Slow sibling, delayed by Gremlin: it bounds the flow.
        s.record_event(
            Event::request("web", "db", "GET", "/x")
                .with_request_id("test-1")
                .with_timestamp(100)
                .with_span_id("s3")
                .with_parent_id("s1")
                .with_fault(AppliedFault::Delay { delay_us: 50_000 }),
        );
        spanned_response(&s, "web", "db", 200, 51_000, 50, "s3");
        spanned_response(&s, "user", "web", 200, 52_000, 52, "s1");
        let tree = SpanTree::from_store(&s, "test-1");
        let path = tree.critical_path();
        assert_eq!(path.len(), 2);
        assert_eq!(tree.nodes[path[0]].record.dst.as_str(), "web");
        assert_eq!(tree.nodes[path[1]].record.dst.as_str(), "db");
        assert!(tree.nodes[path[1]].record.fault.is_some());
    }

    #[test]
    fn critical_path_prefers_unanswered_child() {
        let s = store();
        spanned_request(&s, "user", "web", 0, "s1", None);
        spanned_request(&s, "web", "cache", 100, "s2", Some("s1"));
        spanned_response(&s, "web", "cache", 200, 300, 0, "s2");
        // db never answered: the caller waited on it.
        spanned_request(&s, "web", "db", 100, "s3", Some("s1"));
        let tree = SpanTree::from_store(&s, "test-1");
        let path = tree.critical_path();
        assert_eq!(tree.nodes[*path.last().unwrap()].record.dst.as_str(), "db");
    }

    #[test]
    fn interleaved_flows_sharing_an_edge_stay_separate() {
        let s = store();
        // Two concurrent flows crossing the same a -> b edge,
        // interleaved in time; each tree must only see its own spans.
        for (id, span, base) in [("flow-1", "x1", 0u64), ("flow-2", "x2", 5u64)] {
            s.record_event(
                Event::request("a", "b", "GET", "/x")
                    .with_request_id(id)
                    .with_timestamp(base)
                    .with_span_id(span),
            );
        }
        for (id, span, ts) in [("flow-2", "x2", 40u64), ("flow-1", "x1", 60u64)] {
            let mut event = Event::response("a", "b", 200, Duration::from_micros(30))
                .with_request_id(id)
                .with_span_id(span);
            event.timestamp_us = ts;
            s.record_event(event);
        }
        let one = SpanTree::from_store(&s, "flow-1");
        let two = SpanTree::from_store(&s, "flow-2");
        assert_eq!(one.len(), 1);
        assert_eq!(two.len(), 1);
        assert_eq!(one.nodes[0].record.span_id.as_deref(), Some("x1"));
        assert_eq!(two.nodes[0].record.span_id.as_deref(), Some("x2"));
        assert_eq!(one.nodes[0].record.status, Some(200));
    }

    #[test]
    fn missing_responses_leave_open_spans() {
        let s = store();
        spanned_request(&s, "user", "web", 0, "s1", None);
        spanned_request(&s, "web", "db", 100, "s2", Some("s1"));
        let tree = SpanTree::from_store(&s, "test-1");
        assert_eq!(tree.len(), 2);
        assert!(tree.nodes.iter().all(|n| n.record.failed()));
        assert_eq!(tree.depth(), 2);
        // The waterfall renders open spans without panicking.
        let art = tree.waterfall();
        assert!(art.contains("..."), "waterfall: {art}");
    }

    #[test]
    fn waterfall_renders_bars_and_faults() {
        let s = store();
        spanned_request(&s, "user", "web", 0, "s1", None);
        s.record_event(
            Event::request("web", "db", "GET", "/x")
                .with_request_id("test-1")
                .with_timestamp(100)
                .with_span_id("s2")
                .with_parent_id("s1")
                .with_fault(AppliedFault::Delay { delay_us: 10_000 }),
        );
        spanned_response(&s, "web", "db", 200, 11_000, 10, "s2");
        spanned_response(&s, "user", "web", 200, 12_000, 12, "s1");
        let tree = SpanTree::from_store(&s, "test-1");
        let art = tree.waterfall();
        assert!(art.contains("user -> web"), "waterfall: {art}");
        assert!(art.contains("  web -> db"), "indented child: {art}");
        assert!(art.contains('='), "bars: {art}");
        assert!(art.contains("[gremlin: delay"), "fault: {art}");
        assert!(art.contains("200"));
    }

    #[test]
    fn summary_and_digest_aggregate() {
        let s = store();
        spanned_request(&s, "user", "web", 0, "s1", None);
        spanned_request(&s, "web", "db", 100, "s2", Some("s1"));
        spanned_response(&s, "web", "db", 503, 1_100, 1, "s2");
        spanned_response(&s, "user", "web", 200, 3_000, 3, "s1");
        // A second, shallow flow.
        s.record_event(
            Event::request("user", "web", "GET", "/y")
                .with_request_id("test-2")
                .with_timestamp(0)
                .with_span_id("z1"),
        );
        let tree = SpanTree::from_store(&s, "test-1");
        let summary = tree.summary();
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.depth, 2);
        assert_eq!(summary.duration_us, 3_000);
        assert_eq!(summary.failed_spans, 1);

        let digest = TraceDigest::from_store(&s);
        assert_eq!(digest.flows, 2);
        assert_eq!(digest.spans, 3);
        assert_eq!(digest.slowest.as_ref().unwrap().request_id, "test-1");
        assert_eq!(digest.deepest.as_ref().unwrap().depth, 2);
        assert!(digest.to_string().contains("2 flow(s)"));
    }
}

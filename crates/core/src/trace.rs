//! Flow reconstruction: assembling the end-to-end path of one request
//! ID from the observation logs.
//!
//! The paper leans on request-ID propagation (§4.1, citing Dapper and
//! Zipkin) to confine faults to flows; the same IDs let us rebuild
//! what actually happened to a request after a test — which hops it
//! took, where it was faulted, where time was spent. Recipe authors
//! use this when an assertion fails and they want the why.

use std::fmt;
use std::time::Duration;

use gremlin_store::{AppliedFault, Event, EventStore, Micros, Pattern, Query};

/// One caller→callee hop of a flow: a request observation paired with
/// the matching response (if one was observed).
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// Calling service.
    pub src: String,
    /// Called service.
    pub dst: String,
    /// When the request was observed.
    pub requested_at: Micros,
    /// Method and URI of the request.
    pub call: String,
    /// Response status (`None` when no response was observed, `0`
    /// for TCP-level failures).
    pub status: Option<u16>,
    /// Caller-observed latency of the response.
    pub latency: Option<Duration>,
    /// Fault applied on this hop, if any.
    pub fault: Option<AppliedFault>,
}

impl Hop {
    /// Returns `true` when the hop ended in a failure (no response,
    /// TCP reset, or a 5xx).
    pub fn failed(&self) -> bool {
        match self.status {
            None | Some(0) => true,
            Some(status) => (500..600).contains(&status),
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} {}", self.src, self.dst, self.call)?;
        match self.status {
            Some(0) => write!(f, " => connection reset")?,
            Some(status) => write!(f, " => {status}")?,
            None => write!(f, " => (no response observed)")?,
        }
        if let Some(latency) = self.latency {
            write!(f, " in {latency:?}")?;
        }
        if let Some(fault) = &self.fault {
            write!(f, " [gremlin: {fault}]")?;
        }
        Ok(())
    }
}

/// The reconstructed path of one request ID through the application.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowTrace {
    /// The flow's request ID.
    pub request_id: String,
    /// Hops in request-time order.
    pub hops: Vec<Hop>,
}

impl FlowTrace {
    /// Rebuilds the flow for `request_id` from `store`.
    ///
    /// Requests are paired with responses per edge in order —
    /// retries of the same edge become separate hops, matching how
    /// the agent logged them.
    pub fn from_store(store: &EventStore, request_id: &str) -> FlowTrace {
        let events = store.query(
            &Query::new().with_id_pattern(Pattern::Exact(request_id.to_string())),
        );
        FlowTrace::from_events(request_id, &events)
    }

    /// Rebuilds a flow from pre-fetched, time-sorted events.
    pub fn from_events(request_id: &str, events: &[Event]) -> FlowTrace {
        let mut hops: Vec<Hop> = Vec::new();
        // Pending request hops per edge awaiting their response, as
        // indices into `hops` (FIFO per edge: responses pair with the
        // oldest outstanding request on that edge).
        let mut pending: Vec<usize> = Vec::new();
        for event in events {
            match &event.kind {
                gremlin_store::EventKind::Request { method, uri } => {
                    hops.push(Hop {
                        src: event.src.to_string(),
                        dst: event.dst.to_string(),
                        requested_at: event.timestamp_us,
                        call: format!("{method} {uri}"),
                        status: None,
                        latency: None,
                        fault: event.fault.clone(),
                    });
                    pending.push(hops.len() - 1);
                }
                gremlin_store::EventKind::Response { status, .. } => {
                    let slot = pending
                        .iter()
                        .position(|&index| {
                            hops[index].src == event.src && hops[index].dst == event.dst
                        });
                    match slot {
                        Some(position) => {
                            let index = pending.remove(position);
                            let hop = &mut hops[index];
                            hop.status = Some(*status);
                            hop.latency = event.observed_latency();
                            if hop.fault.is_none() {
                                hop.fault = event.fault.clone();
                            }
                        }
                        None => {
                            // A response with no recorded request
                            // (e.g. log loss): surface it as its own
                            // hop rather than dropping it.
                            hops.push(Hop {
                                src: event.src.to_string(),
                                dst: event.dst.to_string(),
                                requested_at: event.timestamp_us,
                                call: "(request not observed)".to_string(),
                                status: Some(*status),
                                latency: event.observed_latency(),
                                fault: event.fault.clone(),
                            });
                        }
                    }
                }
            }
        }
        hops.sort_by_key(|hop| hop.requested_at);
        FlowTrace {
            request_id: request_id.to_string(),
            hops,
        }
    }

    /// Returns `true` when any hop failed.
    pub fn has_failures(&self) -> bool {
        self.hops.iter().any(Hop::failed)
    }

    /// Returns `true` when any hop was touched by Gremlin.
    pub fn was_faulted(&self) -> bool {
        self.hops.iter().any(|hop| hop.fault.is_some())
    }

    /// Number of hops on edge `(src, dst)` — e.g. retries of one
    /// call.
    pub fn attempts(&self, src: &str, dst: &str) -> usize {
        self.hops
            .iter()
            .filter(|hop| hop.src == src && hop.dst == dst)
            .count()
    }

    /// Total caller-observed time of the flow, from first request to
    /// the end of the latest response.
    pub fn total_duration(&self) -> Duration {
        let Some(first) = self.hops.first() else {
            return Duration::ZERO;
        };
        let start = first.requested_at;
        let end = self
            .hops
            .iter()
            .map(|hop| {
                hop.requested_at
                    + hop.latency.map(|l| l.as_micros() as Micros).unwrap_or(0)
            })
            .max()
            .unwrap_or(start);
        Duration::from_micros(end.saturating_sub(start))
    }
}

impl fmt::Display for FlowTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flow {} ({} hop(s), {:?} total)",
            self.request_id,
            self.hops.len(),
            self.total_duration()
        )?;
        for hop in &self.hops {
            writeln!(f, "  {hop}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn store() -> Arc<EventStore> {
        EventStore::shared()
    }

    fn request(s: &Arc<EventStore>, src: &str, dst: &str, ts: Micros) {
        s.record_event(
            Event::request(src, dst, "GET", "/x")
                .with_request_id("test-1")
                .with_timestamp(ts),
        );
    }

    fn response(s: &Arc<EventStore>, src: &str, dst: &str, status: u16, ts: Micros, ms: u64) {
        let mut event = Event::response(src, dst, status, Duration::from_millis(ms))
            .with_request_id("test-1");
        event.timestamp_us = ts;
        s.record_event(event);
    }

    #[test]
    fn reconstructs_simple_chain() {
        let s = store();
        request(&s, "user", "web", 0);
        request(&s, "web", "db", 100);
        response(&s, "web", "db", 200, 200, 1);
        response(&s, "user", "web", 200, 300, 3);
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops.len(), 2);
        assert_eq!(trace.hops[0].src, "user");
        assert_eq!(trace.hops[0].status, Some(200));
        assert_eq!(trace.hops[1].dst, "db");
        assert!(!trace.has_failures());
        assert!(!trace.was_faulted());
        // First request at t=0; the user->web hop completes at
        // 0 + 3ms latency = 3ms.
        assert_eq!(trace.total_duration(), Duration::from_millis(3));
    }

    #[test]
    fn retries_become_separate_hops() {
        let s = store();
        for attempt in 0..3u64 {
            request(&s, "a", "b", attempt * 100);
            response(&s, "a", "b", 503, attempt * 100 + 50, 1);
        }
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.attempts("a", "b"), 3);
        assert!(trace.has_failures());
        assert!(trace.hops.iter().all(|h| h.status == Some(503)));
    }

    #[test]
    fn unanswered_request_has_no_status() {
        let s = store();
        request(&s, "a", "b", 0);
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops.len(), 1);
        assert_eq!(trace.hops[0].status, None);
        assert!(trace.has_failures());
    }

    #[test]
    fn faults_are_surfaced() {
        let s = store();
        request(&s, "a", "b", 0);
        let mut event = Event::response("a", "b", 0, Duration::from_millis(1))
            .with_request_id("test-1")
            .with_fault(AppliedFault::AbortReset);
        event.timestamp_us = 10;
        s.record_event(event);
        let trace = FlowTrace::from_store(&s, "test-1");
        assert!(trace.was_faulted());
        assert!(trace.hops[0].failed());
        let text = trace.to_string();
        assert!(text.contains("connection reset"));
        assert!(text.contains("gremlin: abort(reset)"));
    }

    #[test]
    fn orphan_response_is_kept() {
        let s = store();
        response(&s, "a", "b", 200, 5, 1);
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops.len(), 1);
        assert_eq!(trace.hops[0].call, "(request not observed)");
    }

    #[test]
    fn responses_pair_fifo_per_edge() {
        let s = store();
        request(&s, "a", "b", 0);
        request(&s, "a", "b", 10);
        response(&s, "a", "b", 500, 20, 1); // pairs with the first
        response(&s, "a", "b", 200, 30, 1); // pairs with the second
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops[0].status, Some(500));
        assert_eq!(trace.hops[1].status, Some(200));
    }

    #[test]
    fn empty_flow() {
        let s = store();
        let trace = FlowTrace::from_store(&s, "test-none");
        assert!(trace.hops.is_empty());
        assert!(!trace.has_failures());
        assert_eq!(trace.total_duration(), Duration::ZERO);
    }

    #[test]
    fn other_flows_are_excluded() {
        let s = store();
        request(&s, "a", "b", 0);
        s.record_event(
            Event::request("a", "b", "GET", "/other")
                .with_request_id("test-2")
                .with_timestamp(1),
        );
        let trace = FlowTrace::from_store(&s, "test-1");
        assert_eq!(trace.hops.len(), 1);
    }
}

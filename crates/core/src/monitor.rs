//! Live assertion monitoring: streaming evaluation of the checker
//! vocabulary while the experiment is still running.
//!
//! The paper's Assertion Checker (§4.2) is post-hoc: a recipe stages
//! an outage, waits, then queries the full observation store. The
//! [`LiveMonitor`] here is the streaming counterpart. It consumes
//! events incrementally (via
//! [`HealthMonitor`](gremlin_store::HealthMonitor), which itself uses
//! only [`EventStore::events_after`](gremlin_store::EventStore::events_after)
//! — never full-store scans), folds them into per-assertion window
//! accumulators, and closes **event-time windows** as timestamps
//! advance past the window boundary.
//!
//! Each streaming assertion ([`StreamingAssertion`]) carries a
//! verdict state machine:
//!
//! ```text
//! Pending ──▶ Passing ◀──▶ Failing ──▶ Violated   (final)
//! ```
//!
//! * `Pending` — no window with relevant observations has closed yet.
//! * `Passing` / `Failing` — the latest closed window's outcome;
//!   assertions may recover (`Failing → Passing`).
//! * `Violated` — terminal. Reached after
//!   [`MonitorSpec::violate_after`] *consecutive* failing windows, or
//!   immediately for unrecoverable breaches (a request budget or a
//!   cumulative status count exceeded can never un-exceed).
//!
//! Every verdict transition is recorded as an [`AlertEvent`]; recipes
//! subscribe via [`LiveMonitor::violated`] to abort early, and the
//! collector streams the same alerts over `GET /alerts`.
//!
//! Window semantics: windows are measured in *event time* (agent
//! timestamps), so replaying a recorded log yields the same verdict
//! sequence a live run produced. Windows only close when an event
//! with a timestamp past the boundary arrives — a completely silent
//! store closes no windows. Late events (clock skew between agents)
//! fold into the currently open window.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use gremlin_store::{EdgeBaseline, EdgeHealth, Event, EventStore, HealthMonitor, Micros};
use gremlin_telemetry::{Counter, Gauge, HistogramSnapshot, LatencyHistogram, MetricsRegistry};

use crate::anomaly::{AnomalyAlert, AnomalyConfig, AnomalyScore, AnomalyScorer, EdgeState};
use crate::checker::Check;

/// The state of one streaming assertion's verdict machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Verdict {
    /// No window with relevant observations has closed yet.
    Pending,
    /// The latest closed window satisfied the assertion.
    Passing,
    /// The latest closed window breached the assertion; recovery is
    /// still possible.
    Failing,
    /// Terminal: the assertion can no longer hold for this run.
    Violated,
}

impl Verdict {
    /// `true` for the terminal state.
    pub fn is_final(&self) -> bool {
        matches!(self, Verdict::Violated)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Pending => "pending",
            Verdict::Passing => "passing",
            Verdict::Failing => "failing",
            Verdict::Violated => "violated",
        })
    }
}

/// A streaming variant of the checker vocabulary (Table 3), evaluated
/// per event-time window instead of post-hoc over the full store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum StreamingAssertion {
    /// Windowed `HasLatencySlo`: the `quantile` of `service`'s reply
    /// latencies within each window stays at most `bound`.
    LatencySlo {
        /// Service whose replies (to upstream callers) are measured.
        service: String,
        /// Quantile in `0..=1`, e.g. `0.99`.
        quantile: f64,
        /// Upper bound on the windowed quantile.
        bound: Duration,
    },
    /// Windowed `HasTimeouts`: every reply `service` produced within
    /// the window arrived within `max_latency`.
    HasTimeouts {
        /// Service whose replies are measured.
        service: String,
        /// Upper bound on the worst reply in the window.
        max_latency: Duration,
    },
    /// The `src -> dst` request rate within each window stays at
    /// least `min_rate` requests/second (the live form of the
    /// bulkhead check's `RequestRate` bound).
    RequestRateAtLeast {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Minimum requests/second per window.
        min_rate: f64,
    },
    /// The fraction of failed replies (status 0 or 5xx) on
    /// `src -> dst` within each window stays at most `max_ratio`.
    ErrorRateAtMost {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Maximum failed fraction in `0..=1`.
        max_ratio: f64,
    },
    /// Streaming `AtMostRequests`: at most `max` requests on
    /// `src -> dst` per window. A breach is unrecoverable for the
    /// run — the verdict jumps straight to [`Verdict::Violated`].
    AtMostRequests {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Maximum requests allowed in any single window.
        max: usize,
    },
    /// Streaming `CheckStatus`, lower bound: the run eventually
    /// observes at least `count` replies with `status` on
    /// `src -> dst`. Stays `Pending` until satisfied, then flips to
    /// `Passing`; it never fails live (only the post-hoc check can).
    StatusAtLeast {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Status code to match.
        status: u16,
        /// Matches required.
        count: usize,
    },
    /// Streaming `CheckStatus`, upper bound: the run observes at most
    /// `max` replies with `status` on `src -> dst`, cumulatively.
    /// Exceeding the budget is unrecoverable — straight to
    /// [`Verdict::Violated`].
    StatusAtMost {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Status code to match.
        status: u16,
        /// Maximum matches allowed over the whole run.
        max: usize,
    },
    /// Threshold-free: the `src -> dst` edge must stay
    /// [`EdgeState::Nominal`] against its learned baseline. Requires
    /// [`MonitorSpec::anomaly`]; `Suspect` windows are `Failing`,
    /// and an edge confirmed `Anomalous` is unrecoverable — straight
    /// to [`Verdict::Violated`]. Stays `Pending` while the baseline
    /// is warming up.
    AnomalousEdge {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
    },
}

impl fmt::Display for StreamingAssertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamingAssertion::LatencySlo {
                service,
                quantile,
                bound,
            } => write!(
                f,
                "LiveLatencySlo({service}, p{:.0} <= {bound:?})",
                quantile * 100.0
            ),
            StreamingAssertion::HasTimeouts {
                service,
                max_latency,
            } => write!(f, "LiveHasTimeouts({service}, {max_latency:?})"),
            StreamingAssertion::RequestRateAtLeast { src, dst, min_rate } => {
                write!(f, "LiveRequestRate({src}, {dst}, >= {min_rate} req/s)")
            }
            StreamingAssertion::ErrorRateAtMost {
                src,
                dst,
                max_ratio,
            } => write!(f, "LiveErrorRate({src}, {dst}, <= {max_ratio})"),
            StreamingAssertion::AtMostRequests { src, dst, max } => {
                write!(f, "LiveAtMostRequests({src}, {dst}, {max})")
            }
            StreamingAssertion::StatusAtLeast {
                src,
                dst,
                status,
                count,
            } => write!(f, "LiveStatusAtLeast({src}, {dst}, {status} x{count})"),
            StreamingAssertion::StatusAtMost {
                src,
                dst,
                status,
                max,
            } => write!(f, "LiveStatusAtMost({src}, {dst}, {status} <= {max})"),
            StreamingAssertion::AnomalousEdge { src, dst } => {
                write!(f, "LiveAnomalousEdge({src} -> {dst})")
            }
        }
    }
}

fn default_violate_after() -> u32 {
    3
}

/// Configuration of a [`LiveMonitor`]: the evaluation window and the
/// streaming assertions to track — the recipe's `monitor:` stanza.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSpec {
    /// Event-time window length assertions evaluate over.
    pub window: Duration,
    /// Consecutive failing windows before a recoverable assertion
    /// escalates to [`Verdict::Violated`]. Defaults to 3.
    #[serde(default = "default_violate_after")]
    pub violate_after: u32,
    /// When set, the monitor learns per-edge baselines during warmup
    /// and scores every window ([`AnomalyScorer`]); required by
    /// [`StreamingAssertion::AnomalousEdge`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub anomaly: Option<AnomalyConfig>,
    /// Baselines from a prior run's `baselines.json` to seed the
    /// anomaly scorer with; seeded edges skip the warmup entirely
    /// (see [`AnomalyScorer::seed`]). Ignored without `anomaly`.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub seed_baselines: Vec<EdgeBaseline>,
    /// The assertions to evaluate.
    pub assertions: Vec<StreamingAssertion>,
}

impl MonitorSpec {
    /// Creates a spec with the given window, no assertions, and the
    /// default escalation threshold.
    pub fn new(window: Duration) -> MonitorSpec {
        MonitorSpec {
            window,
            violate_after: default_violate_after(),
            anomaly: None,
            seed_baselines: Vec::new(),
            assertions: Vec::new(),
        }
    }

    /// Builder-style: adds an assertion.
    pub fn assert(mut self, assertion: StreamingAssertion) -> MonitorSpec {
        self.assertions.push(assertion);
        self
    }

    /// Builder-style: enables adaptive anomaly scoring with the given
    /// configuration.
    pub fn anomaly(mut self, config: AnomalyConfig) -> MonitorSpec {
        self.anomaly = Some(config);
        self
    }

    /// Builder-style: seeds the anomaly scorer with baselines from a
    /// prior run, skipping the warmup on those edges.
    pub fn seed(mut self, baselines: Vec<EdgeBaseline>) -> MonitorSpec {
        self.seed_baselines = baselines;
        self
    }

    /// Builder-style: sets the consecutive-failing-window threshold
    /// for escalation to `Violated` (minimum 1).
    pub fn violate_after(mut self, windows: u32) -> MonitorSpec {
        self.violate_after = windows.max(1);
        self
    }
}

/// The live status of one streaming assertion — the monitor's
/// counterpart of the checker's [`Check`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveCheck {
    /// Human-readable assertion name, e.g. `LiveLatencySlo(web, p99 <= 100ms)`.
    pub name: String,
    /// Current verdict.
    pub verdict: Verdict,
    /// Supporting detail from the latest evaluated window.
    pub detail: String,
    /// Windows evaluated so far.
    pub windows: u64,
    /// Event-time timestamp of the first flip to `Failing` (or
    /// directly to `Violated`), if any.
    pub first_failing_at_us: Option<Micros>,
    /// Event-time timestamp of the flip to `Violated`, if any.
    pub violated_at_us: Option<Micros>,
}

impl LiveCheck {
    /// Collapses the live status into a post-hoc [`Check`] for recipe
    /// reports: only `Passing` counts as passed — a `Pending`
    /// assertion never saw relevant traffic, which (like the post-hoc
    /// checker's no-observation case) is inconclusive and fails.
    pub fn to_check(&self) -> Check {
        let mut details = format!("{} after {} window(s)", self.verdict, self.windows);
        if let Some(at) = self.first_failing_at_us {
            details.push_str(&format!("; first failing at {at}us"));
        }
        if let Some(at) = self.violated_at_us {
            details.push_str(&format!("; violated at {at}us"));
        }
        if !self.detail.is_empty() {
            details.push_str("; ");
            details.push_str(&self.detail);
        }
        Check {
            name: self.name.clone(),
            passed: self.verdict == Verdict::Passing,
            details,
        }
    }
}

impl fmt::Display for LiveCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} — {}", self.verdict, self.name, self.detail)
    }
}

/// One verdict transition, as streamed over `GET /alerts`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Position in the monitor's alert log (0-based, monotone).
    pub seq: u64,
    /// Event-time timestamp of the window close (or breach) that
    /// caused the transition.
    pub at_us: Micros,
    /// The assertion's name.
    pub check: String,
    /// Verdict before the transition.
    pub from: Verdict,
    /// Verdict after the transition.
    pub to: Verdict,
    /// Supporting detail for the transition.
    pub detail: String,
}

impl fmt::Display for AlertEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}us] {} {} -> {} — {}",
            self.at_us, self.check, self.from, self.to, self.detail
        )
    }
}

/// One entry of the monitor's record log: either a verdict transition
/// or an anomaly state transition. Serialized internally tagged, so
/// every `GET /alerts` NDJSON line carries a `"kind"` discriminator
/// (`"verdict"` or `"anomaly"`) alongside the entry's own fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum MonitorRecord {
    /// A streaming assertion changed verdict.
    Verdict(AlertEvent),
    /// An edge changed anomaly state.
    Anomaly(AnomalyAlert),
}

impl MonitorRecord {
    /// Position in the record log.
    pub fn seq(&self) -> u64 {
        match self {
            MonitorRecord::Verdict(alert) => alert.seq,
            MonitorRecord::Anomaly(alert) => alert.seq,
        }
    }

    /// Event-time timestamp of the transition.
    pub fn at_us(&self) -> Micros {
        match self {
            MonitorRecord::Verdict(alert) => alert.at_us,
            MonitorRecord::Anomaly(alert) => alert.at_us,
        }
    }
}

impl fmt::Display for MonitorRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorRecord::Verdict(alert) => write!(f, "{alert}"),
            MonitorRecord::Anomaly(alert) => write!(f, "{alert}"),
        }
    }
}

/// Per-assertion window accumulator.
struct Accum {
    /// Cumulative latency histogram (windowed percentiles come from
    /// snapshot deltas at window boundaries).
    latency: LatencyHistogram,
    /// Snapshot at the previous window close.
    baseline: HistogramSnapshot,
    /// Worst reply latency in the open window, microseconds.
    worst_latency_us: u64,
    /// Requests in the open window.
    requests: u64,
    /// Responses in the open window.
    responses: u64,
    /// Failed responses (status 0 or 5xx) in the open window.
    errors: u64,
    /// Cumulative status matches (for the `Status*` assertions).
    matches: u64,
}

impl Accum {
    fn new() -> Accum {
        Accum {
            latency: LatencyHistogram::new(),
            baseline: HistogramSnapshot::empty(),
            worst_latency_us: 0,
            requests: 0,
            responses: 0,
            errors: 0,
            matches: 0,
        }
    }

    /// Resets the per-window fields at a window boundary.
    fn roll(&mut self) {
        self.baseline = self.latency.snapshot();
        self.worst_latency_us = 0;
        self.requests = 0;
        self.responses = 0;
        self.errors = 0;
    }

    /// The latency distribution of the open window.
    fn window_latency(&self) -> HistogramSnapshot {
        self.latency.snapshot().delta(&self.baseline)
    }
}

struct CheckState {
    assertion: StreamingAssertion,
    name: String,
    verdict: Verdict,
    consecutive_failing: u32,
    first_failing_at_us: Option<Micros>,
    violated_at_us: Option<Micros>,
    detail: String,
    windows: u64,
    accum: Accum,
}

impl CheckState {
    fn new(assertion: StreamingAssertion) -> CheckState {
        CheckState {
            name: assertion.to_string(),
            assertion,
            verdict: Verdict::Pending,
            consecutive_failing: 0,
            first_failing_at_us: None,
            violated_at_us: None,
            detail: String::new(),
            windows: 0,
            accum: Accum::new(),
        }
    }

    /// Folds one event into the accumulator. Returns `Some(detail)`
    /// when the event itself causes an unrecoverable breach.
    fn feed(&mut self, event: &Event) -> Option<String> {
        if self.verdict.is_final() {
            return None;
        }
        match &self.assertion {
            StreamingAssertion::LatencySlo { service, .. } => {
                if event.dst.as_str() == service {
                    if let Some(latency) = event.observed_latency() {
                        self.accum.latency.record(latency);
                    }
                }
            }
            StreamingAssertion::HasTimeouts { service, .. } => {
                if event.dst.as_str() == service {
                    if let Some(latency) = event.observed_latency() {
                        self.accum.responses += 1;
                        self.accum.worst_latency_us =
                            self.accum.worst_latency_us.max(latency.as_micros() as u64);
                    }
                }
            }
            StreamingAssertion::RequestRateAtLeast { src, dst, .. } => {
                if event.kind.is_request() && event.src.as_str() == src && event.dst.as_str() == dst
                {
                    self.accum.requests += 1;
                }
            }
            StreamingAssertion::ErrorRateAtMost { src, dst, .. } => {
                if event.src.as_str() == src && event.dst.as_str() == dst {
                    if let Some(status) = event.status() {
                        self.accum.responses += 1;
                        if status == 0 || (500..600).contains(&status) {
                            self.accum.errors += 1;
                        }
                    }
                }
            }
            StreamingAssertion::AtMostRequests { src, dst, max } => {
                if event.kind.is_request() && event.src.as_str() == src && event.dst.as_str() == dst
                {
                    self.accum.requests += 1;
                    if self.accum.requests as usize > *max {
                        return Some(format!(
                            "{} request(s) in the window exceeds the budget of {max}",
                            self.accum.requests
                        ));
                    }
                }
            }
            // The anomaly scorer observes the event stream itself;
            // the check state accumulates nothing.
            StreamingAssertion::AnomalousEdge { .. } => {}
            StreamingAssertion::StatusAtLeast {
                src, dst, status, ..
            }
            | StreamingAssertion::StatusAtMost {
                src, dst, status, ..
            } => {
                if event.src.as_str() == src
                    && event.dst.as_str() == dst
                    && event.status() == Some(*status)
                {
                    self.accum.matches += 1;
                    if let StreamingAssertion::StatusAtMost { max, .. } = &self.assertion {
                        if self.accum.matches as usize > *max {
                            return Some(format!(
                                "{} replies with the status exceeds the budget of {max}",
                                self.accum.matches
                            ));
                        }
                    }
                }
            }
        }
        None
    }

    /// Evaluates the closing window, returning the window's verdict
    /// (`None` when the window held no relevant observations and the
    /// current verdict should persist).
    fn evaluate(&mut self, window: Duration) -> Option<(bool, String)> {
        let window_secs = window.as_secs_f64().max(1e-9);
        match &self.assertion {
            StreamingAssertion::LatencySlo {
                quantile, bound, ..
            } => {
                let windowed = self.accum.window_latency();
                if windowed.is_empty() {
                    return None;
                }
                let measured = windowed.percentile(*quantile).unwrap_or(Duration::ZERO);
                Some((
                    measured <= *bound,
                    format!(
                        "window p{:.0} = {measured:?} over {} replies (bound {bound:?})",
                        quantile * 100.0,
                        windowed.count()
                    ),
                ))
            }
            StreamingAssertion::HasTimeouts { max_latency, .. } => {
                if self.accum.responses == 0 {
                    return None;
                }
                let worst = Duration::from_micros(self.accum.worst_latency_us);
                Some((
                    worst <= *max_latency,
                    format!(
                        "window max latency {worst:?} over {} replies (limit {max_latency:?})",
                        self.accum.responses
                    ),
                ))
            }
            StreamingAssertion::RequestRateAtLeast { min_rate, .. } => {
                let rate = self.accum.requests as f64 / window_secs;
                Some((
                    rate >= *min_rate,
                    format!("window rate {rate:.1} req/s (min {min_rate})"),
                ))
            }
            StreamingAssertion::ErrorRateAtMost { max_ratio, .. } => {
                if self.accum.responses == 0 {
                    return None;
                }
                let ratio = self.accum.errors as f64 / self.accum.responses as f64;
                Some((
                    ratio <= *max_ratio,
                    format!(
                        "window error rate {ratio:.3} over {} replies (max {max_ratio})",
                        self.accum.responses
                    ),
                ))
            }
            StreamingAssertion::AtMostRequests { max, .. } => Some((
                true,
                format!(
                    "{} request(s) in the window (budget {max})",
                    self.accum.requests
                ),
            )),
            StreamingAssertion::StatusAtLeast { count, .. } => {
                if (self.accum.matches as usize) < *count {
                    // Not yet satisfied — stay Pending rather than
                    // alerting on an assertion only the end of the
                    // run can settle.
                    self.detail = format!(
                        "{} of {count} required status matches observed",
                        self.accum.matches
                    );
                    return None;
                }
                Some((
                    true,
                    format!("{} status matches (required {count})", self.accum.matches),
                ))
            }
            StreamingAssertion::StatusAtMost { max, .. } => Some((
                true,
                format!("{} status matches (budget {max})", self.accum.matches),
            )),
            // Scored by `MonitorInner::apply_anomaly_verdict` at each
            // window close, never through the generic evaluation.
            StreamingAssertion::AnomalousEdge { .. } => None,
        }
    }

    fn status(&self) -> LiveCheck {
        LiveCheck {
            name: self.name.clone(),
            verdict: self.verdict,
            detail: self.detail.clone(),
            windows: self.windows,
            first_failing_at_us: self.first_failing_at_us,
            violated_at_us: self.violated_at_us,
        }
    }
}

struct MonitorInner {
    violate_after: u32,
    states: Vec<CheckState>,
    window_start_us: Option<Micros>,
    clock_us: Micros,
    windows_closed: u64,
    records: Vec<MonitorRecord>,
    scorer: Option<AnomalyScorer>,
}

impl MonitorInner {
    fn transition(
        &mut self,
        index: usize,
        to: Verdict,
        at_us: Micros,
        detail: String,
        emitted: &mut Vec<AlertEvent>,
    ) {
        let state = &mut self.states[index];
        let from = state.verdict;
        state.detail.clone_from(&detail);
        if from == to {
            return;
        }
        state.verdict = to;
        if to == Verdict::Failing && state.first_failing_at_us.is_none() {
            state.first_failing_at_us = Some(at_us);
        }
        if to == Verdict::Violated {
            state.violated_at_us = Some(at_us);
            if state.first_failing_at_us.is_none() {
                state.first_failing_at_us = Some(at_us);
            }
        }
        let alert = AlertEvent {
            seq: self.records.len() as u64,
            at_us,
            check: self.states[index].name.clone(),
            from,
            to,
            detail,
        };
        self.records.push(MonitorRecord::Verdict(alert.clone()));
        emitted.push(alert);
    }

    /// Applies a scored window to an `AnomalousEdge` assertion: the
    /// edge state maps onto the verdict machine (`Nominal` passing,
    /// `Suspect` failing, `Anomalous` straight to `Violated`;
    /// `Warming` or an unseen edge stays pending).
    fn apply_anomaly_verdict(
        &mut self,
        index: usize,
        end_us: Micros,
        emitted: &mut Vec<AlertEvent>,
    ) {
        let StreamingAssertion::AnomalousEdge { src, dst } = &self.states[index].assertion else {
            return;
        };
        let score = self
            .scorer
            .as_ref()
            .and_then(|scorer| scorer.score(src, dst));
        self.states[index].windows += 1;
        let Some(score) = score else {
            self.states[index].detail = "no traffic observed on the edge yet".to_string();
            return;
        };
        if score.state == EdgeState::Warming {
            self.states[index].detail = format!(
                "warming up: learning the edge baseline ({} window(s) so far)",
                score.windows
            );
            return;
        }
        let detail = format!(
            "edge {} -> {} {}: score {:.1} (rate z {:.1}, error z {:.1}, latency z {:.1})",
            score.src,
            score.dst,
            score.state,
            score.score,
            score.rate_z,
            score.error_z,
            score.latency_z
        );
        match score.state {
            EdgeState::Warming => unreachable!("handled above"),
            EdgeState::Nominal => {
                self.states[index].consecutive_failing = 0;
                self.transition(index, Verdict::Passing, end_us, detail, emitted);
            }
            EdgeState::Suspect => {
                self.states[index].consecutive_failing += 1;
                let escalate = self.states[index].consecutive_failing >= self.violate_after;
                self.transition(index, Verdict::Failing, end_us, detail.clone(), emitted);
                if escalate {
                    let detail = format!(
                        "{detail}; {} consecutive suspect window(s)",
                        self.states[index].consecutive_failing
                    );
                    self.transition(index, Verdict::Violated, end_us, detail, emitted);
                }
            }
            EdgeState::Anomalous => {
                // A confirmed anomaly is unrecoverable for the run.
                self.transition(index, Verdict::Failing, end_us, detail.clone(), emitted);
                self.transition(index, Verdict::Violated, end_us, detail, emitted);
            }
        }
    }

    /// Closes the window ending at `end_us`: scores the anomaly
    /// window, evaluates every assertion, applies verdict transitions
    /// and the consecutive-failing escalation, and rolls the
    /// accumulators.
    fn close_window(&mut self, end_us: Micros, window: Duration, emitted: &mut Vec<AlertEvent>) {
        self.windows_closed += 1;
        if let Some(scorer) = self.scorer.as_mut() {
            for mut alert in scorer.close_window(end_us, window) {
                alert.seq = self.records.len() as u64;
                self.records.push(MonitorRecord::Anomaly(alert));
            }
        }
        for index in 0..self.states.len() {
            let state = &mut self.states[index];
            if state.verdict.is_final() {
                continue;
            }
            if matches!(state.assertion, StreamingAssertion::AnomalousEdge { .. }) {
                self.apply_anomaly_verdict(index, end_us, emitted);
                continue;
            }
            let outcome = state.evaluate(window);
            state.windows += 1;
            state.accum.roll();
            let Some((passed, detail)) = outcome else {
                continue;
            };
            if passed {
                let state = &mut self.states[index];
                state.consecutive_failing = 0;
                self.transition(index, Verdict::Passing, end_us, detail, emitted);
            } else {
                let state = &mut self.states[index];
                state.consecutive_failing += 1;
                let escalate = state.consecutive_failing >= self.violate_after;
                // A failing window flips Pending/Passing to Failing;
                // the Failing transition is recorded even when the
                // same window close escalates to Violated, so
                // subscribers see both steps of the machine.
                self.transition(index, Verdict::Failing, end_us, detail.clone(), emitted);
                if escalate {
                    let detail = format!(
                        "{detail}; {} consecutive failing window(s)",
                        self.states[index].consecutive_failing
                    );
                    self.transition(index, Verdict::Violated, end_us, detail, emitted);
                }
            }
        }
    }
}

/// Streaming assertion engine over an [`EventStore`].
///
/// Wraps a [`HealthMonitor`] (the per-edge health matrix) and
/// evaluates a [`MonitorSpec`]'s assertions per event-time window.
/// Drive it with [`LiveMonitor::poll`] — typically from the load loop
/// of a recipe or a background thread — and subscribe to verdicts via
/// [`LiveMonitor::verdicts`], [`LiveMonitor::violated`] and
/// [`LiveMonitor::alerts_after`].
pub struct LiveMonitor {
    health: HealthMonitor,
    inner: Mutex<MonitorInner>,
    alerts_total: Option<Arc<Counter>>,
    failing_gauge: Option<Arc<Gauge>>,
}

impl fmt::Debug for LiveMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("LiveMonitor")
            .field("window", &self.health.window())
            .field("checks", &inner.states.len())
            .field("windows_closed", &inner.windows_closed)
            .field("records", &inner.records.len())
            .finish()
    }
}

impl LiveMonitor {
    /// Creates a monitor over `store` evaluating `spec`, observing
    /// the stream from its beginning.
    pub fn new(store: Arc<EventStore>, spec: MonitorSpec) -> LiveMonitor {
        LiveMonitor::build(HealthMonitor::new(store, spec.window), spec)
    }

    /// Creates a monitor that only observes events recorded after
    /// this call — the recipe `monitor:` stanza uses this so earlier
    /// steps of a chained test don't leak in.
    pub fn tailing(store: Arc<EventStore>, spec: MonitorSpec) -> LiveMonitor {
        LiveMonitor::build(HealthMonitor::tailing(store, spec.window), spec)
    }

    fn build(health: HealthMonitor, spec: MonitorSpec) -> LiveMonitor {
        let MonitorSpec {
            violate_after,
            anomaly,
            seed_baselines,
            assertions,
            ..
        } = spec;
        LiveMonitor {
            health,
            inner: Mutex::new(MonitorInner {
                violate_after: violate_after.max(1),
                states: assertions.into_iter().map(CheckState::new).collect(),
                window_start_us: None,
                clock_us: 0,
                windows_closed: 0,
                records: Vec::new(),
                scorer: anomaly.map(|config| AnomalyScorer::with_baselines(config, seed_baselines)),
            }),
            alerts_total: None,
            failing_gauge: None,
        }
    }

    /// Builder-style: records alert counts and the failing-assertion
    /// gauge into `registry` (`gremlin_monitor_alerts_total`,
    /// `gremlin_monitor_checks_failing`).
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> LiveMonitor {
        self.alerts_total = Some(registry.counter(
            "gremlin_monitor_alerts_total",
            "Verdict transitions emitted by the live monitor.",
            &[],
        ));
        self.failing_gauge = Some(registry.gauge(
            "gremlin_monitor_checks_failing",
            "Streaming assertions currently failing or violated.",
            &[],
        ));
        self
    }

    /// The evaluation window length.
    pub fn window(&self) -> Duration {
        self.health.window()
    }

    /// The underlying per-edge health matrix.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Consumes newly recorded events, folds them into the edge
    /// matrix and the assertion windows, closes any completed
    /// windows, and returns the verdict transitions this poll
    /// produced.
    pub fn poll(&self) -> Vec<AlertEvent> {
        let fresh = self.health.poll();
        let mut inner = self.inner.lock();
        let records_before = inner.records.len();
        let mut emitted = Vec::new();
        let window = self.health.window();
        let window_us = (window.as_micros() as Micros).max(1);
        for event in &fresh {
            let ts = event.timestamp_us;
            inner.clock_us = inner.clock_us.max(ts);
            let start = *inner.window_start_us.get_or_insert(ts);
            if ts >= start {
                let mut start = start;
                while ts >= start + window_us {
                    start += window_us;
                    inner.close_window(start, window, &mut emitted);
                }
                inner.window_start_us = Some(start);
            }
            if let Some(scorer) = inner.scorer.as_mut() {
                scorer.observe(event);
            }
            for index in 0..inner.states.len() {
                if let Some(detail) = inner.states[index].feed(event) {
                    inner.transition(index, Verdict::Violated, ts, detail, &mut emitted);
                }
            }
        }
        self.publish(&inner, inner.records.len() - records_before);
        emitted
    }

    /// Closes the currently open (partial) window so end-of-run
    /// verdicts reflect the final stretch of traffic. Call after the
    /// last [`LiveMonitor::poll`]; recipes do this in
    /// [`RecipeRun::finish`](crate::RecipeRun::finish).
    pub fn finalize(&self) -> Vec<AlertEvent> {
        let mut inner = self.inner.lock();
        let records_before = inner.records.len();
        let mut emitted = Vec::new();
        if inner.window_start_us.is_some() {
            let end = inner.clock_us;
            inner.close_window(end, self.health.window(), &mut emitted);
            inner.window_start_us = Some(end);
        }
        self.publish(&inner, inner.records.len() - records_before);
        emitted
    }

    fn publish(&self, inner: &MonitorInner, new_records: usize) {
        if let Some(counter) = &self.alerts_total {
            counter.add(new_records as u64);
        }
        if let Some(gauge) = &self.failing_gauge {
            let failing = inner
                .states
                .iter()
                .filter(|s| matches!(s.verdict, Verdict::Failing | Verdict::Violated))
                .count();
            gauge.set(failing as i64);
        }
    }

    /// The live status of every assertion.
    pub fn verdicts(&self) -> Vec<LiveCheck> {
        self.inner
            .lock()
            .states
            .iter()
            .map(CheckState::status)
            .collect()
    }

    /// `true` once any assertion reached the terminal
    /// [`Verdict::Violated`] state — the recipe abort-early signal.
    pub fn violated(&self) -> bool {
        self.inner
            .lock()
            .states
            .iter()
            .any(|s| s.verdict.is_final())
    }

    /// Verdict alerts recorded at or after `cursor` (an index into
    /// the record log), plus the next cursor — the same contract as
    /// [`EventStore::events_after`]. Anomaly records are skipped; use
    /// [`LiveMonitor::records_after`] for the interleaved log.
    pub fn alerts_after(&self, cursor: u64) -> (Vec<AlertEvent>, u64) {
        let inner = self.inner.lock();
        let next = inner.records.len() as u64;
        let from = (cursor as usize).min(inner.records.len());
        let alerts = inner.records[from..]
            .iter()
            .filter_map(|record| match record {
                MonitorRecord::Verdict(alert) => Some(alert.clone()),
                MonitorRecord::Anomaly(_) => None,
            })
            .collect();
        (alerts, next)
    }

    /// The full record log (verdict and anomaly transitions,
    /// interleaved in the order they happened) at or after `cursor`,
    /// plus the next cursor.
    pub fn records_after(&self, cursor: u64) -> (Vec<MonitorRecord>, u64) {
        let inner = self.inner.lock();
        let next = inner.records.len() as u64;
        let from = (cursor as usize).min(inner.records.len());
        (inner.records[from..].to_vec(), next)
    }

    /// Every edge's current anomaly score (empty without
    /// [`MonitorSpec::anomaly`]).
    pub fn anomaly_scores(&self) -> Vec<AnomalyScore> {
        self.inner
            .lock()
            .scorer
            .as_ref()
            .map(|scorer| scorer.scores())
            .unwrap_or_default()
    }

    /// Every baseline the anomaly scorer currently holds — learned
    /// during this run's warmup or seeded from a prior run. The
    /// recipe machinery persists these as `baselines.json` in the
    /// flight-recorder artifact dir.
    pub fn learned_baselines(&self) -> Vec<EdgeBaseline> {
        self.inner
            .lock()
            .scorer
            .as_ref()
            .map(|scorer| scorer.baselines())
            .unwrap_or_default()
    }

    /// How many edges were seeded from prior baselines (zero without
    /// [`MonitorSpec::seed`]).
    pub fn seeded_edges(&self) -> usize {
        self.inner
            .lock()
            .scorer
            .as_ref()
            .map(|scorer| scorer.seeded_edges())
            .unwrap_or(0)
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.inner.lock().windows_closed
    }

    /// The current per-edge health matrix.
    pub fn edge_health(&self) -> Vec<EdgeHealth> {
        self.health.snapshot()
    }
}

impl gremlin_proxy::MonitorSource for LiveMonitor {
    fn refresh(&self) {
        self.poll();
    }

    fn health_json(&self) -> String {
        let edges = self.edge_health();
        let checks = self.verdicts();
        let scores = self.anomaly_scores();
        format!(
            "{{\"schema_version\":{},\"window_us\":{},\"clock_us\":{},\"edges\":{},\"checks\":{},\"scores\":{}}}",
            gremlin_proxy::HEALTH_SCHEMA_VERSION,
            self.window().as_micros(),
            self.health.clock_us(),
            serde_json::to_string(&edges).unwrap_or_else(|_| "[]".into()),
            serde_json::to_string(&checks).unwrap_or_else(|_| "[]".into()),
            serde_json::to_string(&scores).unwrap_or_else(|_| "[]".into()),
        )
    }

    fn alert_lines_after(&self, cursor: u64) -> (Vec<String>, u64) {
        let (records, next) = self.records_after(cursor);
        let lines = records
            .iter()
            .filter_map(|record| serde_json::to_string(record).ok())
            .collect();
        (lines, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_store::AppliedFault;

    fn sec(s: u64) -> Micros {
        s * 1_000_000
    }

    fn request(ts: Micros) -> Event {
        Event::request("a", "b", "GET", "/x")
            .with_request_id("test-1")
            .with_timestamp(ts)
    }

    fn reply_to(dst: &str, ts: Micros, status: u16, latency_ms: u64) -> Event {
        Event::response("a", dst, status, Duration::from_millis(latency_ms))
            .with_request_id("test-1")
            .with_timestamp(ts)
    }

    fn monitor_with(spec: MonitorSpec) -> (Arc<EventStore>, LiveMonitor) {
        let store = EventStore::shared();
        let monitor = LiveMonitor::new(Arc::clone(&store), spec);
        (store, monitor)
    }

    #[test]
    fn latency_slo_fails_then_recovers() {
        let spec =
            MonitorSpec::new(Duration::from_secs(2)).assert(StreamingAssertion::LatencySlo {
                service: "b".into(),
                quantile: 0.99,
                bound: Duration::from_millis(50),
            });
        let (store, monitor) = monitor_with(spec);

        // Window 1 ([0, 2s)): slow replies -> Failing.
        store.record_event(reply_to("b", sec(0), 200, 200));
        store.record_event(reply_to("b", sec(1), 200, 300));
        // Window 2 ([2s, 4s)): fast replies -> Passing.
        store.record_event(reply_to("b", sec(2), 200, 5));
        store.record_event(reply_to("b", sec(3), 200, 5));
        // An event past window 2 closes it.
        store.record_event(reply_to("b", sec(4), 200, 5));

        let alerts = monitor.poll();
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert_eq!(alerts[0].to, Verdict::Failing);
        assert_eq!(alerts[1].to, Verdict::Passing);
        let checks = monitor.verdicts();
        assert_eq!(checks[0].verdict, Verdict::Passing);
        assert_eq!(checks[0].first_failing_at_us, Some(sec(2)));
        assert!(!monitor.violated());
    }

    #[test]
    fn consecutive_failing_windows_escalate_to_violated() {
        let spec = MonitorSpec::new(Duration::from_secs(1))
            .violate_after(2)
            .assert(StreamingAssertion::LatencySlo {
                service: "b".into(),
                quantile: 0.5,
                bound: Duration::from_millis(10),
            });
        let (store, monitor) = monitor_with(spec);
        for s in 0..4 {
            store.record_event(reply_to("b", sec(s), 200, 100));
        }
        let alerts = monitor.poll();
        // Window 1: Failing. Window 2: still failing -> Failing
        // persists, escalation to Violated.
        assert!(monitor.violated());
        let kinds: Vec<Verdict> = alerts.iter().map(|a| a.to).collect();
        assert_eq!(
            kinds,
            vec![Verdict::Failing, Verdict::Violated],
            "{alerts:?}"
        );
        let checks = monitor.verdicts();
        assert_eq!(checks[0].verdict, Verdict::Violated);
        assert!(checks[0].violated_at_us.is_some());
        // Terminal: further windows change nothing.
        store.record_event(reply_to("b", sec(10), 200, 1));
        assert!(monitor.poll().is_empty());
    }

    #[test]
    fn at_most_requests_violates_immediately_mid_window() {
        let spec =
            MonitorSpec::new(Duration::from_secs(60)).assert(StreamingAssertion::AtMostRequests {
                src: "a".into(),
                dst: "b".into(),
                max: 2,
            });
        let (store, monitor) = monitor_with(spec);
        store.record_event(request(sec(0)));
        store.record_event(request(sec(1)));
        assert!(monitor.poll().is_empty());
        assert!(!monitor.violated());
        // The third request breaches the budget inside the window: no
        // window close needed.
        store.record_event(request(sec(2)));
        let alerts = monitor.poll();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].to, Verdict::Violated);
        assert!(monitor.violated());
        assert_eq!(monitor.verdicts()[0].violated_at_us, Some(sec(2)));
    }

    #[test]
    fn request_rate_fails_on_starved_window() {
        let spec = MonitorSpec::new(Duration::from_secs(1)).assert(
            StreamingAssertion::RequestRateAtLeast {
                src: "a".into(),
                dst: "b".into(),
                min_rate: 2.0,
            },
        );
        let (store, monitor) = monitor_with(spec);
        // Window 1: 3 requests -> 3 req/s, passing.
        for i in 0..3 {
            store.record_event(request(i * 300_000));
        }
        // Window 2: only unrelated traffic -> rate 0, failing.
        store.record_event(Event::request("a", "c", "GET", "/x").with_timestamp(sec(1) + 100_000));
        store.record_event(Event::request("a", "c", "GET", "/x").with_timestamp(sec(2) + 100_000));
        let alerts = monitor.poll();
        let kinds: Vec<Verdict> = alerts.iter().map(|a| a.to).collect();
        assert_eq!(
            kinds,
            vec![Verdict::Passing, Verdict::Failing],
            "{alerts:?}"
        );
    }

    #[test]
    fn error_rate_counts_faulted_replies() {
        let spec =
            MonitorSpec::new(Duration::from_secs(2)).assert(StreamingAssertion::ErrorRateAtMost {
                src: "a".into(),
                dst: "b".into(),
                max_ratio: 0.2,
            });
        let (store, monitor) = monitor_with(spec);
        store.record_event(reply_to("b", sec(0), 200, 1));
        store.record_event(
            reply_to("b", sec(1), 503, 1).with_fault(AppliedFault::Abort { status: 503 }),
        );
        store.record_event(reply_to("b", sec(3), 200, 1)); // closes window 1
        let alerts = monitor.poll();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].to, Verdict::Failing);
        assert!(alerts[0].detail.contains("0.5"), "{}", alerts[0].detail);
    }

    #[test]
    fn status_bounds_track_cumulative_matches() {
        let spec = MonitorSpec::new(Duration::from_secs(1))
            .assert(StreamingAssertion::StatusAtLeast {
                src: "a".into(),
                dst: "b".into(),
                status: 503,
                count: 2,
            })
            .assert(StreamingAssertion::StatusAtMost {
                src: "a".into(),
                dst: "b".into(),
                status: 503,
                max: 3,
            });
        let (store, monitor) = monitor_with(spec);
        store.record_event(reply_to("b", sec(0), 503, 1));
        store.record_event(reply_to("b", sec(2), 503, 1)); // closes window 1
        monitor.poll();
        let checks = monitor.verdicts();
        // One match at window close: at-least still pending.
        assert_eq!(checks[0].verdict, Verdict::Pending);
        assert_eq!(checks[1].verdict, Verdict::Passing);
        store.record_event(reply_to("b", sec(4), 503, 1)); // closes window 2 (2 matches)
        monitor.poll();
        assert_eq!(monitor.verdicts()[0].verdict, Verdict::Passing);
        // One more match blows the at-most budget of 3 immediately.
        store.record_event(reply_to("b", sec(5), 503, 1));
        monitor.poll();
        let checks = monitor.verdicts();
        assert_eq!(checks[1].verdict, Verdict::Violated, "{checks:?}");
        assert!(monitor.violated());
    }

    #[test]
    fn finalize_closes_the_partial_window() {
        let spec =
            MonitorSpec::new(Duration::from_secs(60)).assert(StreamingAssertion::LatencySlo {
                service: "b".into(),
                quantile: 0.5,
                bound: Duration::from_millis(10),
            });
        let (store, monitor) = monitor_with(spec);
        store.record_event(reply_to("b", sec(0), 200, 100));
        monitor.poll();
        // The 60s window never closes on its own.
        assert_eq!(monitor.verdicts()[0].verdict, Verdict::Pending);
        let alerts = monitor.finalize();
        assert_eq!(alerts.len(), 1);
        assert_eq!(monitor.verdicts()[0].verdict, Verdict::Failing);
    }

    #[test]
    fn alerts_after_pages_the_log() {
        let spec = MonitorSpec::new(Duration::from_secs(1)).assert(
            StreamingAssertion::RequestRateAtLeast {
                src: "a".into(),
                dst: "b".into(),
                min_rate: 0.5,
            },
        );
        let (store, monitor) = monitor_with(spec);
        store.record_event(request(sec(0)));
        store.record_event(request(sec(2)));
        monitor.poll();
        let (alerts, next) = monitor.alerts_after(0);
        assert!(!alerts.is_empty());
        assert_eq!(alerts[0].seq, 0);
        let (rest, next_2) = monitor.alerts_after(next);
        assert!(rest.is_empty());
        assert_eq!(next, next_2);
    }

    #[test]
    fn telemetry_records_alerts_and_failing_gauge() {
        let registry = MetricsRegistry::new();
        let store = EventStore::shared();
        let monitor = LiveMonitor::new(
            Arc::clone(&store),
            MonitorSpec::new(Duration::from_secs(1)).assert(StreamingAssertion::LatencySlo {
                service: "b".into(),
                quantile: 0.5,
                bound: Duration::from_millis(10),
            }),
        )
        .with_telemetry(&registry);
        store.record_event(reply_to("b", sec(0), 200, 100));
        store.record_event(reply_to("b", sec(2), 200, 100));
        monitor.poll();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("gremlin_monitor_alerts_total", &[]),
            Some(1)
        );
        assert_eq!(
            snap.gauge_value("gremlin_monitor_checks_failing", &[]),
            Some(1)
        );
    }

    #[test]
    fn live_check_collapses_to_post_hoc_check() {
        let check = LiveCheck {
            name: "LiveLatencySlo(b, p99 <= 10ms)".into(),
            verdict: Verdict::Failing,
            detail: "window p99 = 100ms".into(),
            windows: 3,
            first_failing_at_us: Some(123),
            violated_at_us: None,
        };
        let collapsed = check.to_check();
        assert!(!collapsed.passed);
        assert!(collapsed.details.contains("first failing at 123us"));
        let pending = LiveCheck {
            name: "x".into(),
            verdict: Verdict::Pending,
            detail: String::new(),
            windows: 0,
            first_failing_at_us: None,
            violated_at_us: None,
        };
        assert!(!pending.to_check().passed, "pending is inconclusive");
        let passing = LiveCheck {
            verdict: Verdict::Passing,
            ..pending
        };
        assert!(passing.to_check().passed);
    }

    #[test]
    fn tailing_monitor_ignores_history() {
        let store = EventStore::shared();
        store.record_event(reply_to("b", sec(0), 200, 500));
        let monitor = LiveMonitor::tailing(
            Arc::clone(&store),
            MonitorSpec::new(Duration::from_secs(1)).assert(StreamingAssertion::LatencySlo {
                service: "b".into(),
                quantile: 0.5,
                bound: Duration::from_millis(10),
            }),
        );
        store.record_event(reply_to("b", sec(10), 200, 1));
        store.record_event(reply_to("b", sec(12), 200, 1));
        monitor.poll();
        // Only the fast post-attach replies were seen: passing.
        assert_eq!(monitor.verdicts()[0].verdict, Verdict::Passing);
    }

    #[test]
    fn spec_serde_round_trips() {
        let spec = MonitorSpec::new(Duration::from_secs(5))
            .violate_after(2)
            .assert(StreamingAssertion::LatencySlo {
                service: "web".into(),
                quantile: 0.99,
                bound: Duration::from_millis(250),
            })
            .assert(StreamingAssertion::AtMostRequests {
                src: "a".into(),
                dst: "b".into(),
                max: 5,
            });
        let json = serde_json::to_string(&spec).unwrap();
        let back: MonitorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // violate_after defaults when absent.
        let minimal: MonitorSpec =
            serde_json::from_str(r#"{"window":{"secs":1,"nanos":0},"assertions":[]}"#).unwrap();
        assert_eq!(minimal.violate_after, 3);
    }

    #[test]
    fn monitor_source_json_shapes() {
        use gremlin_proxy::MonitorSource;
        let spec = MonitorSpec::new(Duration::from_secs(1)).assert(
            StreamingAssertion::RequestRateAtLeast {
                src: "a".into(),
                dst: "b".into(),
                min_rate: 0.5,
            },
        );
        let (store, monitor) = monitor_with(spec);
        store.record_event(request(sec(0)));
        store.record_event(request(sec(2)));
        monitor.refresh();
        let health = monitor.health_json();
        assert!(
            health.starts_with("{\"schema_version\":2,\"window_us\":1000000"),
            "{health}"
        );
        assert!(health.contains("\"edges\":["), "{health}");
        assert!(health.contains("\"checks\":["), "{health}");
        assert!(health.contains("\"scores\":["), "{health}");
        let parsed: serde_json::Value = serde_json::from_str(&health).unwrap();
        assert!(parsed["edges"][0]["requests"].as_u64().unwrap() >= 1);
        assert_eq!(parsed["schema_version"], 2);
        let (lines, next) = monitor.alert_lines_after(0);
        assert!(!lines.is_empty());
        assert!(next >= 1);
        let alert: serde_json::Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(alert["seq"], 0);
        assert_eq!(alert["kind"], "verdict");
    }

    #[test]
    fn anomalous_edge_assertion_tracks_the_scorer() {
        use crate::anomaly::AnomalyConfig;

        let spec = MonitorSpec::new(Duration::from_secs(1))
            .anomaly(AnomalyConfig::default().warmup_windows(2))
            .assert(StreamingAssertion::AnomalousEdge {
                src: "a".into(),
                dst: "b".into(),
            });
        let (store, monitor) = monitor_with(spec);
        // Two fault-free warmup windows at 10 req/s, 5ms.
        for w in 0..2u64 {
            for i in 0..10u64 {
                let ts = sec(w) + i * 100_000;
                store.record_event(request(ts));
                store.record_event(reply_to("b", ts + 1_000, 200, 5));
            }
        }
        store.record_event(reply_to("b", sec(2), 200, 5)); // closes warmup
        monitor.poll();
        // Baseline learned; the assertion is no longer pending.
        let scores = monitor.anomaly_scores();
        assert_eq!(scores.len(), 1, "{scores:?}");
        assert!(scores[0].baseline.is_some());

        // Two consecutive slow windows: Suspect (Failing) then
        // Anomalous (straight to Violated).
        for w in 2..4u64 {
            for i in 0..10u64 {
                let ts = sec(w) + i * 100_000;
                store.record_event(request(ts));
                store.record_event(reply_to("b", ts + 1_000, 200, 90));
            }
        }
        store.record_event(reply_to("b", sec(4) + 100_000, 200, 90));
        monitor.poll();
        assert!(monitor.violated(), "{:?}", monitor.verdicts());
        let check = &monitor.verdicts()[0];
        assert_eq!(check.verdict, Verdict::Violated);
        assert!(check.detail.contains("anomalous"), "{}", check.detail);
        let score = &monitor.anomaly_scores()[0];
        assert_eq!(score.state, crate::anomaly::EdgeState::Anomalous);
        assert!(score.first_suspect_at_us.is_some());

        // The record log interleaves verdicts and anomalies with
        // contiguous sequence numbers and tagged JSON.
        let (records, next) = monitor.records_after(0);
        assert_eq!(records.len() as u64, next);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.seq(), i as u64, "{records:?}");
        }
        assert!(records
            .iter()
            .any(|r| matches!(r, MonitorRecord::Anomaly(a) if a.to == crate::anomaly::EdgeState::Anomalous)));
        let (lines, _) = {
            use gremlin_proxy::MonitorSource;
            monitor.alert_lines_after(0)
        };
        assert!(
            lines.iter().any(|l| l.contains("\"kind\":\"anomaly\"")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("\"kind\":\"verdict\"")),
            "{lines:?}"
        );
        // The verdict-only view still pages cleanly past the mixed log.
        let (alerts, after) = monitor.alerts_after(0);
        assert_eq!(after, next);
        assert!(alerts.iter().all(|a| (a.seq as usize) < records.len()));
    }

    #[test]
    fn seeded_monitor_skips_warmup_and_matches_fresh_verdicts() {
        use crate::anomaly::AnomalyConfig;

        let spec = |seed: Vec<EdgeBaseline>| {
            MonitorSpec::new(Duration::from_secs(1))
                .anomaly(AnomalyConfig::default().warmup_windows(2))
                .seed(seed)
                .assert(StreamingAssertion::AnomalousEdge {
                    src: "a".into(),
                    dst: "b".into(),
                })
        };

        // Fresh run: two warmup windows, then the measured stream.
        let (fresh_store, fresh) = monitor_with(spec(Vec::new()));
        for w in 0..2u64 {
            for i in 0..10u64 {
                let ts = sec(w) + i * 100_000;
                fresh_store.record_event(request(ts));
                fresh_store.record_event(reply_to("b", ts + 1_000, 200, 5));
            }
        }
        fresh_store.record_event(reply_to("b", sec(2), 200, 5));
        fresh.poll();
        let baselines = fresh.learned_baselines();
        assert_eq!(baselines.len(), 1);
        assert_eq!(fresh.seeded_edges(), 0);

        // Seeded run: the same measured stream, no warmup traffic at
        // all. Both streams are two slow windows from here.
        let (seeded_store, seeded) = monitor_with(spec(baselines));
        assert_eq!(seeded.seeded_edges(), 1);
        let measured = |store: &EventStore| {
            for w in 2..4u64 {
                for i in 0..10u64 {
                    let ts = sec(w) + i * 100_000;
                    store.record_event(request(ts));
                    store.record_event(reply_to("b", ts + 1_000, 200, 90));
                }
            }
            store.record_event(reply_to("b", sec(4) + 100_000, 200, 90));
        };
        measured(&fresh_store);
        measured(&seeded_store);
        fresh.poll();
        seeded.poll();

        // Identical verdicts and identical edge states, and the
        // seeded run never warmed: no Warming state, no "baseline
        // learned" record.
        assert_eq!(
            fresh.verdicts()[0].verdict,
            seeded.verdicts()[0].verdict,
            "fresh {:?} vs seeded {:?}",
            fresh.verdicts(),
            seeded.verdicts()
        );
        assert!(seeded.violated());
        let fresh_score = &fresh.anomaly_scores()[0];
        let seeded_score = &seeded.anomaly_scores()[0];
        assert_eq!(fresh_score.state, seeded_score.state);
        assert_eq!(seeded_score.state, crate::anomaly::EdgeState::Anomalous);
        let (records, _) = seeded.records_after(0);
        assert!(
            !records.iter().any(|r| matches!(
                r,
                MonitorRecord::Anomaly(a)
                    if a.from == crate::anomaly::EdgeState::Warming
            )),
            "seeded run must not emit warmup transitions: {records:?}"
        );

        // The seed survives the spec's JSON round trip (recipe files).
        let spec_json = serde_json::to_string(&spec(fresh.learned_baselines())).unwrap();
        let back: MonitorSpec = serde_json::from_str(&spec_json).unwrap();
        assert_eq!(back.seed_baselines.len(), 1);
        // And specs without the field still parse (schema compat).
        let legacy: MonitorSpec =
            serde_json::from_str(r#"{"window":{"secs":1,"nanos":0},"assertions":[]}"#).unwrap();
        assert!(legacy.seed_baselines.is_empty());
    }

    #[test]
    fn degenerate_windows_keep_streaming_checks_finite() {
        // Zero-duration window spec: rates divide by the floored
        // window, never by zero.
        let spec =
            MonitorSpec::new(Duration::ZERO).assert(StreamingAssertion::RequestRateAtLeast {
                src: "a".into(),
                dst: "b".into(),
                min_rate: 1.0,
            });
        let (store, monitor) = monitor_with(spec);
        // Tight timestamps: the zero window is floored to 1us, and the
        // close walk advances one floored window per step.
        store.record_event(request(0));
        store.record_event(request(10));
        monitor.poll();
        monitor.finalize();
        for check in monitor.verdicts() {
            assert!(!check.detail.contains("NaN"), "{}", check.detail);
            assert!(!check.detail.contains("inf"), "{}", check.detail);
        }

        // Windows with no relevant observations leave error-rate and
        // latency verdicts untouched (no divide-by-zero evaluation).
        let spec = MonitorSpec::new(Duration::from_secs(1))
            .assert(StreamingAssertion::ErrorRateAtMost {
                src: "a".into(),
                dst: "b".into(),
                max_ratio: 0.5,
            })
            .assert(StreamingAssertion::LatencySlo {
                service: "b".into(),
                quantile: 0.99,
                bound: Duration::from_millis(10),
            });
        let (store, monitor) = monitor_with(spec);
        // Only requests (no replies): both assertions stay Pending
        // across closed windows.
        store.record_event(request(sec(0)));
        store.record_event(request(sec(5)));
        monitor.poll();
        for check in monitor.verdicts() {
            assert_eq!(check.verdict, Verdict::Pending, "{check:?}");
        }
    }
}

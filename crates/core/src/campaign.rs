//! Campaign executor: many recipes, one mesh, concurrent waves.
//!
//! Gremlin's value is *systematic* testing — sweeping a whole set of
//! failure scenarios over the dependency graph — but running each
//! recipe back-to-back pays the full wall-clock sum even when the
//! recipes touch disjoint parts of the mesh. The [`CampaignRunner`]
//! exploits the observation (FastFI-style) that fault injections on
//! non-interfering fault sites can run concurrently:
//!
//! 1. Each [`CampaignRecipe`]'s **fault-edge footprint** is computed
//!    up front: the `(src, dst)` edges its scenarios translate to
//!    over the [`AppGraph`], unioned with the edges its monitor
//!    assertions observe (service-scoped assertions claim every graph
//!    edge touching the service).
//! 2. Recipes are packed into **waves** by [`plan_waves`]: a greedy
//!    first-fit pass in input order, where a recipe joins the first
//!    wave whose members' footprints are all disjoint from its own
//!    (bounded by `max_in_flight`). Recipes with colliding footprints
//!    always land in different waves — the deterministic serial
//!    fallback.
//! 3. Waves execute in order; recipes inside a wave run on scoped
//!    threads against the same mesh, each with its own monitor and
//!    flight recording. Staged faults are cleared at every wave
//!    boundary.
//!
//! The emitted [`CampaignReport`] aggregates the per-recipe
//! [`RecipeReport`]s with the campaign's wall clock vs. the
//! sum-of-serial estimate — the realized speedup.
//!
//! # Baseline reuse
//!
//! A campaign with a [`CampaignRunner::seed`] snapshot hands prior
//! [`EdgeBaseline`]s to every monitored recipe, so anomaly scorers
//! skip their warmup windows entirely (see
//! [`AnomalyScorer::seed`](crate::AnomalyScorer::seed)); freshly
//! learned baselines are merged and persisted as `baselines.json`
//! under the campaign's flight root for the *next* campaign. Warmup
//! cost becomes per-campaign instead of per-run.
//!
//! # Sharing caveats
//!
//! Concurrent recipes share the fleet, the store and the telemetry
//! registry. Footprint disjointness keeps their *verdicts* and fault
//! rules independent, but informational output (a report's
//! `metrics_delta`, the ambient anomaly list) can include a sibling's
//! traffic. And because the control channel has no per-rule removal,
//! a recipe that aborts early clears **every** staged fault — its
//! wave siblings finish against a fault-free mesh, visible in their
//! reports.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use gremlin_store::{now_micros, EdgeBaseline, Micros};

use crate::error::CoreError;
use crate::graph::AppGraph;
use crate::ledger::{
    append_campaign_entries, cells_for_scenario, CellKey, CoverageLedger, LedgerEntry, RunOutcome,
};
use crate::monitor::{MonitorSpec, StreamingAssertion};
use crate::recipe::{RecipeReport, RecipeRun, TestContext};
use crate::scenarios::Scenario;

fn default_hold() -> Duration {
    Duration::from_secs(2)
}

/// One schedulable unit of a campaign: the scenarios to stage, an
/// optional monitor stanza, and how long to hold the faults while the
/// monitor watches. Serializable, so campaign files are plain JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRecipe {
    /// Recipe name, used in reports and flight-recording directories.
    pub name: String,
    /// Failure scenarios staged together when the recipe starts.
    pub scenarios: Vec<Scenario>,
    /// The recipe's `monitor:` stanza, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub monitor: Option<MonitorSpec>,
    /// How long the faults stay staged (the monitor polls throughout;
    /// a `Violated` assertion aborts earlier). Defaults to 2s.
    #[serde(default = "default_hold")]
    pub hold: Duration,
}

impl CampaignRecipe {
    /// Creates a recipe with no scenarios, no monitor, and the
    /// default hold.
    pub fn new(name: impl Into<String>) -> CampaignRecipe {
        CampaignRecipe {
            name: name.into(),
            scenarios: Vec::new(),
            monitor: None,
            hold: default_hold(),
        }
    }

    /// Builder-style: adds a scenario.
    pub fn scenario(mut self, scenario: Scenario) -> CampaignRecipe {
        self.scenarios.push(scenario);
        self
    }

    /// Builder-style: attaches the monitor stanza.
    pub fn monitor(mut self, spec: MonitorSpec) -> CampaignRecipe {
        self.monitor = Some(spec);
        self
    }

    /// Builder-style: sets the fault hold duration.
    pub fn hold(mut self, hold: Duration) -> CampaignRecipe {
        self.hold = hold;
        self
    }

    /// The recipe's fault-edge footprint over `graph`: every `(src,
    /// dst)` edge its scenarios inject faults on, unioned with the
    /// edges its monitor assertions observe. Two recipes with
    /// disjoint footprints neither fault nor judge each other's
    /// edges, so they can run concurrently.
    ///
    /// # Errors
    ///
    /// Scenario translation failures ([`Scenario::to_rules`]).
    pub fn footprint(&self, graph: &AppGraph) -> Result<BTreeSet<(String, String)>, CoreError> {
        let mut edges = BTreeSet::new();
        for scenario in &self.scenarios {
            for rule in scenario.to_rules(graph)? {
                edges.insert((rule.src, rule.dst));
            }
        }
        if let Some(spec) = &self.monitor {
            for assertion in &spec.assertions {
                match assertion {
                    StreamingAssertion::RequestRateAtLeast { src, dst, .. }
                    | StreamingAssertion::ErrorRateAtMost { src, dst, .. }
                    | StreamingAssertion::AtMostRequests { src, dst, .. }
                    | StreamingAssertion::StatusAtLeast { src, dst, .. }
                    | StreamingAssertion::StatusAtMost { src, dst, .. }
                    | StreamingAssertion::AnomalousEdge { src, dst } => {
                        edges.insert((src.clone(), dst.clone()));
                    }
                    StreamingAssertion::LatencySlo { service, .. }
                    | StreamingAssertion::HasTimeouts { service, .. } => {
                        // Service-scoped: claim every graph edge
                        // touching the service, in either direction.
                        for (src, dst) in graph.edges() {
                            if src == *service || dst == *service {
                                edges.insert((src, dst));
                            }
                        }
                    }
                }
            }
        }
        Ok(edges)
    }
}

/// A campaign file: the recipes plus scheduling knobs. The JSON input
/// of `gremlin campaign`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Maximum recipes in flight per wave (default
    /// [`DEFAULT_MAX_IN_FLIGHT`]; 1 forces serial execution).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_in_flight: Option<usize>,
    /// The recipes, in scheduling order.
    pub recipes: Vec<CampaignRecipe>,
}

/// Default cap on concurrently running recipes per wave.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 4;

/// Ledger flakiness at or above which a cell counts as flaky for
/// steered wave ordering (see [`CampaignRunner::steer_order`]).
pub const STEER_FLAKY_THRESHOLD: f64 = 0.25;

/// Packs recipe indices into execution waves: greedy first-fit in
/// input order, where index `i` joins the first wave that has fewer
/// than `max_in_flight` members and whose members' footprints are all
/// disjoint from `footprints[i]`. Every index appears in exactly one
/// wave; intersecting footprints never share a wave, so two recipes
/// that fault or observe the same edge serialize deterministically.
pub fn plan_waves(
    footprints: &[BTreeSet<(String, String)>],
    max_in_flight: usize,
) -> Vec<Vec<usize>> {
    let max_in_flight = max_in_flight.max(1);
    let mut waves: Vec<Vec<usize>> = Vec::new();
    for (index, footprint) in footprints.iter().enumerate() {
        let slot = waves.iter_mut().find(|wave| {
            wave.len() < max_in_flight
                && wave
                    .iter()
                    .all(|&other| footprints[other].is_disjoint(footprint))
        });
        match slot {
            Some(wave) => wave.push(index),
            None => waves.push(vec![index]),
        }
    }
    waves
}

/// Steered scheduling priority for one recipe, lower first: `0` when
/// any of its coverage cells is untested (not in `covered`), `1` when
/// any is flaky per the ledger, `2` when everything it touches is
/// stable.
pub(crate) fn steer_priority(
    recipe: &CampaignRecipe,
    ledger: Option<&CoverageLedger>,
    covered: &BTreeSet<CellKey>,
) -> u8 {
    let mut priority = 2u8;
    for scenario in &recipe.scenarios {
        for cell in cells_for_scenario(scenario) {
            if !covered.contains(&cell) {
                return 0;
            }
            let flaky = ledger
                .and_then(|ledger| ledger.cell(&cell))
                .is_some_and(|stats| stats.flakiness >= STEER_FLAKY_THRESHOLD);
            if flaky {
                priority = 1;
            }
        }
    }
    priority
}

/// What one recipe execution yielded, beyond its report.
///
/// This is the unit of work a distributed-campaign operator streams
/// back to the coordinating host (see [`crate::dispatch`]), so it is
/// fully serializable: the coordinator merges remote outcomes through
/// the same aggregation path the single-host runner uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecipeOutcome {
    /// The recipe's complete report (checks, live verdicts, anomaly
    /// scores, metrics delta, trace digest).
    pub report: RecipeReport,
    /// Wall-clock cost of the run, summed into the campaign's serial
    /// estimate.
    pub duration: Duration,
    /// Wall-clock micros when the run started.
    pub started_at_us: Micros,
    /// Structured scenarios staged during the run, in injection order
    /// (the source of the outcome's coverage cells).
    pub scenarios: Vec<Scenario>,
    /// Edges whose anomaly scorer was seeded from prior baselines
    /// (non-zero means the run skipped its warmup windows).
    pub seeded_edges: usize,
    /// Per-edge baselines learned during the run.
    pub baselines: Vec<EdgeBaseline>,
}

impl RecipeOutcome {
    /// The coverage-ledger entry this outcome contributes. Built only
    /// from a finished run (`RecipeRun::finish` has resolved the final
    /// monitor verdict), so a ledger never records a provisional
    /// outcome.
    pub fn ledger_entry(&self) -> LedgerEntry {
        LedgerEntry {
            recipe: self.report.name.clone(),
            started_at_us: self.started_at_us,
            outcome: RunOutcome::of_report(&self.report),
            scenarios: self.scenarios.clone(),
            flight_dir: self.report.flight_dir.clone(),
        }
    }
}

/// Runs one recipe over `ctx`: attach (and seed) the monitor, stage
/// the scenarios, hold the faults while polling for violations, and
/// finish. Inject and driver failures become failed checks in the
/// recipe's report, not panics — a broken recipe fails itself, never
/// its campaign. Shared by [`CampaignRunner`] and distributed operator
/// workers ([`crate::dispatch::OperatorServer`]).
pub fn execute_recipe(
    ctx: &TestContext,
    recipe: &CampaignRecipe,
    seed_baselines: &[EdgeBaseline],
    flight_root: Option<&Path>,
) -> RecipeOutcome {
    let started = Instant::now();
    let started_at_us = now_micros();
    let mut run = RecipeRun::new(recipe.name.clone(), ctx);
    let mut seeded_edges = 0;
    if let Some(spec) = &recipe.monitor {
        let mut spec = spec.clone();
        if spec.anomaly.is_some() && spec.seed_baselines.is_empty() {
            spec.seed_baselines = seed_baselines.to_vec();
        }
        run.start_monitor(spec);
        seeded_edges = run.monitor().map_or(0, |m| m.seeded_edges());
        if let Some(root) = flight_root {
            // Best-effort, like RecipeRun's own detach-on-error
            // policy: a full disk degrades the artifact, not the
            // experiment.
            let _ = run.start_flight_recorder(root);
        }
    }
    let mut staged = true;
    for scenario in &recipe.scenarios {
        if let Err(err) = run.inject(scenario) {
            run.check(crate::checker::Check {
                name: format!("inject {scenario}"),
                passed: false,
                details: err.to_string(),
            });
            staged = false;
            break;
        }
    }
    if staged {
        let deadline = started + recipe.hold;
        loop {
            match run.abort_if_violated() {
                Ok(true) => break,
                Ok(false) => {}
                Err(err) => {
                    run.check(crate::checker::Check {
                        name: "abort staged faults".to_string(),
                        passed: false,
                        details: err.to_string(),
                    });
                    break;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
        }
    }
    let baselines = run
        .monitor()
        .map_or_else(Vec::new, |m| m.learned_baselines());
    let report = run.finish();
    RecipeOutcome {
        report,
        duration: started.elapsed(),
        started_at_us,
        scenarios: recipe.scenarios.clone(),
        seeded_edges,
        baselines,
    }
}

/// Runs a footprint-disjoint batch of recipes concurrently on scoped
/// threads (a single-recipe batch runs inline), returning outcomes
/// aligned with `recipes`. The caller owns the wave-boundary fault
/// clear.
pub(crate) fn execute_wave(
    ctx: &TestContext,
    recipes: &[CampaignRecipe],
    seed_baselines: &[EdgeBaseline],
    flight_root: Option<&Path>,
) -> Vec<RecipeOutcome> {
    if let [recipe] = recipes {
        return vec![execute_recipe(ctx, recipe, seed_baselines, flight_root)];
    }
    let slots: Vec<Mutex<Option<RecipeOutcome>>> =
        recipes.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..recipes.len() {
            scope.spawn(|| {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                *slots[slot].lock() = Some(execute_recipe(
                    ctx,
                    &recipes[slot],
                    seed_baselines,
                    flight_root,
                ));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every recipe ran"))
        .collect()
}

/// Merges per-recipe outcomes into the final [`CampaignReport`] — the
/// single aggregation path shared by the single-host runner and the
/// distributed coordinator, so a merged multi-operator report is
/// identical in shape and content to a single-host one.
pub(crate) fn assemble_report(
    outcomes: Vec<RecipeOutcome>,
    waves: Vec<Vec<String>>,
    steered: bool,
    wall_clock: Duration,
    seed_baselines: &[EdgeBaseline],
    prior_covered: &BTreeSet<CellKey>,
) -> CampaignReport {
    let mut reports = Vec::with_capacity(outcomes.len());
    let mut durations = Vec::with_capacity(outcomes.len());
    let mut flight_dirs = Vec::with_capacity(outcomes.len());
    let mut newly_covered: BTreeSet<CellKey> = BTreeSet::new();
    let mut warmup_skipped = 0;
    let mut merged: BTreeMap<(String, String), EdgeBaseline> = BTreeMap::new();
    for baseline in seed_baselines.iter().cloned() {
        merged.insert((baseline.src.clone(), baseline.dst.clone()), baseline);
    }
    for outcome in outcomes {
        if outcome.seeded_edges > 0 {
            warmup_skipped += 1;
        }
        for baseline in outcome.baselines {
            merged.insert((baseline.src.clone(), baseline.dst.clone()), baseline);
        }
        for scenario in &outcome.scenarios {
            for cell in cells_for_scenario(scenario) {
                if !prior_covered.contains(&cell) {
                    newly_covered.insert(cell);
                }
            }
        }
        flight_dirs.push(outcome.report.flight_dir.clone());
        durations.push(outcome.duration);
        reports.push(outcome.report);
    }
    let serial_estimate = durations.iter().sum();
    CampaignReport {
        recipes: reports,
        durations,
        waves,
        steered,
        wall_clock,
        serial_estimate,
        warmup_skipped,
        baselines: merged.into_values().collect(),
        flight_dirs,
        newly_covered: newly_covered.into_iter().collect(),
    }
}

/// Best-effort persistence of a campaign's merged baselines as
/// `baselines.json` under the flight root — the snapshot the next
/// campaign seeds from. Per-run dirs already carry their own copies,
/// so failures degrade a convenience, not the experiment.
pub(crate) fn persist_merged_baselines(root: &Path, baselines: &[EdgeBaseline]) {
    if baselines.is_empty() {
        return;
    }
    let _ = fs::create_dir_all(root);
    let _ = serde_json::to_string_pretty(baselines)
        .map_err(std::io::Error::from)
        .and_then(|json| fs::write(root.join("baselines.json"), json));
}

/// Runs a set of recipes as a campaign: footprint-disjoint recipes
/// concurrently (waves), colliding ones serially, with optional
/// flight recording and cross-run baseline reuse.
///
/// # Examples
///
/// ```no_run
/// use gremlin_core::campaign::{CampaignRecipe, CampaignRunner};
/// use gremlin_core::{AppGraph, Scenario, TestContext};
/// use gremlin_store::EventStore;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let agents = Vec::new();
/// let graph = AppGraph::from_edges(vec![("web", "db"), ("web", "cache")]);
/// let ctx = TestContext::new(graph, agents, EventStore::shared());
/// let report = CampaignRunner::new(&ctx)
///     .max_in_flight(2)
///     .run(vec![
///         CampaignRecipe::new("db-crash")
///             .scenario(Scenario::crash("db"))
///             .hold(Duration::from_secs(1)),
///         CampaignRecipe::new("cache-slow")
///             .scenario(Scenario::delay("web", "cache", Duration::from_millis(80)))
///             .hold(Duration::from_secs(1)),
///     ])?;
/// println!("{report}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CampaignRunner<'a> {
    ctx: &'a TestContext,
    max_in_flight: usize,
    flight_root: Option<PathBuf>,
    seed_baselines: Vec<EdgeBaseline>,
    steer_order: bool,
}

impl<'a> CampaignRunner<'a> {
    /// Creates a runner over `ctx` with the default wave width and no
    /// flight recording.
    pub fn new(ctx: &'a TestContext) -> CampaignRunner<'a> {
        CampaignRunner {
            ctx,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            flight_root: None,
            seed_baselines: Vec::new(),
            steer_order: false,
        }
    }

    /// Builder-style: reorders the planned waves by coverage-ledger
    /// priority before executing. Waves containing a recipe that
    /// touches an **untested** cell run first, waves touching a
    /// **flaky** cell (ledger flakiness ≥ [`STEER_FLAKY_THRESHOLD`])
    /// next, all-stable waves last; ties keep the planner's order.
    /// Wave *membership* is untouched — only execution order moves —
    /// so footprint disjointness still holds. Without a readable
    /// ledger under the flight root every cell counts as untested and
    /// the order is unchanged.
    pub fn steer_order(mut self, steer: bool) -> CampaignRunner<'a> {
        self.steer_order = steer;
        self
    }

    /// Builder-style: caps concurrently running recipes per wave
    /// (minimum 1; 1 reproduces strict serial execution).
    pub fn max_in_flight(mut self, max_in_flight: usize) -> CampaignRunner<'a> {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Builder-style: monitored recipes record flight artifacts under
    /// `root`, and the campaign writes its merged `baselines.json`
    /// there for the next run to [`CampaignRunner::seed`] from.
    pub fn flight_root(mut self, root: impl Into<PathBuf>) -> CampaignRunner<'a> {
        self.flight_root = Some(root.into());
        self
    }

    /// Builder-style: seeds every monitored recipe's anomaly scorer
    /// with baselines from a prior run (typically
    /// [`load_baselines`](crate::flight::load_baselines) of the last
    /// campaign's flight root) — seeded edges skip their warmup
    /// windows. A recipe whose spec carries its own
    /// `seed_baselines` keeps them.
    pub fn seed(mut self, baselines: Vec<EdgeBaseline>) -> CampaignRunner<'a> {
        self.seed_baselines = baselines;
        self
    }

    /// Executes the recipes: plans waves from their footprints, runs
    /// each wave's recipes on scoped threads, clears staged faults at
    /// every wave boundary, and aggregates the reports.
    ///
    /// # Errors
    ///
    /// Footprint computation failures (scenario translation) before
    /// anything runs; agent failures from the wave-boundary clear.
    /// Failures *inside* a recipe (inject errors, violated
    /// assertions) fail that recipe's report, not the campaign.
    pub fn run(&self, recipes: Vec<CampaignRecipe>) -> Result<CampaignReport, CoreError> {
        let graph = self.ctx.graph();
        let footprints = recipes
            .iter()
            .map(|recipe| recipe.footprint(graph))
            .collect::<Result<Vec<_>, CoreError>>()?;
        let mut waves = plan_waves(&footprints, self.max_in_flight);

        // Coverage delta: what the ledger under the flight root had
        // already covered before this campaign ran. Best-effort — an
        // unreadable root just means every cell this campaign touches
        // counts as newly covered.
        let ledger: Option<CoverageLedger> = self
            .flight_root
            .as_ref()
            .and_then(|root| CoverageLedger::scan_with_telemetry(root, self.ctx.telemetry()).ok());
        let prior_covered: BTreeSet<CellKey> = ledger
            .as_ref()
            .map(CoverageLedger::covered_keys)
            .unwrap_or_default();

        if self.steer_order {
            let priorities: Vec<u8> = recipes
                .iter()
                .map(|recipe| steer_priority(recipe, ledger.as_ref(), &prior_covered))
                .collect();
            waves.sort_by_key(|wave| {
                wave.iter()
                    .map(|&index| priorities[index])
                    .min()
                    .unwrap_or(u8::MAX)
            });
        }
        let wave_names: Vec<Vec<String>> = waves
            .iter()
            .map(|wave| wave.iter().map(|&i| recipes[i].name.clone()).collect())
            .collect();

        let started = Instant::now();
        let mut recipes: Vec<Option<CampaignRecipe>> = recipes.into_iter().map(Some).collect();
        let mut outcomes: Vec<Option<RecipeOutcome>> = Vec::new();
        outcomes.resize_with(recipes.len(), || None);
        for (wave_index, wave) in waves.iter().enumerate() {
            self.ctx.annotate(
                "wave-begin",
                &format!(
                    "wave {}: {}",
                    wave_index + 1,
                    wave_names[wave_index].join(", ")
                ),
            );
            let batch: Vec<CampaignRecipe> = wave
                .iter()
                .map(|&index| recipes[index].take().expect("each index runs once"))
                .collect();
            let wave_outcomes = execute_wave(
                self.ctx,
                &batch,
                &self.seed_baselines,
                self.flight_root.as_deref(),
            );
            // The wave's verdicts are final (every run has finished and
            // resolved its monitor), so its ledger entries are appended
            // *now* — after verdict resolution, before the fallible
            // wave-boundary clear below. A campaign that dies at a wave
            // boundary keeps every completed wave in `campaigns.jsonl`,
            // and the ledger never sees a provisional outcome.
            // Best-effort, like the merged baselines snapshot. Entries
            // whose flight dir is scanned directly are deduplicated at
            // read time, so unmonitored (dirless) recipes still land in
            // the ledger without double-counting recorded ones.
            if let Some(root) = &self.flight_root {
                let entries: Vec<LedgerEntry> = wave_outcomes
                    .iter()
                    .map(RecipeOutcome::ledger_entry)
                    .collect();
                let _ = append_campaign_entries(root, &entries);
            }
            for (&index, outcome) in wave.iter().zip(wave_outcomes) {
                outcomes[index] = Some(outcome);
            }
            // Wave boundary: the control channel has no per-rule
            // removal, so the whole fleet is flushed between waves.
            self.ctx.clear_faults()?;
            self.ctx
                .annotate("wave-end", &format!("wave {}", wave_index + 1));
        }
        let wall_clock = started.elapsed();

        let outcomes: Vec<RecipeOutcome> = outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every recipe ran"))
            .collect();
        let report = assemble_report(
            outcomes,
            wave_names,
            self.steer_order,
            wall_clock,
            &self.seed_baselines,
            &prior_covered,
        );
        if let Some(root) = &self.flight_root {
            persist_merged_baselines(root, &report.baselines);
        }
        Ok(report)
    }
}

/// The aggregate outcome of a campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-recipe reports, in the campaign's input order.
    pub recipes: Vec<RecipeReport>,
    /// Per-recipe wall-clock durations, aligned with `recipes`.
    pub durations: Vec<Duration>,
    /// The executed schedule: recipe names per wave, in execution
    /// order (ledger-steered when `steered` is set).
    pub waves: Vec<Vec<String>>,
    /// Whether the wave order was steered by coverage-ledger priority
    /// ([`CampaignRunner::steer_order`]).
    pub steered: bool,
    /// Campaign wall clock, wave starts to last wave end.
    pub wall_clock: Duration,
    /// Sum of the per-recipe durations — what strict serial execution
    /// would have cost.
    pub serial_estimate: Duration,
    /// Recipes whose anomaly scorer was seeded from prior baselines
    /// (and therefore skipped its warmup windows).
    pub warmup_skipped: usize,
    /// The merged per-edge baselines after this campaign: seeds
    /// overlaid with everything freshly learned. Persisted as
    /// `baselines.json` under the flight root, when one is set.
    pub baselines: Vec<EdgeBaseline>,
    /// Each recipe's flight-recorder artifact directory, aligned with
    /// `recipes` (`None` for unmonitored or unrecorded recipes).
    pub flight_dirs: Vec<Option<PathBuf>>,
    /// Coverage-cube cells this campaign exercised that no prior run
    /// under the flight root had covered (everything it touched, when
    /// no flight root was set).
    pub newly_covered: Vec<CellKey>,
}

impl CampaignReport {
    /// `true` when every recipe passed.
    pub fn passed(&self) -> bool {
        self.recipes.iter().all(|report| report.passed)
    }

    /// Realized speedup: the serial estimate over the wall clock
    /// (1.0 for a degenerate, instant campaign).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_clock.as_secs_f64();
        let serial = self.serial_estimate.as_secs_f64();
        if wall <= 0.0 || serial <= 0.0 {
            1.0
        } else {
            serial / wall
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} recipe(s) in {} wave(s){} — wall clock {:?} vs {:?} serial ({:.1}x), {} warmup(s) skipped",
            self.recipes.len(),
            self.waves.len(),
            if self.steered { " (steered order)" } else { "" },
            self.wall_clock,
            self.serial_estimate,
            self.speedup(),
            self.warmup_skipped,
        )?;
        for (wave_index, wave) in self.waves.iter().enumerate() {
            writeln!(f, "  wave {}: {}", wave_index + 1, wave.join(", "))?;
        }
        for (index, (report, duration)) in self.recipes.iter().zip(&self.durations).enumerate() {
            write!(
                f,
                "  [{}] {} ({:?})",
                if report.passed { "PASS" } else { "FAIL" },
                report.name,
                duration,
            )?;
            if let Some(Some(dir)) = self.flight_dirs.get(index) {
                write!(f, " -> {}", dir.display())?;
            }
            writeln!(f)?;
        }
        if !self.newly_covered.is_empty() {
            writeln!(
                f,
                "  coverage: {} cell(s) newly covered",
                self.newly_covered.len(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyConfig;
    use crate::monitor::MonitorSpec;
    use gremlin_proxy::{AgentControl, ProxyError, Rule};
    use gremlin_store::EventStore;
    use std::sync::Arc;

    /// In-memory agent recording installed rules.
    struct FakeAgent {
        service: String,
        rules: Mutex<Vec<Rule>>,
    }

    impl FakeAgent {
        fn new(service: &str) -> Arc<FakeAgent> {
            Arc::new(FakeAgent {
                service: service.to_string(),
                rules: Mutex::new(Vec::new()),
            })
        }
    }

    impl AgentControl for FakeAgent {
        fn service_name(&self) -> String {
            self.service.clone()
        }

        fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
            self.rules.lock().extend(rules.iter().cloned());
            Ok(())
        }

        fn clear_rules(&self) -> Result<(), ProxyError> {
            self.rules.lock().clear();
            Ok(())
        }

        fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
            Ok(self.rules.lock().clone())
        }
    }

    fn edge_set(edges: &[(&str, &str)]) -> BTreeSet<(String, String)> {
        edges
            .iter()
            .map(|(s, d)| (s.to_string(), d.to_string()))
            .collect()
    }

    fn fan_ctx(pairs: &[(&str, &str)]) -> (TestContext, Vec<Arc<FakeAgent>>) {
        let graph = AppGraph::from_edges(pairs.to_vec());
        let agents: Vec<Arc<FakeAgent>> =
            pairs.iter().map(|(src, _)| FakeAgent::new(src)).collect();
        let ctx = TestContext::new(
            graph,
            agents
                .iter()
                .map(|a| Arc::clone(a) as Arc<dyn AgentControl>)
                .collect(),
            EventStore::shared(),
        );
        (ctx, agents)
    }

    #[test]
    fn footprint_unions_scenario_rules_and_assertion_scopes() {
        let graph = AppGraph::from_edges(vec![("a", "b"), ("a", "c"), ("c", "d")]);
        let recipe = CampaignRecipe::new("r")
            .scenario(Scenario::abort("a", "b", 503))
            .monitor(
                MonitorSpec::new(Duration::from_secs(1))
                    .assert(StreamingAssertion::ErrorRateAtMost {
                        src: "a".into(),
                        dst: "c".into(),
                        max_ratio: 0.1,
                    })
                    .assert(StreamingAssertion::LatencySlo {
                        service: "c".into(),
                        quantile: 0.99,
                        bound: Duration::from_millis(100),
                    }),
            );
        let footprint = recipe.footprint(&graph).unwrap();
        // abort edge + assertion edge + every edge touching service c.
        assert_eq!(footprint, edge_set(&[("a", "b"), ("a", "c"), ("c", "d")]));
    }

    #[test]
    fn plan_waves_packs_disjoint_and_serializes_collisions() {
        let footprints = vec![
            edge_set(&[("a", "b")]),
            edge_set(&[("c", "d")]), // disjoint from 0 -> same wave
            edge_set(&[("a", "b")]), // collides with 0 -> new wave
            edge_set(&[("e", "f")]), // disjoint from all -> first wave
        ];
        let waves = plan_waves(&footprints, 4);
        assert_eq!(waves, vec![vec![0, 1, 3], vec![2]]);
        // max_in_flight bounds wave width.
        let waves = plan_waves(&footprints, 2);
        assert_eq!(waves, vec![vec![0, 1], vec![2, 3]]);
        // max_in_flight 1 is strict serial in input order.
        let waves = plan_waves(&footprints, 1);
        assert_eq!(waves, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn campaign_runs_disjoint_recipes_concurrently() {
        let pairs = [("c1", "s1"), ("c2", "s2"), ("c3", "s3"), ("c4", "s4")];
        let (ctx, agents) = fan_ctx(&pairs);
        let hold = Duration::from_millis(150);
        let recipes: Vec<CampaignRecipe> = pairs
            .iter()
            .map(|(src, dst)| {
                CampaignRecipe::new(format!("{src}-{dst}"))
                    .scenario(Scenario::abort(*src, *dst, 503))
                    .hold(hold)
            })
            .collect();
        let report = CampaignRunner::new(&ctx)
            .max_in_flight(4)
            .run(recipes)
            .unwrap();
        assert_eq!(report.waves.len(), 1, "{:?}", report.waves);
        assert_eq!(report.recipes.len(), 4);
        assert!(report.passed(), "{report}");
        // Concurrency: four 150ms holds in one wave finish well under
        // the 600ms serial estimate.
        assert!(
            report.wall_clock < hold * 3,
            "wall {:?} vs serial {:?}",
            report.wall_clock,
            report.serial_estimate,
        );
        assert!(report.serial_estimate >= hold * 4);
        assert!(report.speedup() > 1.5, "{}", report.speedup());
        // Wave boundary cleared the fleet.
        for agent in &agents {
            assert!(agent.rules.lock().is_empty());
        }
        let text = report.to_string();
        assert!(text.contains("wave 1:"), "{text}");
        assert!(text.contains("[PASS]"), "{text}");
    }

    #[test]
    fn colliding_recipes_serialize_into_waves() {
        let (ctx, _) = fan_ctx(&[("a", "b")]);
        let hold = Duration::from_millis(40);
        let recipes = vec![
            CampaignRecipe::new("first")
                .scenario(Scenario::abort("a", "b", 503))
                .hold(hold),
            CampaignRecipe::new("second")
                .scenario(Scenario::delay("a", "b", Duration::from_millis(10)))
                .hold(hold),
        ];
        let report = CampaignRunner::new(&ctx).run(recipes).unwrap();
        assert_eq!(
            report.waves,
            vec![vec!["first".to_string()], vec!["second".to_string()]]
        );
        assert!(report.wall_clock >= hold * 2);
    }

    #[test]
    fn inject_failure_fails_the_recipe_not_the_campaign() {
        // The scenario translates (the edge exists) but cannot
        // install: no agent fronts "a" in this context.
        let lonely = TestContext::new(
            AppGraph::from_edges(vec![("a", "b")]),
            Vec::new(),
            EventStore::shared(),
        );
        let report = CampaignRunner::new(&lonely)
            .run(vec![CampaignRecipe::new("no-agent")
                .scenario(Scenario::abort("a", "b", 503))
                .hold(Duration::from_millis(10))])
            .unwrap();
        assert_eq!(report.recipes.len(), 1);
        assert!(!report.passed());
        assert!(!report.recipes[0].checks[0].passed);
        assert!(
            report.recipes[0].checks[0].name.starts_with("inject"),
            "{:?}",
            report.recipes[0].checks
        );
    }

    #[test]
    fn campaign_translation_error_fails_fast() {
        let (ctx, agents) = fan_ctx(&[("a", "b")]);
        let err = CampaignRunner::new(&ctx)
            .run(vec![
                CampaignRecipe::new("ghost").scenario(Scenario::abort("nope", "b", 503))
            ])
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownService(_)), "{err}");
        assert!(agents[0].rules.lock().is_empty(), "nothing was staged");
    }

    #[test]
    fn seeded_campaign_skips_warmup_and_persists_baselines() {
        let pairs = [("c1", "s1"), ("c2", "s2")];
        let hold = Duration::from_millis(60);
        let window = Duration::from_millis(10);
        let recipes = |seedless: bool| -> Vec<CampaignRecipe> {
            pairs
                .iter()
                .map(|(src, dst)| {
                    CampaignRecipe::new(format!("{src}-{dst}{}", if seedless { "" } else { "-2" }))
                        .scenario(Scenario::delay(*src, *dst, Duration::from_millis(1)))
                        .monitor(
                            MonitorSpec::new(window)
                                .anomaly(AnomalyConfig::default().warmup_windows(2)),
                        )
                        .hold(hold)
                })
                .collect()
        };
        let root =
            std::env::temp_dir().join(format!("gremlin-campaign-seed-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);

        // First campaign: drive traffic so baselines are learned.
        let (ctx, _) = fan_ctx(&pairs);
        let store = Arc::clone(ctx.store());
        let feeder = std::thread::spawn(move || {
            for w in 0..8u64 {
                for (src, dst) in pairs {
                    for i in 0..5u64 {
                        let ts = w * 10_000 + i * 2_000;
                        store.record_event(
                            gremlin_store::Event::request(src, dst, "GET", "/x").with_timestamp(ts),
                        );
                        store.record_event(
                            gremlin_store::Event::response(src, dst, 200, Duration::from_millis(2))
                                .with_timestamp(ts + 500),
                        );
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let first = CampaignRunner::new(&ctx)
            .flight_root(&root)
            .run(recipes(true))
            .unwrap();
        feeder.join().unwrap();
        assert_eq!(first.warmup_skipped, 0);
        assert!(!first.baselines.is_empty(), "baselines learned");
        let persisted = crate::flight::load_baselines(&root).unwrap();
        assert_eq!(persisted, first.baselines);

        // Second campaign: seeded from the persisted snapshot, every
        // monitored recipe skips its warmup.
        let (ctx2, _) = fan_ctx(&pairs);
        let second = CampaignRunner::new(&ctx2)
            .seed(persisted)
            .run(recipes(false))
            .unwrap();
        assert_eq!(second.warmup_skipped, 2, "{second}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn campaign_appends_ledger_entries_and_reports_coverage_delta() {
        let pairs = [("w1", "d1")];
        let (ctx, _) = fan_ctx(&pairs);
        let root =
            std::env::temp_dir().join(format!("gremlin-campaign-ledger-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let recipe = |name: &str| {
            CampaignRecipe::new(name)
                .scenario(Scenario::abort("w1", "d1", 503))
                .hold(Duration::from_millis(10))
        };

        let first = CampaignRunner::new(&ctx)
            .flight_root(&root)
            .run(vec![recipe("first")])
            .unwrap();
        assert_eq!(first.flight_dirs, vec![None], "unmonitored: no flight dir");
        assert_eq!(first.newly_covered.len(), 1, "{:?}", first.newly_covered);
        let text = first.to_string();
        assert!(text.contains("coverage: 1 cell(s) newly covered"), "{text}");
        let ledger = CoverageLedger::scan(&root).unwrap();
        assert_eq!(ledger.runs_scanned(), 1);
        assert_eq!(ledger.covered_cells(), 1);

        // Same cell again: the appended entry made it "covered", so
        // the second campaign reports no delta.
        let second = CampaignRunner::new(&ctx)
            .flight_root(&root)
            .run(vec![recipe("second")])
            .unwrap();
        assert!(
            second.newly_covered.is_empty(),
            "{:?}",
            second.newly_covered
        );
        assert!(!second.to_string().contains("coverage:"), "{second}");
        let ledger = CoverageLedger::scan(&root).unwrap();
        assert_eq!(ledger.runs_scanned(), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn aborted_campaign_keeps_completed_wave_entries_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Agent whose fault-clear starts failing after a budget of
        /// successful clears — models an operator host dying at a wave
        /// boundary.
        struct FlakyClearAgent {
            service: String,
            rules: Mutex<Vec<Rule>>,
            clears_left: AtomicUsize,
        }

        impl AgentControl for FlakyClearAgent {
            fn service_name(&self) -> String {
                self.service.clone()
            }

            fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
                self.rules.lock().extend(rules.iter().cloned());
                Ok(())
            }

            fn clear_rules(&self) -> Result<(), ProxyError> {
                let left = self.clears_left.load(Ordering::SeqCst);
                if left == 0 {
                    return Err(ProxyError::InvalidRule("control channel down".into()));
                }
                self.clears_left.store(left - 1, Ordering::SeqCst);
                self.rules.lock().clear();
                Ok(())
            }

            fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
                Ok(self.rules.lock().clone())
            }
        }

        let graph = AppGraph::from_edges(vec![("a", "b")]);
        let agent = Arc::new(FlakyClearAgent {
            service: "a".to_string(),
            rules: Mutex::new(Vec::new()),
            clears_left: AtomicUsize::new(0),
        });
        let ctx = TestContext::new(
            graph,
            vec![Arc::clone(&agent) as Arc<dyn AgentControl>],
            EventStore::shared(),
        );
        let root =
            std::env::temp_dir().join(format!("gremlin-campaign-abort-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);

        // Two colliding recipes -> two waves. The very first
        // wave-boundary clear fails, so wave 2 never runs and the
        // campaign errors out — but wave 1's verdict was already
        // final, so its ledger entry must survive, exactly once.
        let hold = Duration::from_millis(10);
        let err = CampaignRunner::new(&ctx)
            .flight_root(&root)
            .run(vec![
                CampaignRecipe::new("first")
                    .scenario(Scenario::abort("a", "b", 503))
                    .hold(hold),
                CampaignRecipe::new("second")
                    .scenario(Scenario::delay("a", "b", Duration::from_millis(1)))
                    .hold(hold),
            ])
            .unwrap_err();
        assert!(matches!(err, CoreError::AgentFailed { .. }), "{err}");

        let raw = fs::read_to_string(root.join(crate::ledger::CAMPAIGN_LEDGER_FILE)).unwrap();
        let recorded: Vec<LedgerEntry> = raw
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect();
        assert_eq!(recorded.len(), 1, "{raw}");
        assert_eq!(recorded[0].recipe, "first");
        assert_eq!(recorded[0].outcome, RunOutcome::Pass);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn steered_order_runs_untested_then_flaky_then_stable() {
        let pairs = [("a", "b"), ("c", "d"), ("e", "f")];
        let (ctx, _) = fan_ctx(&pairs);
        let root =
            std::env::temp_dir().join(format!("gremlin-campaign-steer-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();

        // Prior history: a->b stable (two passes), c->d flaky
        // (pass then assertion failure), e->f never tested.
        let entry = |name: &str, at: Micros, outcome: RunOutcome, scenario: Scenario| LedgerEntry {
            recipe: name.to_string(),
            started_at_us: at,
            outcome,
            scenarios: vec![scenario],
            flight_dir: None,
        };
        append_campaign_entries(
            &root,
            &[
                entry("h1", 1, RunOutcome::Pass, Scenario::abort("a", "b", 503)),
                entry("h2", 2, RunOutcome::Pass, Scenario::abort("a", "b", 503)),
                entry("h3", 3, RunOutcome::Pass, Scenario::abort("c", "d", 503)),
                entry(
                    "h4",
                    4,
                    RunOutcome::AssertionFailed,
                    Scenario::abort("c", "d", 503),
                ),
            ],
        )
        .unwrap();

        let recipes = || {
            vec![
                CampaignRecipe::new("stable")
                    .scenario(Scenario::abort("a", "b", 503))
                    .hold(Duration::from_millis(5)),
                CampaignRecipe::new("flaky")
                    .scenario(Scenario::abort("c", "d", 503))
                    .hold(Duration::from_millis(5)),
                CampaignRecipe::new("untested")
                    .scenario(Scenario::abort("e", "f", 503))
                    .hold(Duration::from_millis(5)),
            ]
        };

        // Unsteered: planner input order, even with the same ledger.
        let plain = CampaignRunner::new(&ctx)
            .max_in_flight(1)
            .flight_root(&root)
            .run(recipes())
            .unwrap();
        assert!(!plain.steered);
        assert_eq!(
            plain.waves,
            vec![
                vec!["stable".to_string()],
                vec!["flaky".to_string()],
                vec!["untested".to_string()],
            ]
        );
        assert!(!plain.to_string().contains("steered"), "{plain}");

        // Steered against the *original* history (rebuild it under a
        // fresh root so the first campaign's appended entries don't
        // shift priorities).
        let root2 =
            std::env::temp_dir().join(format!("gremlin-campaign-steer2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root2);
        fs::create_dir_all(&root2).unwrap();
        append_campaign_entries(
            &root2,
            &[
                entry("h1", 1, RunOutcome::Pass, Scenario::abort("a", "b", 503)),
                entry("h2", 2, RunOutcome::Pass, Scenario::abort("a", "b", 503)),
                entry("h3", 3, RunOutcome::Pass, Scenario::abort("c", "d", 503)),
                entry(
                    "h4",
                    4,
                    RunOutcome::AssertionFailed,
                    Scenario::abort("c", "d", 503),
                ),
            ],
        )
        .unwrap();
        let steered = CampaignRunner::new(&ctx)
            .max_in_flight(1)
            .flight_root(&root2)
            .steer_order(true)
            .run(recipes())
            .unwrap();
        assert!(steered.steered);
        assert_eq!(
            steered.waves,
            vec![
                vec!["untested".to_string()],
                vec!["flaky".to_string()],
                vec!["stable".to_string()],
            ],
            "{steered}"
        );
        assert!(steered.to_string().contains("(steered order)"), "{steered}");
        // Reports and durations stay aligned with the input order.
        assert_eq!(steered.recipes[0].name, "stable");
        assert_eq!(steered.recipes.len(), 3);
        let _ = fs::remove_dir_all(&root);
        let _ = fs::remove_dir_all(&root2);
    }

    #[test]
    fn campaign_waves_annotate_an_attached_timeline() {
        use gremlin_telemetry::TimeSeriesStore;

        let (ctx, _) = fan_ctx(&[("a", "b")]);
        let ctx = ctx.with_timeline(TimeSeriesStore::shared());
        let timeline = std::sync::Arc::clone(ctx.timeline().unwrap());
        CampaignRunner::new(&ctx)
            .run(vec![CampaignRecipe::new("annotated")
                .scenario(Scenario::abort("a", "b", 503))
                .hold(Duration::from_millis(5))])
            .unwrap();
        let phases: Vec<String> = timeline
            .annotations(0, u64::MAX)
            .into_iter()
            .map(|a| a.phase)
            .collect();
        assert_eq!(
            phases,
            vec!["wave-begin", "install", "clear", "wave-end"],
            "{phases:?}"
        );
        let begin = &timeline.annotations(0, u64::MAX)[0];
        assert!(begin.detail.contains("annotated"), "{}", begin.detail);
    }

    #[test]
    fn spec_serde_round_trips() {
        let spec = CampaignSpec {
            max_in_flight: Some(2),
            recipes: vec![CampaignRecipe::new("r")
                .scenario(Scenario::crash("b"))
                .hold(Duration::from_secs(1))],
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // hold, monitor and max_in_flight all default when absent.
        let mut value = serde_json::to_value(&spec).unwrap();
        value.as_object_mut().unwrap().remove("max_in_flight");
        value["recipes"][0].as_object_mut().unwrap().remove("hold");
        let minimal: CampaignSpec = serde_json::from_value(value).unwrap();
        assert!(minimal.max_in_flight.is_none());
        assert_eq!(minimal.recipes[0].hold, default_hold());
        assert!(minimal.recipes[0].monitor.is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn footprint_strategy() -> impl Strategy<Value = BTreeSet<(String, String)>> {
            // Edges drawn from a tiny universe so collisions are
            // common.
            proptest::collection::btree_set(
                (0..4u8, 0..4u8).prop_map(|(s, d)| (format!("s{s}"), format!("d{d}"))),
                1..4,
            )
        }

        proptest! {
            #[test]
            fn waves_never_coschedule_intersecting_footprints(
                footprints in proptest::collection::vec(footprint_strategy(), 1..12),
                max_in_flight in 1usize..5,
            ) {
                let waves = plan_waves(&footprints, max_in_flight);
                // Every index exactly once.
                let mut seen: Vec<usize> = waves.iter().flatten().copied().collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..footprints.len()).collect::<Vec<_>>());
                for wave in &waves {
                    prop_assert!(wave.len() <= max_in_flight.max(1));
                    for (i, &a) in wave.iter().enumerate() {
                        for &b in &wave[i + 1..] {
                            prop_assert!(
                                footprints[a].is_disjoint(&footprints[b]),
                                "wave {:?} co-schedules intersecting footprints {} and {}",
                                wave, a, b,
                            );
                        }
                    }
                }
            }
        }
    }
}

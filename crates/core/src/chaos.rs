//! A Chaos-Monkey-style randomized fault injector — the baseline the
//! paper contrasts Gremlin against (§8): *"Chaos Monkey … is capable
//! of staging unforeseen faults … However, the tool lacks support for
//! automatically analyzing application behavior … faults injected by
//! Chaos Monkey cannot be constrained to a subset of requests or
//! services."*
//!
//! [`ChaosMonkey`] samples random edges and random fault types from
//! the application graph. Unlike Gremlin scenarios it carries no
//! matching assertion — validation is the operator's problem — and by
//! default it hits **all** traffic, not just `test-*` flows. The
//! `systematic_vs_random` example uses it to measure how many trials
//! each approach needs to expose a planted bug.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gremlin_store::Pattern;

use crate::graph::AppGraph;
use crate::scenarios::Scenario;

/// The fault types the monkey samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Abort with 503.
    Abort,
    /// TCP reset.
    Reset,
    /// Delay by a random interval.
    Delay,
    /// Crash a whole service (every inbound edge).
    Crash,
}

const ALL_FAULTS: [ChaosFault; 4] = [
    ChaosFault::Abort,
    ChaosFault::Reset,
    ChaosFault::Delay,
    ChaosFault::Crash,
];

/// A seeded random fault generator over an application graph.
///
/// # Examples
///
/// ```
/// use gremlin_core::chaos::ChaosMonkey;
/// use gremlin_core::AppGraph;
///
/// let graph = AppGraph::from_edges(vec![("a", "b"), ("b", "c")]);
/// let mut monkey = ChaosMonkey::new(graph, 42);
/// let scenario = monkey.next_scenario().unwrap();
/// println!("unleashing: {scenario}");
/// ```
#[derive(Debug)]
pub struct ChaosMonkey {
    graph: AppGraph,
    rng: StdRng,
    pattern: Pattern,
    max_delay: Duration,
}

impl ChaosMonkey {
    /// Creates a monkey over `graph` with a deterministic seed.
    pub fn new(graph: AppGraph, seed: u64) -> ChaosMonkey {
        ChaosMonkey {
            graph,
            rng: StdRng::seed_from_u64(seed),
            pattern: Pattern::Any,
            max_delay: Duration::from_secs(2),
        }
    }

    /// Confines the monkey's faults to a flow pattern (not something
    /// the real Chaos Monkey can do — provided for fair comparisons).
    pub fn with_pattern(mut self, pattern: impl Into<Pattern>) -> ChaosMonkey {
        self.pattern = pattern.into();
        self
    }

    /// Caps the random delay interval.
    pub fn with_max_delay(mut self, max_delay: Duration) -> ChaosMonkey {
        self.max_delay = max_delay;
        self
    }

    /// Samples the next random failure scenario, or `None` when the
    /// graph has no edges to break.
    pub fn next_scenario(&mut self) -> Option<Scenario> {
        let edges = self.graph.edges();
        if edges.is_empty() {
            return None;
        }
        let (src, dst) = edges[self.rng.gen_range(0..edges.len())].clone();
        let fault = ALL_FAULTS[self.rng.gen_range(0..ALL_FAULTS.len())];
        let scenario = match fault {
            ChaosFault::Abort => Scenario::abort(src, dst, 503),
            ChaosFault::Reset => Scenario::abort_reset(src, dst),
            ChaosFault::Delay => {
                let millis = self
                    .rng
                    .gen_range(1..=self.max_delay.as_millis().max(2) as u64);
                Scenario::delay(src, dst, Duration::from_millis(millis))
            }
            ChaosFault::Crash => {
                // Crash the *destination* service — every dependent
                // edge — like terminating an instance.
                Scenario::crash(dst)
            }
        };
        Some(scenario.with_pattern(self.pattern.clone()))
    }

    /// Samples `count` scenarios (crashes that fail to translate —
    /// e.g. a root service nothing depends on — are skipped, as the
    /// real monkey's kills sometimes hit unused capacity).
    pub fn campaign(&mut self, count: usize) -> Vec<Scenario> {
        let mut scenarios = Vec::with_capacity(count);
        let mut guard = 0;
        while scenarios.len() < count && guard < count * 20 {
            guard += 1;
            if let Some(scenario) = self.next_scenario() {
                if scenario.to_rules(&self.graph).is_ok() {
                    scenarios.push(scenario);
                }
            } else {
                break;
            }
        }
        scenarios
    }

    /// The graph the monkey rampages over.
    pub fn graph(&self) -> &AppGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ScenarioKind;

    fn graph() -> AppGraph {
        AppGraph::from_edges(vec![("a", "b"), ("b", "c"), ("a", "c")])
    }

    #[test]
    fn deterministic_with_seed() {
        let mut monkey_1 = ChaosMonkey::new(graph(), 7);
        let mut monkey_2 = ChaosMonkey::new(graph(), 7);
        for _ in 0..20 {
            assert_eq!(monkey_1.next_scenario(), monkey_2.next_scenario());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut monkey_1 = ChaosMonkey::new(graph(), 1);
        let mut monkey_2 = ChaosMonkey::new(graph(), 2);
        let run_1: Vec<_> = (0..10).filter_map(|_| monkey_1.next_scenario()).collect();
        let run_2: Vec<_> = (0..10).filter_map(|_| monkey_2.next_scenario()).collect();
        assert_ne!(run_1, run_2);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let mut monkey = ChaosMonkey::new(AppGraph::new(), 7);
        assert!(monkey.next_scenario().is_none());
        assert!(monkey.campaign(5).is_empty());
    }

    #[test]
    fn campaign_scenarios_all_translate() {
        let g = graph();
        let mut monkey = ChaosMonkey::new(g.clone(), 11);
        let scenarios = monkey.campaign(30);
        assert_eq!(scenarios.len(), 30);
        for scenario in scenarios {
            assert!(scenario.to_rules(&g).is_ok(), "{scenario}");
        }
    }

    #[test]
    fn pattern_is_applied() {
        let mut monkey = ChaosMonkey::new(graph(), 3).with_pattern("test-*");
        let scenario = monkey.next_scenario().unwrap();
        assert_eq!(scenario.pattern, Pattern::new("test-*"));
    }

    #[test]
    fn default_hits_all_traffic() {
        let mut monkey = ChaosMonkey::new(graph(), 3);
        let scenario = monkey.next_scenario().unwrap();
        assert_eq!(
            scenario.pattern,
            Pattern::Any,
            "the real monkey spares no one"
        );
    }

    #[test]
    fn samples_cover_fault_variety() {
        let mut monkey = ChaosMonkey::new(graph(), 5).with_max_delay(Duration::from_millis(50));
        let mut kinds = std::collections::BTreeSet::new();
        for scenario in monkey.campaign(100) {
            kinds.insert(match scenario.kind {
                ScenarioKind::Abort { error: Some(_), .. } => "abort",
                ScenarioKind::Abort { error: None, .. } => "reset",
                ScenarioKind::Delay { .. } => "delay",
                ScenarioKind::Crash { .. } => "crash",
                _ => "other",
            });
        }
        assert!(kinds.len() >= 3, "got {kinds:?}");
    }
}

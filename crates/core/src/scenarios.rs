//! High-level failure scenarios and their translation into data-plane
//! rules — the paper's Recipe Translator (§4.2) and example recipe
//! library (§5).
//!
//! A [`Scenario`] names an outage at the level an operator thinks in
//! ("overload the database", "crash the message bus", "partition the
//! cluster"); [`Scenario::to_rules`] expands it over the logical
//! [`AppGraph`] into concrete Abort/Delay/Modify rules for the
//! Gremlin agents.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use gremlin_proxy::{AbortKind, MessageSide, Rule};
use gremlin_store::Pattern;

use crate::error::CoreError;
use crate::graph::AppGraph;

/// Serde helper storing `Duration` as integer microseconds (matching
/// the rule wire format).
mod duration_micros {
    use super::*;
    use serde::Deserializer;

    pub fn serialize<S: serde::Serializer>(
        value: &Duration,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(value.as_micros() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Duration, D::Error> {
        let micros = u64::deserialize(deserializer)?;
        Ok(Duration::from_micros(micros))
    }
}

/// The kind of outage to stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
#[non_exhaustive]
pub enum ScenarioKind {
    /// Abort messages on one edge with an application-level error (or
    /// a TCP reset when `error` is `None`).
    Abort {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// HTTP error status; `None` means TCP reset (`Error = -1`).
        error: Option<u16>,
        /// Fraction of matching messages to abort.
        probability: f64,
    },
    /// Delay messages on one edge.
    Delay {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Injected delay.
        #[serde(with = "duration_micros")]
        interval: Duration,
        /// Fraction of matching messages to delay.
        probability: f64,
    },
    /// Rewrite response bytes on one edge (input-validation testing).
    Modify {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Bytes to search for.
        search: String,
        /// Replacement bytes.
        replace: String,
    },
    /// `src` loses connectivity to `dst`: requests fail with an
    /// error code (paper §5 `Disconnect`).
    Disconnect {
        /// Calling service.
        src: String,
        /// Called service.
        dst: String,
        /// Error returned to the caller.
        error: u16,
    },
    /// The service appears crashed to every dependent: connections
    /// terminate at the TCP level (paper §5 `Crash`).
    Crash {
        /// The crashed service.
        service: String,
        /// Fraction of requests affected (1.0 = hard crash; lower
        /// values emulate transient crashes).
        probability: f64,
    },
    /// The service hangs: requests from every dependent are delayed
    /// by a long interval (paper §5 `Hang`).
    Hang {
        /// The hung service.
        service: String,
        /// How long requests are held.
        #[serde(with = "duration_micros")]
        interval: Duration,
    },
    /// The service appears overloaded to every dependent: a fraction
    /// of requests is aborted with an error, the rest are slowed
    /// down (paper §5 `Overload`).
    Overload {
        /// The overloaded service.
        service: String,
        /// Error returned for the aborted fraction.
        error: u16,
        /// Fraction of requests aborted.
        abort_probability: f64,
        /// Delay applied to the remaining requests.
        #[serde(with = "duration_micros")]
        delay: Duration,
    },
    /// Sever every edge crossing the cut between the two groups with
    /// TCP resets (paper §5 network partition).
    Partition {
        /// One side of the partition.
        group_a: Vec<String>,
        /// The other side.
        group_b: Vec<String>,
    },
    /// Corrupt successful responses from a service to trigger
    /// unexpected behaviour in its dependents (paper §5
    /// `FakeSuccess`).
    FakeSuccess {
        /// The service whose responses are corrupted.
        service: String,
        /// Bytes to search for in response bodies.
        search: String,
        /// Replacement bytes.
        replace: String,
    },
}

/// A high-level failure scenario plus the request-ID pattern that
/// confines it to specific flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// What to stage.
    pub kind: ScenarioKind,
    /// Which request flows are affected (default: every flow).
    #[serde(default)]
    pub pattern: Pattern,
}

impl Scenario {
    fn new(kind: ScenarioKind) -> Scenario {
        Scenario {
            kind,
            pattern: Pattern::Any,
        }
    }

    /// Abort `src -> dst` messages with HTTP `error`.
    pub fn abort(src: impl Into<String>, dst: impl Into<String>, error: u16) -> Scenario {
        Scenario::new(ScenarioKind::Abort {
            src: src.into(),
            dst: dst.into(),
            error: Some(error),
            probability: 1.0,
        })
    }

    /// Abort `src -> dst` messages with a TCP reset.
    pub fn abort_reset(src: impl Into<String>, dst: impl Into<String>) -> Scenario {
        Scenario::new(ScenarioKind::Abort {
            src: src.into(),
            dst: dst.into(),
            error: None,
            probability: 1.0,
        })
    }

    /// Delay `src -> dst` messages by `interval`.
    pub fn delay(src: impl Into<String>, dst: impl Into<String>, interval: Duration) -> Scenario {
        Scenario::new(ScenarioKind::Delay {
            src: src.into(),
            dst: dst.into(),
            interval,
            probability: 1.0,
        })
    }

    /// Rewrite `dst`'s response bodies on the `src -> dst` edge.
    pub fn modify(
        src: impl Into<String>,
        dst: impl Into<String>,
        search: impl Into<String>,
        replace: impl Into<String>,
    ) -> Scenario {
        Scenario::new(ScenarioKind::Modify {
            src: src.into(),
            dst: dst.into(),
            search: search.into(),
            replace: replace.into(),
        })
    }

    /// `src` loses connectivity to `dst` (503 by default).
    pub fn disconnect(src: impl Into<String>, dst: impl Into<String>) -> Scenario {
        Scenario::new(ScenarioKind::Disconnect {
            src: src.into(),
            dst: dst.into(),
            error: 503,
        })
    }

    /// Hard crash of `service` as seen by every dependent.
    pub fn crash(service: impl Into<String>) -> Scenario {
        Scenario::new(ScenarioKind::Crash {
            service: service.into(),
            probability: 1.0,
        })
    }

    /// Transient crash: only `probability` of requests see the crash.
    pub fn transient_crash(service: impl Into<String>, probability: f64) -> Scenario {
        Scenario::new(ScenarioKind::Crash {
            service: service.into(),
            probability,
        })
    }

    /// `service` hangs for one hour (the paper's software-hang
    /// emulation).
    pub fn hang(service: impl Into<String>) -> Scenario {
        Scenario::hang_for(service, Duration::from_secs(3600))
    }

    /// `service` hangs for `interval`.
    pub fn hang_for(service: impl Into<String>, interval: Duration) -> Scenario {
        Scenario::new(ScenarioKind::Hang {
            service: service.into(),
            interval,
        })
    }

    /// `service` appears overloaded: 25% of requests aborted with
    /// 503, the rest delayed by 100 ms (the paper's §5 parameters).
    pub fn overload(service: impl Into<String>) -> Scenario {
        Scenario::overload_with(service, 503, 0.25, Duration::from_millis(100))
    }

    /// Overload with explicit parameters.
    pub fn overload_with(
        service: impl Into<String>,
        error: u16,
        abort_probability: f64,
        delay: Duration,
    ) -> Scenario {
        Scenario::new(ScenarioKind::Overload {
            service: service.into(),
            error,
            abort_probability,
            delay,
        })
    }

    /// Network partition between two groups of services.
    pub fn partition(group_a: Vec<String>, group_b: Vec<String>) -> Scenario {
        Scenario::new(ScenarioKind::Partition { group_a, group_b })
    }

    /// Corrupt `service`'s successful responses (e.g. `key` →
    /// `badkey`).
    pub fn fake_success(
        service: impl Into<String>,
        search: impl Into<String>,
        replace: impl Into<String>,
    ) -> Scenario {
        Scenario::new(ScenarioKind::FakeSuccess {
            service: service.into(),
            search: search.into(),
            replace: replace.into(),
        })
    }

    /// Builder-style: confine the scenario to request IDs matching
    /// `pattern` (e.g. `"test-*"`).
    pub fn with_pattern(mut self, pattern: impl Into<Pattern>) -> Scenario {
        self.pattern = pattern.into();
        self
    }

    /// Translates the scenario into concrete fault-injection rules
    /// over the application graph — the Recipe Translator.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownService`] — a named service is missing
    ///   from the graph.
    /// * [`CoreError::EmptyTranslation`] — the scenario affects no
    ///   edge (e.g. crashing a service nothing depends on).
    pub fn to_rules(&self, graph: &AppGraph) -> Result<Vec<Rule>, CoreError> {
        let pattern = self.pattern.clone();
        let rules = match &self.kind {
            ScenarioKind::Abort {
                src,
                dst,
                error,
                probability,
            } => {
                require_edge_services(graph, src, dst)?;
                let abort = match error {
                    Some(code) => AbortKind::Status(*code),
                    None => AbortKind::Reset,
                };
                vec![Rule::abort(src.clone(), dst.clone(), abort)
                    .with_pattern(pattern)
                    .with_probability(*probability)]
            }
            ScenarioKind::Delay {
                src,
                dst,
                interval,
                probability,
            } => {
                require_edge_services(graph, src, dst)?;
                vec![Rule::delay(src.clone(), dst.clone(), *interval)
                    .with_pattern(pattern)
                    .with_probability(*probability)]
            }
            ScenarioKind::Modify {
                src,
                dst,
                search,
                replace,
            } => {
                require_edge_services(graph, src, dst)?;
                vec![
                    Rule::modify(src.clone(), dst.clone(), search.clone(), replace.clone())
                        .with_pattern(pattern)
                        .with_side(MessageSide::Response),
                ]
            }
            ScenarioKind::Disconnect { src, dst, error } => {
                require_edge_services(graph, src, dst)?;
                vec![
                    Rule::abort(src.clone(), dst.clone(), AbortKind::Status(*error))
                        .with_pattern(pattern),
                ]
            }
            ScenarioKind::Crash {
                service,
                probability,
            } => {
                let dependents = require_dependents(graph, service)?;
                dependents
                    .into_iter()
                    .map(|caller| {
                        Rule::abort(caller, service.clone(), AbortKind::Reset)
                            .with_pattern(pattern.clone())
                            .with_probability(*probability)
                    })
                    .collect()
            }
            ScenarioKind::Hang { service, interval } => {
                let dependents = require_dependents(graph, service)?;
                dependents
                    .into_iter()
                    .map(|caller| {
                        Rule::delay(caller, service.clone(), *interval)
                            .with_pattern(pattern.clone())
                    })
                    .collect()
            }
            ScenarioKind::Overload {
                service,
                error,
                abort_probability,
                delay,
            } => {
                let dependents = require_dependents(graph, service)?;
                let mut rules = Vec::with_capacity(dependents.len() * 2);
                for caller in dependents {
                    // First-match-wins with a fallback: `p` of the
                    // traffic is aborted, the remaining `1 - p`
                    // delayed — the paper's 25%/75% split.
                    rules.push(
                        Rule::abort(caller.clone(), service.clone(), AbortKind::Status(*error))
                            .with_pattern(pattern.clone())
                            .with_probability(*abort_probability),
                    );
                    rules.push(
                        Rule::delay(caller, service.clone(), *delay).with_pattern(pattern.clone()),
                    );
                }
                rules
            }
            ScenarioKind::Partition { group_a, group_b } => {
                let cut = graph.cut(group_a, group_b)?;
                if cut.is_empty() {
                    return Err(CoreError::EmptyTranslation(
                        "partition cut crosses no edges".to_string(),
                    ));
                }
                cut.into_iter()
                    .map(|(src, dst)| {
                        Rule::abort(src, dst, AbortKind::Reset).with_pattern(pattern.clone())
                    })
                    .collect()
            }
            ScenarioKind::FakeSuccess {
                service,
                search,
                replace,
            } => {
                let dependents = require_dependents(graph, service)?;
                dependents
                    .into_iter()
                    .map(|caller| {
                        Rule::modify(caller, service.clone(), search.clone(), replace.clone())
                            .with_pattern(pattern.clone())
                            .with_side(MessageSide::Response)
                    })
                    .collect()
            }
        };
        Ok(rules)
    }
}

fn require_edge_services(graph: &AppGraph, src: &str, dst: &str) -> Result<(), CoreError> {
    for service in [src, dst] {
        if !graph.contains(service) {
            return Err(CoreError::UnknownService(service.to_string()));
        }
    }
    Ok(())
}

fn require_dependents(graph: &AppGraph, service: &str) -> Result<Vec<String>, CoreError> {
    if !graph.contains(service) {
        return Err(CoreError::UnknownService(service.to_string()));
    }
    let dependents = graph.dependents(service);
    if dependents.is_empty() {
        return Err(CoreError::EmptyTranslation(format!(
            "no service depends on {service:?}"
        )));
    }
    Ok(dependents)
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ScenarioKind::Abort { src, dst, error, probability } => match error {
                Some(code) => write!(f, "abort {src}->{dst} with {code} (p={probability})"),
                None => write!(f, "abort {src}->{dst} with tcp reset (p={probability})"),
            },
            ScenarioKind::Delay { src, dst, interval, probability } => {
                write!(f, "delay {src}->{dst} by {interval:?} (p={probability})")
            }
            ScenarioKind::Modify { src, dst, search, replace } => {
                write!(f, "modify {src}->{dst} responses ({search:?} -> {replace:?})")
            }
            ScenarioKind::Disconnect { src, dst, error } => {
                write!(f, "disconnect {src} from {dst} ({error})")
            }
            ScenarioKind::Crash { service, probability } => {
                write!(f, "crash {service} (p={probability})")
            }
            ScenarioKind::Hang { service, interval } => {
                write!(f, "hang {service} for {interval:?}")
            }
            ScenarioKind::Overload { service, error, abort_probability, delay } => write!(
                f,
                "overload {service} ({abort_probability} aborted with {error}, rest delayed {delay:?})"
            ),
            ScenarioKind::Partition { group_a, group_b } => {
                write!(f, "partition {group_a:?} | {group_b:?}")
            }
            ScenarioKind::FakeSuccess { service, search, replace } => {
                write!(f, "fake-success from {service} ({search:?} -> {replace:?})")
            }
        }?;
        if self.pattern != Pattern::Any {
            write!(f, " on flows {}", self.pattern)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_proxy::FaultAction;

    fn graph() -> AppGraph {
        AppGraph::from_edges(vec![("web", "search"), ("web", "db"), ("search", "db")])
    }

    #[test]
    fn abort_translates_to_single_rule() {
        let rules = Scenario::abort("web", "db", 503)
            .with_pattern("test-*")
            .to_rules(&graph())
            .unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].src, "web");
        assert_eq!(rules[0].dst, "db");
        assert_eq!(rules[0].pattern, Pattern::new("test-*"));
        assert!(matches!(
            rules[0].action,
            FaultAction::Abort {
                abort: AbortKind::Status(503)
            }
        ));
    }

    #[test]
    fn abort_reset_uses_reset() {
        let rules = Scenario::abort_reset("web", "db")
            .to_rules(&graph())
            .unwrap();
        assert!(matches!(
            rules[0].action,
            FaultAction::Abort {
                abort: AbortKind::Reset
            }
        ));
    }

    #[test]
    fn crash_fans_out_to_all_dependents() {
        let rules = Scenario::crash("db").to_rules(&graph()).unwrap();
        assert_eq!(rules.len(), 2);
        let sources: Vec<_> = rules.iter().map(|r| r.src.as_str()).collect();
        assert!(sources.contains(&"web"));
        assert!(sources.contains(&"search"));
        assert!(rules.iter().all(|r| matches!(
            r.action,
            FaultAction::Abort {
                abort: AbortKind::Reset
            }
        )));
    }

    #[test]
    fn transient_crash_carries_probability() {
        let rules = Scenario::transient_crash("db", 0.3)
            .to_rules(&graph())
            .unwrap();
        assert!(rules.iter().all(|r| (r.probability - 0.3).abs() < 1e-9));
    }

    #[test]
    fn hang_defaults_to_one_hour() {
        let rules = Scenario::hang("db").to_rules(&graph()).unwrap();
        assert!(rules.iter().all(|r| matches!(
            r.action,
            FaultAction::Delay { interval } if interval == Duration::from_secs(3600)
        )));
    }

    #[test]
    fn overload_creates_abort_then_delay_fallback() {
        let rules = Scenario::overload("db").to_rules(&graph()).unwrap();
        // Two dependents x (abort + delay).
        assert_eq!(rules.len(), 4);
        let web_rules: Vec<_> = rules.iter().filter(|r| r.src == "web").collect();
        assert_eq!(web_rules.len(), 2);
        assert!(matches!(web_rules[0].action, FaultAction::Abort { .. }));
        assert!((web_rules[0].probability - 0.25).abs() < 1e-9);
        assert!(matches!(web_rules[1].action, FaultAction::Delay { .. }));
        assert_eq!(web_rules[1].probability, 1.0);
    }

    #[test]
    fn partition_severs_cut_edges() {
        let rules = Scenario::partition(
            vec!["web".to_string()],
            vec!["search".to_string(), "db".to_string()],
        )
        .to_rules(&graph())
        .unwrap();
        // web->search and web->db cross the cut; search->db does not.
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().all(|r| r.src == "web"));
    }

    #[test]
    fn fake_success_modifies_responses() {
        let rules = Scenario::fake_success("db", "key", "badkey")
            .to_rules(&graph())
            .unwrap();
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().all(|r| r.on == MessageSide::Response));
        assert!(rules.iter().all(|r| matches!(
            &r.action,
            FaultAction::Modify { search, replace_bytes }
                if search == "key" && replace_bytes == "badkey"
        )));
    }

    #[test]
    fn unknown_service_is_rejected() {
        assert!(matches!(
            Scenario::crash("ghost").to_rules(&graph()),
            Err(CoreError::UnknownService(_))
        ));
        assert!(matches!(
            Scenario::abort("web", "ghost", 503).to_rules(&graph()),
            Err(CoreError::UnknownService(_))
        ));
    }

    #[test]
    fn crash_of_root_service_is_empty_translation() {
        // Nothing depends on "web".
        assert!(matches!(
            Scenario::crash("web").to_rules(&graph()),
            Err(CoreError::EmptyTranslation(_))
        ));
    }

    #[test]
    fn partition_with_no_crossing_edges_is_empty() {
        let mut g = graph();
        g.add_service("island");
        assert!(matches!(
            Scenario::partition(vec!["island".to_string()], vec!["web".to_string()]).to_rules(&g),
            Err(CoreError::EmptyTranslation(_))
        ));
    }

    #[test]
    fn serde_round_trip_all_kinds() {
        let scenarios = vec![
            Scenario::abort("web", "db", 503).with_pattern("test-*"),
            Scenario::abort_reset("web", "db"),
            Scenario::delay("web", "db", Duration::from_millis(250)).with_pattern("a?c"),
            Scenario::modify("web", "db", "key", "badkey"),
            Scenario::disconnect("web", "db"),
            Scenario::crash("db"),
            Scenario::transient_crash("db", 0.5),
            Scenario::hang("db"),
            Scenario::overload("db"),
            Scenario::partition(vec!["web".into()], vec!["db".into()]),
            Scenario::fake_success("db", "k", "v"),
        ];
        for scenario in scenarios {
            let json = serde_json::to_string(&scenario).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(scenario, back, "{json}");
        }
    }

    #[test]
    fn serde_pattern_is_a_plain_string() {
        let json = serde_json::to_string(&Scenario::crash("db").with_pattern("test-*")).unwrap();
        assert!(json.contains("\"pattern\":\"test-*\""), "{json}");
    }

    #[test]
    fn display_mentions_key_parts() {
        let text = Scenario::overload("db").with_pattern("test-*").to_string();
        assert!(text.contains("overload db"));
        assert!(text.contains("test-*"));
    }
}

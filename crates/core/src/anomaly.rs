//! Adaptive anomaly scoring over the live edge health stream.
//!
//! The checker and the [`LiveMonitor`](crate::LiveMonitor) both take
//! operator-supplied thresholds; this module replaces them with
//! *learned* expectations. During a recipe's fault-free warmup the
//! [`AnomalyScorer`] feeds per-`(src, dst)`
//! [`EdgeBaseline`](gremlin_store::EdgeBaseline) profiles (rate EWMA,
//! error-rate Wilson bound, latency percentiles with MAD dispersion);
//! once a baseline is learned, every subsequent event-time window is
//! scored as robust z-scores per dimension and the edge walks a
//! hysteresis state machine:
//!
//! ```text
//! Warming ──▶ Nominal ◀──▶ Suspect ──▶ Anomalous
//!                              ◀──────────┘
//! ```
//!
//! * `Warming` — still learning the baseline
//!   ([`AnomalyConfig::warmup_windows`] windows with traffic).
//! * `Nominal` — the latest window scored below
//!   [`AnomalyConfig::suspect_z`].
//! * `Suspect` — at least one window scored at or above `suspect_z`.
//! * `Anomalous` — [`AnomalyConfig::anomalous_after`] *consecutive*
//!   windows at suspect level.
//!
//! Recovery is hysteretic: an edge steps *down* one state only after
//! [`AnomalyConfig::recover_after`] consecutive windows below
//! [`AnomalyConfig::clear_z`]; scores between the two thresholds hold
//! the current state.
//!
//! Every state transition is an [`AnomalyAlert`]; the
//! [`LiveMonitor`](crate::LiveMonitor) interleaves them with verdict
//! alerts on `GET /alerts` and exposes the scores on `GET /health`
//! and through the streaming
//! [`StreamingAssertion::AnomalousEdge`](crate::StreamingAssertion)
//! assertion — a recipe `monitor:` stanza with zero fixed thresholds.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use gremlin_store::{BaselineBuilder, EdgeBaseline, Event, Micros, Name};
use gremlin_telemetry::{HistogramSnapshot, LatencyHistogram};

fn default_warmup_windows() -> u32 {
    5
}
fn default_suspect_z() -> f64 {
    3.0
}
fn default_clear_z() -> f64 {
    1.5
}
fn default_anomalous_after() -> u32 {
    2
}
fn default_recover_after() -> u32 {
    2
}

/// Tuning for the [`AnomalyScorer`]'s warmup and hysteresis. All
/// fields have serde defaults, so a recipe's `anomaly: {}` stanza is
/// valid and threshold-free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Windows with traffic to learn each edge's baseline over.
    #[serde(default = "default_warmup_windows")]
    pub warmup_windows: u32,
    /// Combined score at which a window counts as suspect.
    #[serde(default = "default_suspect_z")]
    pub suspect_z: f64,
    /// Combined score below which a window counts toward recovery.
    #[serde(default = "default_clear_z")]
    pub clear_z: f64,
    /// Consecutive suspect-level windows (counted from the first)
    /// before a `Suspect` edge escalates to `Anomalous`.
    #[serde(default = "default_anomalous_after")]
    pub anomalous_after: u32,
    /// Consecutive clear windows before an edge steps down one state.
    #[serde(default = "default_recover_after")]
    pub recover_after: u32,
}

impl Default for AnomalyConfig {
    fn default() -> AnomalyConfig {
        AnomalyConfig {
            warmup_windows: default_warmup_windows(),
            suspect_z: default_suspect_z(),
            clear_z: default_clear_z(),
            anomalous_after: default_anomalous_after(),
            recover_after: default_recover_after(),
        }
    }
}

impl AnomalyConfig {
    /// Builder-style: sets the warmup window count (minimum 1).
    pub fn warmup_windows(mut self, windows: u32) -> AnomalyConfig {
        self.warmup_windows = windows.max(1);
        self
    }

    /// Builder-style: sets the suspect threshold.
    pub fn suspect_z(mut self, z: f64) -> AnomalyConfig {
        self.suspect_z = z;
        self
    }

    /// Builder-style: sets the recovery threshold.
    pub fn clear_z(mut self, z: f64) -> AnomalyConfig {
        self.clear_z = z;
        self
    }

    /// Builder-style: sets the suspect-to-anomalous escalation count
    /// (minimum 1).
    pub fn anomalous_after(mut self, windows: u32) -> AnomalyConfig {
        self.anomalous_after = windows.max(1);
        self
    }

    /// Builder-style: sets the recovery window count (minimum 1).
    pub fn recover_after(mut self, windows: u32) -> AnomalyConfig {
        self.recover_after = windows.max(1);
        self
    }
}

/// Where an edge stands in the anomaly state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EdgeState {
    /// Still learning the baseline.
    Warming,
    /// Behaving like the baseline.
    Nominal,
    /// At least one window scored at suspect level.
    Suspect,
    /// Consecutive suspect-level windows confirmed the deviation.
    Anomalous,
}

impl fmt::Display for EdgeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdgeState::Warming => "warming",
            EdgeState::Nominal => "nominal",
            EdgeState::Suspect => "suspect",
            EdgeState::Anomalous => "anomalous",
        })
    }
}

/// One edge's live anomaly status: the latest window's z-scores, the
/// state machine position, and the learned baseline (for delta
/// rendering in `gremlin watch` and reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyScore {
    /// Calling service.
    pub src: String,
    /// Called service.
    pub dst: String,
    /// State machine position.
    pub state: EdgeState,
    /// Combined score of the latest scored window (max of the
    /// per-dimension z-scores).
    pub score: f64,
    /// Request-rate robust z-score of the latest window.
    pub rate_z: f64,
    /// Error-rate robust z-score of the latest window.
    pub error_z: f64,
    /// Latency robust z-score of the latest window.
    pub latency_z: f64,
    /// Highest combined score any window reached.
    pub peak_score: f64,
    /// Windows scored against the baseline so far.
    pub windows: u64,
    /// Event time when the edge first left `Nominal`, if ever.
    pub first_suspect_at_us: Option<Micros>,
    /// Event time when the edge first reached `Anomalous`, if ever.
    pub anomalous_at_us: Option<Micros>,
    /// The learned baseline (`None` while warming).
    pub baseline: Option<EdgeBaseline>,
}

/// One anomaly state transition, interleaved with verdict alerts on
/// the monitor's record log and `GET /alerts`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyAlert {
    /// Position in the monitor's record log (assigned on append).
    pub seq: u64,
    /// Event-time timestamp of the window close causing the
    /// transition.
    pub at_us: Micros,
    /// Calling service.
    pub src: String,
    /// Called service.
    pub dst: String,
    /// State before the transition.
    pub from: EdgeState,
    /// State after the transition.
    pub to: EdgeState,
    /// Combined score of the window causing the transition.
    pub score: f64,
    /// Supporting detail (per-dimension z-scores or baseline summary).
    pub detail: String,
}

impl fmt::Display for AnomalyAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}us] edge {} -> {} {} -> {} (score {:.1}) — {}",
            self.at_us, self.src, self.dst, self.from, self.to, self.score, self.detail
        )
    }
}

/// Per-edge scorer state: the warmup accumulator, the learned
/// baseline, the open window's counters, and the hysteresis streaks.
struct EdgeTrack {
    builder: BaselineBuilder,
    baseline: Option<EdgeBaseline>,
    state: EdgeState,
    /// Cumulative latency histogram; windowed distributions come from
    /// snapshot deltas at window closes.
    latency: LatencyHistogram,
    mark: HistogramSnapshot,
    requests: u64,
    responses: u64,
    errors: u64,
    high_streak: u32,
    low_streak: u32,
    score: f64,
    rate_z: f64,
    error_z: f64,
    latency_z: f64,
    peak_score: f64,
    windows: u64,
    first_suspect_at_us: Option<Micros>,
    anomalous_at_us: Option<Micros>,
}

impl EdgeTrack {
    fn new(src: &Name, dst: &Name) -> EdgeTrack {
        EdgeTrack {
            builder: BaselineBuilder::new(src.as_str(), dst.as_str()),
            baseline: None,
            state: EdgeState::Warming,
            latency: LatencyHistogram::new(),
            mark: HistogramSnapshot::empty(),
            requests: 0,
            responses: 0,
            errors: 0,
            high_streak: 0,
            low_streak: 0,
            score: 0.0,
            rate_z: 0.0,
            error_z: 0.0,
            latency_z: 0.0,
            peak_score: 0.0,
            windows: 0,
            first_suspect_at_us: None,
            anomalous_at_us: None,
        }
    }

    fn status(&self, src: &Name, dst: &Name) -> AnomalyScore {
        AnomalyScore {
            src: src.to_string(),
            dst: dst.to_string(),
            state: self.state,
            score: self.score,
            rate_z: self.rate_z,
            error_z: self.error_z,
            latency_z: self.latency_z,
            peak_score: self.peak_score,
            windows: self.windows,
            first_suspect_at_us: self.first_suspect_at_us,
            anomalous_at_us: self.anomalous_at_us,
            baseline: self.baseline.clone(),
        }
    }
}

/// Scores per-edge event-time windows against learned baselines.
///
/// Drive it like the window machinery it mirrors: [`AnomalyScorer::observe`]
/// per event, [`AnomalyScorer::close_window`] at every window
/// boundary. The [`LiveMonitor`](crate::LiveMonitor) does both
/// automatically when its [`MonitorSpec`](crate::MonitorSpec) carries
/// an [`AnomalyConfig`].
///
/// # Examples
///
/// ```
/// use gremlin_core::{AnomalyConfig, AnomalyScorer, EdgeState};
/// use gremlin_store::Event;
/// use std::time::Duration;
///
/// let mut scorer = AnomalyScorer::new(AnomalyConfig::default().warmup_windows(2));
/// for w in 0..2u64 {
///     for i in 0..10u64 {
///         let ts = w * 1_000_000 + i * 100_000;
///         scorer.observe(&Event::request("a", "b", "GET", "/x").with_timestamp(ts));
///         scorer.observe(
///             &Event::response("a", "b", 200, Duration::from_millis(5)).with_timestamp(ts),
///         );
///     }
///     scorer.close_window((w + 1) * 1_000_000, Duration::from_secs(1));
/// }
/// assert_eq!(scorer.scores()[0].state, EdgeState::Nominal);
/// ```
pub struct AnomalyScorer {
    config: AnomalyConfig,
    edges: BTreeMap<(Name, Name), EdgeTrack>,
    seeded: usize,
}

impl fmt::Debug for AnomalyScorer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnomalyScorer")
            .field("config", &self.config)
            .field("edges", &self.edges.len())
            .field("seeded", &self.seeded)
            .finish()
    }
}

impl AnomalyScorer {
    /// Creates a scorer; every edge starts in
    /// [`EdgeState::Warming`] when its first event arrives.
    pub fn new(config: AnomalyConfig) -> AnomalyScorer {
        AnomalyScorer {
            config,
            edges: BTreeMap::new(),
            seeded: 0,
        }
    }

    /// Creates a scorer pre-seeded with baselines from a prior run
    /// (see [`AnomalyScorer::seed`]). Seeded edges start in
    /// [`EdgeState::Nominal`] and skip the warmup entirely.
    pub fn with_baselines(config: AnomalyConfig, baselines: Vec<EdgeBaseline>) -> AnomalyScorer {
        let mut scorer = AnomalyScorer::new(config);
        scorer.seed(baselines);
        scorer
    }

    /// Seeds edges with baselines learned by a prior run (typically
    /// loaded from a flight recording's `baselines.json`). A seeded
    /// edge starts in [`EdgeState::Nominal`] with its baseline already
    /// in place, so it is scored from its very first window — no
    /// warmup, and no "baseline learned" alert. Edges that already
    /// have a baseline, or that have left [`EdgeState::Warming`], are
    /// left untouched: live learning always wins over a stale seed.
    pub fn seed(&mut self, baselines: Vec<EdgeBaseline>) {
        for baseline in baselines {
            let key = (
                Name::from(baseline.src.as_str()),
                Name::from(baseline.dst.as_str()),
            );
            let track = self
                .edges
                .entry(key)
                .or_insert_with_key(|(src, dst)| EdgeTrack::new(src, dst));
            if track.state == EdgeState::Warming && track.baseline.is_none() {
                track.baseline = Some(baseline);
                track.state = EdgeState::Nominal;
                self.seeded += 1;
            }
        }
    }

    /// How many edges were seeded from prior baselines.
    pub fn seeded_edges(&self) -> usize {
        self.seeded
    }

    /// Every learned (or seeded) baseline, sorted by `(src, dst)` —
    /// the snapshot persisted as `baselines.json` for the next run.
    pub fn baselines(&self) -> Vec<EdgeBaseline> {
        self.edges
            .values()
            .filter_map(|track| track.baseline.clone())
            .collect()
    }

    /// The scorer's configuration.
    pub fn config(&self) -> &AnomalyConfig {
        &self.config
    }

    /// Folds one event into its edge's open window.
    pub fn observe(&mut self, event: &Event) {
        let track = self
            .edges
            .entry((event.src.clone(), event.dst.clone()))
            .or_insert_with(|| EdgeTrack::new(&event.src, &event.dst));
        if event.kind.is_request() {
            track.requests += 1;
        } else if let Some(status) = event.status() {
            track.responses += 1;
            if status == 0 || (500..600).contains(&status) {
                track.errors += 1;
            }
            if let Some(latency) = event.observed_latency() {
                track.latency.record(latency);
            }
        }
    }

    /// Closes the window ending at `end_us` on every edge: feeds the
    /// warmup accumulator or scores the window against the baseline,
    /// advances the state machine, and returns the transitions
    /// (with `seq` left 0 — the monitor's record log assigns it).
    pub fn close_window(&mut self, end_us: Micros, window: Duration) -> Vec<AnomalyAlert> {
        let window_secs = window.as_secs_f64().max(1e-6);
        let window_us = (window.as_micros() as u64).max(1);
        let config = self.config.clone();
        let mut alerts = Vec::new();
        for ((src, dst), track) in self.edges.iter_mut() {
            let windowed = track.latency.snapshot().delta(&track.mark);
            let rate = if track.requests == 0 {
                0.0
            } else {
                track.requests as f64 / window_secs
            };
            match track.state {
                EdgeState::Warming => {
                    if track.requests > 0 || track.responses > 0 {
                        track
                            .builder
                            .add_window(rate, track.responses, track.errors, &windowed);
                    }
                    if track.builder.windows() >= config.warmup_windows {
                        let baseline = track.builder.build();
                        let detail = format!(
                            "baseline learned over {} window(s): {:.1} req/s, p50 {}us, error rate {:.3}",
                            baseline.windows,
                            baseline.rate_ewma,
                            baseline.p50_us,
                            baseline.error_rate,
                        );
                        track.baseline = Some(baseline);
                        track.state = EdgeState::Nominal;
                        alerts.push(AnomalyAlert {
                            seq: 0,
                            at_us: end_us,
                            src: src.to_string(),
                            dst: dst.to_string(),
                            from: EdgeState::Warming,
                            to: EdgeState::Nominal,
                            score: 0.0,
                            detail,
                        });
                    }
                }
                _ => {
                    let baseline = track
                        .baseline
                        .as_ref()
                        .expect("scored edges always carry a baseline");
                    track.rate_z = baseline.rate_z(rate);
                    track.error_z = baseline.error_z(track.errors, track.responses);
                    track.latency_z = if windowed.is_empty() {
                        if track.requests > 0 && track.responses == 0 && baseline.responses > 0 {
                            // Requests flowing, zero replies, on an
                            // edge that used to reply: the responses
                            // are at least a full window late.
                            baseline.latency_z(window_us, window_us)
                        } else {
                            0.0
                        }
                    } else {
                        let p50 = windowed
                            .percentile(0.50)
                            .map(|d| d.as_micros() as u64)
                            .unwrap_or(0);
                        let p99 = windowed
                            .percentile(0.99)
                            .map(|d| d.as_micros() as u64)
                            .unwrap_or(0);
                        baseline.latency_z(p50, p99)
                    };
                    track.score = track.rate_z.max(track.error_z).max(track.latency_z);
                    track.peak_score = track.peak_score.max(track.score);
                    track.windows += 1;
                    let detail = format!(
                        "score {:.1} (rate z {:.1}, error z {:.1}, latency z {:.1})",
                        track.score, track.rate_z, track.error_z, track.latency_z
                    );
                    let from = track.state;
                    let mut to = None;
                    if track.score >= config.suspect_z {
                        track.high_streak += 1;
                        track.low_streak = 0;
                        match track.state {
                            EdgeState::Nominal => {
                                to = Some(EdgeState::Suspect);
                                track.first_suspect_at_us.get_or_insert(end_us);
                            }
                            EdgeState::Suspect if track.high_streak >= config.anomalous_after => {
                                to = Some(EdgeState::Anomalous);
                                track.anomalous_at_us.get_or_insert(end_us);
                            }
                            _ => {}
                        }
                    } else if track.score < config.clear_z {
                        track.low_streak += 1;
                        track.high_streak = 0;
                        if track.low_streak >= config.recover_after {
                            track.low_streak = 0;
                            match track.state {
                                EdgeState::Anomalous => to = Some(EdgeState::Suspect),
                                EdgeState::Suspect => to = Some(EdgeState::Nominal),
                                _ => {}
                            }
                        }
                    } else {
                        // Between the thresholds: hysteresis band,
                        // hold the state and reset both streaks.
                        track.high_streak = 0;
                        track.low_streak = 0;
                    }
                    if let Some(to) = to {
                        track.state = to;
                        alerts.push(AnomalyAlert {
                            seq: 0,
                            at_us: end_us,
                            src: src.to_string(),
                            dst: dst.to_string(),
                            from,
                            to,
                            score: track.score,
                            detail,
                        });
                    }
                }
            }
            track.mark = track.latency.snapshot();
            track.requests = 0;
            track.responses = 0;
            track.errors = 0;
        }
        alerts
    }

    /// Every edge's current score, sorted by `(src, dst)`.
    pub fn scores(&self) -> Vec<AnomalyScore> {
        self.edges
            .iter()
            .map(|((src, dst), track)| track.status(src, dst))
            .collect()
    }

    /// One edge's current score, if it has seen traffic.
    pub fn score(&self, src: &str, dst: &str) -> Option<AnomalyScore> {
        let key = (Name::from(src), Name::from(dst));
        self.edges
            .get(&key)
            .map(|track| track.status(&key.0, &key.1))
    }

    /// `true` once any edge is currently [`EdgeState::Anomalous`].
    pub fn any_anomalous(&self) -> bool {
        self.edges
            .values()
            .any(|track| track.state == EdgeState::Anomalous)
    }
}

/// Robust drift score between two learned baselines of the same edge:
/// how many (MAD-derived) standard deviations the `current` run's
/// rate, error rate and latency profile sit from the `reference`
/// run's. The coverage ledger uses this across historical
/// `baselines.json` snapshots to flag runs that still pass their
/// assertions but have silently degraded (a *resilience regression*).
///
/// Returns the worst of the three per-signal z-scores; always finite
/// and `>= 0`.
pub fn drift_z(reference: &EdgeBaseline, current: &EdgeBaseline) -> f64 {
    let errors = (current.error_rate * current.responses as f64).round() as u64;
    reference
        .rate_z(current.rate_ewma)
        .max(reference.error_z(errors, current.responses))
        .max(reference.latency_z(current.p50_us, current.p99_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINDOW: Duration = Duration::from_secs(1);

    fn sec(s: u64) -> Micros {
        s * 1_000_000
    }

    /// Drives one synthetic window of traffic on `a -> b` and closes
    /// it: `count` request/response pairs at `latency_ms`, of which
    /// `errors` reply 503.
    fn drive_window(
        scorer: &mut AnomalyScorer,
        window_index: u64,
        count: u64,
        latency_ms: u64,
        errors: u64,
    ) -> Vec<AnomalyAlert> {
        let base = sec(window_index);
        for i in 0..count {
            let ts = base + i * 50_000;
            scorer.observe(&Event::request("a", "b", "GET", "/x").with_timestamp(ts));
            let status = if i < errors { 503 } else { 200 };
            scorer.observe(
                &Event::response("a", "b", status, Duration::from_millis(latency_ms))
                    .with_timestamp(ts + 1_000),
            );
        }
        scorer.close_window(sec(window_index + 1), WINDOW)
    }

    fn warmed(config: AnomalyConfig) -> AnomalyScorer {
        let warmup = config.warmup_windows;
        let mut scorer = AnomalyScorer::new(config);
        for w in 0..warmup as u64 {
            drive_window(&mut scorer, w, 10, 5, 0);
        }
        scorer
    }

    #[test]
    fn warmup_learns_baseline_and_goes_nominal() {
        let mut scorer = AnomalyScorer::new(AnomalyConfig::default().warmup_windows(3));
        assert_eq!(drive_window(&mut scorer, 0, 10, 5, 0).len(), 0);
        assert_eq!(scorer.score("a", "b").unwrap().state, EdgeState::Warming);
        drive_window(&mut scorer, 1, 10, 5, 0);
        let alerts = drive_window(&mut scorer, 2, 10, 5, 0);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].from, EdgeState::Warming);
        assert_eq!(alerts[0].to, EdgeState::Nominal);
        assert!(alerts[0].detail.contains("baseline learned"));
        let score = scorer.score("a", "b").unwrap();
        assert_eq!(score.state, EdgeState::Nominal);
        let baseline = score.baseline.expect("baseline present after warmup");
        assert!((baseline.rate_ewma - 10.0).abs() < 1e-6);
        assert!(baseline.p50_us >= 4_000 && baseline.p50_us <= 6_000);
    }

    #[test]
    fn latency_spike_escalates_with_hysteresis_and_recovers() {
        let mut scorer = warmed(AnomalyConfig::default().warmup_windows(3));
        // Steady windows stay nominal.
        assert!(drive_window(&mut scorer, 3, 10, 5, 0).is_empty());
        assert_eq!(scorer.score("a", "b").unwrap().state, EdgeState::Nominal);
        // First slow window: Suspect, not yet Anomalous.
        let alerts = drive_window(&mut scorer, 4, 10, 80, 0);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].to, EdgeState::Suspect);
        let score = scorer.score("a", "b").unwrap();
        assert_eq!(score.first_suspect_at_us, Some(sec(5)));
        assert!(score.latency_z >= 3.0, "{score:?}");
        assert!(!scorer.any_anomalous());
        // Second consecutive slow window confirms.
        let alerts = drive_window(&mut scorer, 5, 10, 80, 0);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].to, EdgeState::Anomalous);
        assert!(scorer.any_anomalous());
        assert_eq!(
            scorer.score("a", "b").unwrap().anomalous_at_us,
            Some(sec(6))
        );
        // Recovery needs `recover_after` consecutive clear windows,
        // and steps down one state at a time.
        drive_window(&mut scorer, 6, 10, 5, 0);
        assert_eq!(scorer.score("a", "b").unwrap().state, EdgeState::Anomalous);
        let alerts = drive_window(&mut scorer, 7, 10, 5, 0);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].to, EdgeState::Suspect);
        drive_window(&mut scorer, 8, 10, 5, 0);
        let alerts = drive_window(&mut scorer, 9, 10, 5, 0);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].to, EdgeState::Nominal);
        // The peak survives recovery for postmortems.
        assert!(scorer.score("a", "b").unwrap().peak_score >= 3.0);
    }

    #[test]
    fn error_burst_and_rate_collapse_are_anomalies() {
        let mut scorer = warmed(AnomalyConfig::default().warmup_windows(3));
        // An all-error window scores on the error dimension.
        drive_window(&mut scorer, 3, 10, 5, 10);
        let score = scorer.score("a", "b").unwrap();
        assert_eq!(score.state, EdgeState::Suspect);
        assert!(score.error_z >= 3.0, "{score:?}");

        // A separate scorer: total silence after warmup (crashed
        // dependency) trips the rate dimension.
        let mut scorer = warmed(AnomalyConfig::default().warmup_windows(3));
        let alerts = scorer.close_window(sec(4), WINDOW);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].to, EdgeState::Suspect);
        let score = scorer.score("a", "b").unwrap();
        assert!(score.rate_z >= 3.0, "{score:?}");
        assert_eq!(score.error_z, 0.0);
        assert_eq!(score.latency_z, 0.0);
    }

    #[test]
    fn stalled_edge_scores_on_latency() {
        let mut scorer = warmed(AnomalyConfig::default().warmup_windows(3));
        // Requests keep flowing but no replies arrive: the window has
        // no latency samples, yet the edge used to reply — score as
        // if the replies are a full window late.
        for i in 0..10u64 {
            scorer.observe(
                &Event::request("a", "b", "GET", "/x").with_timestamp(sec(3) + i * 50_000),
            );
        }
        scorer.close_window(sec(4), WINDOW);
        let score = scorer.score("a", "b").unwrap();
        assert_eq!(score.state, EdgeState::Suspect, "{score:?}");
        assert!(score.latency_z >= 3.0, "{score:?}");
    }

    #[test]
    fn scores_stay_finite_on_degenerate_windows() {
        let mut scorer = AnomalyScorer::new(AnomalyConfig::default().warmup_windows(1));
        // Warmup from a single request-only window (no responses).
        for i in 0..5u64 {
            scorer.observe(&Event::request("a", "b", "GET", "/x").with_timestamp(i * 1_000));
        }
        scorer.close_window(sec(1), WINDOW);
        assert_eq!(scorer.score("a", "b").unwrap().state, EdgeState::Nominal);
        // A zero-duration window and an empty window both score
        // finite.
        scorer.close_window(sec(1), Duration::ZERO);
        for i in 0..50u64 {
            scorer.observe(&Event::request("a", "b", "GET", "/x").with_timestamp(sec(2) + i));
        }
        scorer.close_window(sec(3), WINDOW);
        let score = scorer.score("a", "b").unwrap();
        for z in [score.score, score.rate_z, score.error_z, score.latency_z] {
            assert!(z.is_finite(), "{score:?}");
        }
    }

    #[test]
    fn hysteresis_band_holds_state() {
        let config = AnomalyConfig::default()
            .warmup_windows(3)
            .suspect_z(3.0)
            .clear_z(1.5);
        let mut scorer = warmed(config);
        // Enter Suspect.
        drive_window(&mut scorer, 3, 10, 80, 0);
        assert_eq!(scorer.score("a", "b").unwrap().state, EdgeState::Suspect);
        // A mid-band window (mildly elevated latency) neither
        // escalates nor recovers — and resets the escalation streak.
        drive_window(&mut scorer, 4, 10, 8, 0);
        let score = scorer.score("a", "b").unwrap();
        assert_eq!(score.state, EdgeState::Suspect, "{score:?}");
        assert!(score.score < 3.0 && score.score >= 1.5, "{score:?}");
        // The next suspect window starts the count over: still
        // Suspect, not Anomalous.
        drive_window(&mut scorer, 5, 10, 80, 0);
        assert_eq!(scorer.score("a", "b").unwrap().state, EdgeState::Suspect);
    }

    #[test]
    fn config_and_score_serde_round_trip() {
        let config: AnomalyConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(config, AnomalyConfig::default());
        let custom: AnomalyConfig =
            serde_json::from_str(r#"{"warmup_windows":7,"suspect_z":4.5}"#).unwrap();
        assert_eq!(custom.warmup_windows, 7);
        assert_eq!(custom.suspect_z, 4.5);
        assert_eq!(custom.recover_after, 2);

        let mut scorer = warmed(AnomalyConfig::default().warmup_windows(2));
        drive_window(&mut scorer, 2, 10, 80, 0);
        let scores = scorer.scores();
        let json = serde_json::to_string(&scores).unwrap();
        let back: Vec<AnomalyScore> = serde_json::from_str(&json).unwrap();
        assert_eq!(scores, back);
        assert!(json.contains("\"state\":\"suspect\""), "{json}");

        let alert = AnomalyAlert {
            seq: 3,
            at_us: 42,
            src: "a".into(),
            dst: "b".into(),
            from: EdgeState::Nominal,
            to: EdgeState::Suspect,
            score: 5.5,
            detail: "score 5.5".into(),
        };
        let json = serde_json::to_string(&alert).unwrap();
        assert!(json.contains("\"to\":\"suspect\""), "{json}");
        let back: AnomalyAlert = serde_json::from_str(&json).unwrap();
        assert_eq!(alert, back);
        assert!(alert.to_string().contains("edge a -> b nominal -> suspect"));
    }

    #[test]
    fn seeded_scorer_skips_warmup() {
        // Learn a baseline the slow way, then hand it to a fresh
        // scorer through the JSON round trip `baselines.json` uses.
        let warm = warmed(AnomalyConfig::default().warmup_windows(3));
        let json = serde_json::to_string(&warm.baselines()).unwrap();
        let baselines: Vec<EdgeBaseline> = serde_json::from_str(&json).unwrap();
        assert_eq!(baselines.len(), 1);

        let mut seeded =
            AnomalyScorer::with_baselines(AnomalyConfig::default().warmup_windows(3), baselines);
        assert_eq!(seeded.seeded_edges(), 1);
        assert_eq!(seeded.score("a", "b").unwrap().state, EdgeState::Nominal);
        // The very first window is scored — no warmup, no "baseline
        // learned" alert.
        let alerts = drive_window(&mut seeded, 0, 10, 5, 0);
        assert!(alerts.is_empty(), "{alerts:?}");
        let score = seeded.score("a", "b").unwrap();
        assert_eq!(score.state, EdgeState::Nominal);
        assert_eq!(score.windows, 1);
        // And a deviant first window trips immediately, where a fresh
        // scorer would still be warming.
        let mut seeded = AnomalyScorer::with_baselines(
            AnomalyConfig::default().warmup_windows(3),
            warm.baselines(),
        );
        let alerts = drive_window(&mut seeded, 0, 10, 80, 0);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].to, EdgeState::Suspect);
    }

    #[test]
    fn seeded_verdicts_match_fresh_warmup() {
        // The same post-warmup stream scored by a freshly-warmed
        // scorer and by a seeded scorer ends in the same states.
        let script: [(u64, u64, u64); 6] = [
            (10, 5, 0),
            (10, 80, 0),
            (10, 80, 0),
            (10, 5, 0),
            (10, 5, 0),
            (10, 5, 0),
        ];
        let mut fresh = warmed(AnomalyConfig::default().warmup_windows(3));
        let mut seeded = AnomalyScorer::with_baselines(AnomalyConfig::default(), fresh.baselines());
        for (i, (count, latency_ms, errors)) in script.iter().enumerate() {
            drive_window(&mut fresh, 3 + i as u64, *count, *latency_ms, *errors);
            drive_window(&mut seeded, i as u64, *count, *latency_ms, *errors);
            let f = fresh.score("a", "b").unwrap();
            let s = seeded.score("a", "b").unwrap();
            assert_eq!(f.state, s.state, "window {i}: {f:?} vs {s:?}");
        }
        assert_eq!(seeded.score("a", "b").unwrap().windows, script.len() as u64);
    }

    #[test]
    fn seed_never_clobbers_live_learning() {
        let mut scorer = warmed(AnomalyConfig::default().warmup_windows(3));
        let learned = scorer.baselines()[0].clone();
        let mut stale = learned.clone();
        stale.rate_ewma = 999.0;
        scorer.seed(vec![stale]);
        assert_eq!(scorer.seeded_edges(), 0, "learned edges are not reseeded");
        assert_eq!(scorer.baselines()[0], learned);
    }

    #[test]
    fn drift_z_flags_degraded_reruns() {
        let reference = warmed(AnomalyConfig::default().warmup_windows(3)).baselines()[0].clone();
        // An identical later run barely drifts.
        assert!(
            drift_z(&reference, &reference) < 1.0,
            "self-drift = {}",
            drift_z(&reference, &reference)
        );
        // A run whose latency profile blew up drifts hard, even
        // though its own assertions may still pass.
        let mut slow = reference.clone();
        slow.p50_us *= 20;
        slow.p99_us *= 20;
        assert!(
            drift_z(&reference, &slow) >= 3.0,
            "latency drift = {}",
            drift_z(&reference, &slow)
        );
        // So does an error-rate regression.
        let mut flaky = reference.clone();
        flaky.error_rate = 0.5;
        assert!(
            drift_z(&reference, &flaky) >= 3.0,
            "error drift = {}",
            drift_z(&reference, &flaky)
        );
    }
}

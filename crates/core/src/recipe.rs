//! Recipes: the operator-facing layer tying the translator,
//! orchestrator and checker together.
//!
//! A paper recipe is a Python script that stages an outage, drives
//! load, and checks assertions (§3.2). Here a recipe is ordinary Rust
//! code over a [`TestContext`]; the [`RecipeRun`] helper records each
//! step so a structured [`RecipeReport`] can be printed at the end.
//! Chained failure scenarios (§4.2 "Chained failures") are plain
//! control flow: inspect intermediate [`Check`] results and stage the
//! next outage conditionally.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gremlin_proxy::AgentControl;
use gremlin_store::{now_micros, EventStore, Micros};
use gremlin_telemetry::{MetricsRegistry, SampleValue, TelemetrySnapshot, TimeSeriesStore};

use crate::anomaly::AnomalyScore;
use crate::checker::{AssertionChecker, Check};
use crate::error::CoreError;
use crate::flight::{FlightRecorder, FlightSummary};
use crate::graph::AppGraph;
use crate::monitor::{AlertEvent, LiveCheck, LiveMonitor, MonitorSpec, Verdict};
use crate::orchestrator::{FailureOrchestrator, OrchestrationStats};
use crate::scenarios::Scenario;
use crate::trace::TraceDigest;

/// How many anomalous edges a [`RecipeReport`] lists, worst first.
const REPORT_ANOMALY_LIMIT: usize = 8;

/// Minimum wall-clock gap between two local telemetry samples pushed
/// onto an attached timeline (a tight poll loop must not flood it).
const TIMELINE_SAMPLE_GAP_US: u64 = 250_000;

/// Everything a recipe needs: the application graph, the agent
/// fleet, and the observation store.
#[derive(Debug)]
pub struct TestContext {
    graph: AppGraph,
    orchestrator: FailureOrchestrator,
    checker: AssertionChecker,
    store: Arc<EventStore>,
    telemetry: Arc<MetricsRegistry>,
    timeline: Option<Arc<TimeSeriesStore>>,
}

impl TestContext {
    /// Creates a context over the given graph, agent handles and
    /// store, with a fresh metrics registry.
    pub fn new(
        graph: AppGraph,
        agents: Vec<Arc<dyn AgentControl>>,
        store: Arc<EventStore>,
    ) -> TestContext {
        TestContext::with_telemetry(graph, agents, store, MetricsRegistry::shared())
    }

    /// Creates a context recording control-plane and store telemetry
    /// into a caller-supplied registry — share the registry with the
    /// agents (via `AgentConfig::telemetry`) and the load generator
    /// to get one unified snapshot per recipe.
    pub fn with_telemetry(
        graph: AppGraph,
        agents: Vec<Arc<dyn AgentControl>>,
        store: Arc<EventStore>,
        telemetry: Arc<MetricsRegistry>,
    ) -> TestContext {
        store.enable_telemetry(&telemetry);
        TestContext {
            graph,
            orchestrator: FailureOrchestrator::with_telemetry(agents, &telemetry),
            checker: AssertionChecker::new(Arc::clone(&store)),
            store,
            telemetry,
            timeline: None,
        }
    }

    /// Builder-style: attaches a shared [`TimeSeriesStore`] timeline.
    /// Control-plane phase transitions (rule install, clear, warmup,
    /// abort, campaign waves) are annotated onto it, and recipe runs
    /// periodically sample the context's registry into it under the
    /// `local` target — share the store with a
    /// [`Scraper`](gremlin_proxy::Scraper) and the collector to line
    /// the phases up with the fleet's scraped series.
    pub fn with_timeline(mut self, timeline: Arc<TimeSeriesStore>) -> TestContext {
        self.timeline = Some(timeline);
        self
    }

    /// The attached timeline, if any.
    pub fn timeline(&self) -> Option<&Arc<TimeSeriesStore>> {
        self.timeline.as_ref()
    }

    /// Marks a control-plane phase transition on the attached
    /// timeline at the current wall clock. A no-op without a
    /// timeline, so callers annotate unconditionally.
    pub fn annotate(&self, phase: &str, detail: &str) {
        if let Some(timeline) = &self.timeline {
            timeline.annotate(now_micros(), phase, detail);
        }
    }

    /// The metrics registry recipes record into.
    pub fn telemetry(&self) -> &Arc<MetricsRegistry> {
        &self.telemetry
    }

    /// The logical application graph.
    pub fn graph(&self) -> &AppGraph {
        &self.graph
    }

    /// The assertion checker bound to this context's store.
    pub fn checker(&self) -> &AssertionChecker {
        &self.checker
    }

    /// The failure orchestrator.
    pub fn orchestrator(&self) -> &FailureOrchestrator {
        &self.orchestrator
    }

    /// The observation store.
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// Stages `scenario`: translates it over the graph and installs
    /// the rules on every agent.
    ///
    /// # Errors
    ///
    /// Translation and installation errors; see
    /// [`FailureOrchestrator::inject`].
    pub fn inject(&self, scenario: &Scenario) -> Result<OrchestrationStats, CoreError> {
        let stats = self.orchestrator.inject(scenario, &self.graph)?;
        self.annotate("install", &scenario.to_string());
        Ok(stats)
    }

    /// Removes every installed fault.
    ///
    /// # Errors
    ///
    /// Returns the first agent failure, if any.
    pub fn clear_faults(&self) -> Result<(), CoreError> {
        self.orchestrator.clear()?;
        self.annotate("clear", "all faults removed");
        Ok(())
    }

    /// Clears faults *and* drops all recorded observations — a fresh
    /// slate between chained test steps.
    ///
    /// # Errors
    ///
    /// Returns the first agent failure, if any.
    pub fn reset(&self) -> Result<(), CoreError> {
        self.clear_faults()?;
        self.store.clear();
        Ok(())
    }
}

/// Records the checks of one recipe execution.
#[derive(Debug)]
pub struct RecipeRun<'a> {
    name: String,
    ctx: &'a TestContext,
    checks: Vec<Check>,
    injected: Vec<String>,
    staged: Vec<Scenario>,
    baseline: TelemetrySnapshot,
    monitor: Option<LiveMonitor>,
    flight: Option<FlightRecorder>,
    flight_cursor: u64,
    last_timeline_us: u64,
}

impl<'a> RecipeRun<'a> {
    /// Starts a named recipe over `ctx`, capturing a telemetry
    /// baseline so the final report can show what this run changed.
    pub fn new(name: impl Into<String>, ctx: &'a TestContext) -> RecipeRun<'a> {
        RecipeRun {
            name: name.into(),
            ctx,
            checks: Vec::new(),
            injected: Vec::new(),
            staged: Vec::new(),
            baseline: ctx.telemetry.snapshot(),
            monitor: None,
            flight: None,
            flight_cursor: 0,
            last_timeline_us: 0,
        }
    }

    /// Attaches the recipe's `monitor:` stanza: a [`LiveMonitor`]
    /// tailing the context's store (history recorded before this call
    /// is ignored) and publishing alert telemetry into the context's
    /// registry. The final [`RecipeReport`] records each assertion's
    /// last verdict and when it first flipped to failing.
    pub fn start_monitor(&mut self, spec: MonitorSpec) -> &LiveMonitor {
        self.ctx.annotate("warmup", &self.name);
        self.monitor.insert(
            LiveMonitor::tailing(Arc::clone(&self.ctx.store), spec)
                .with_telemetry(&self.ctx.telemetry),
        )
    }

    /// The attached live monitor, if [`RecipeRun::start_monitor`] ran.
    pub fn monitor(&self) -> Option<&LiveMonitor> {
        self.monitor.as_ref()
    }

    /// Attaches a [`FlightRecorder`]: monitor records (verdict and
    /// anomaly transitions) and periodic edge matrices are persisted
    /// under a fresh per-run directory inside `root` as the run
    /// progresses, and `report.json` is written by
    /// [`RecipeRun::finish`]. Replay the directory offline with
    /// `gremlin replay <dir>`. Returns the created directory.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when no monitor is attached
    /// ([`RecipeRun::start_monitor`] must run first — the recorder
    /// persists the monitor's state); otherwise directory/file
    /// creation failures.
    pub fn start_flight_recorder(&mut self, root: impl AsRef<Path>) -> io::Result<PathBuf> {
        let Some(monitor) = self.monitor.as_ref() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "attach a monitor (start_monitor) before the flight recorder",
            ));
        };
        let window_us = (monitor.window().as_micros() as Micros).max(1);
        let recorder = FlightRecorder::create(root, &self.name, now_micros(), window_us)?;
        let dir = recorder.dir().to_path_buf();
        self.flight = Some(recorder);
        self.flight_cursor = 0;
        Ok(dir)
    }

    /// Samples the context's registry onto the attached timeline
    /// under the `local` target, throttled to one snapshot per
    /// [`TIMELINE_SAMPLE_GAP_US`]. A no-op without a timeline.
    fn sample_timeline(&mut self) {
        let Some(timeline) = self.ctx.timeline() else {
            return;
        };
        let now_us = now_micros();
        if now_us < self.last_timeline_us.saturating_add(TIMELINE_SAMPLE_GAP_US) {
            return;
        }
        self.last_timeline_us = now_us;
        timeline.ingest_snapshot("local", now_us, &self.ctx.telemetry.snapshot());
    }

    /// Drains fresh monitor records into the flight recorder and logs
    /// a (throttled) matrix snapshot. Best-effort: on disk trouble
    /// the recorder is detached — a full disk should degrade the
    /// postmortem artifact, not fail the experiment.
    fn record_flight(&mut self) {
        self.sample_timeline();
        let (Some(monitor), Some(flight)) = (self.monitor.as_ref(), self.flight.as_mut()) else {
            return;
        };
        let (records, next) = monitor.records_after(self.flight_cursor);
        let ok = flight.append_records(&records).is_ok() && flight.record_snapshot(monitor).is_ok();
        self.flight_cursor = next;
        if !ok {
            self.flight = None;
        }
    }

    /// Polls the attached monitor, returning any fresh verdict
    /// transitions (empty without a monitor).
    pub fn poll_monitor(&mut self) -> Vec<AlertEvent> {
        let alerts = self
            .monitor
            .as_ref()
            .map(|monitor| monitor.poll())
            .unwrap_or_default();
        self.record_flight();
        alerts
    }

    /// Polls the monitor and, when any streaming assertion has
    /// reached the terminal [`Verdict::Violated`], tears the staged
    /// faults down so the experiment stops early. Returns whether the
    /// run aborted.
    ///
    /// # Errors
    ///
    /// Propagates agent failures from clearing the rules.
    pub fn abort_if_violated(&mut self) -> Result<bool, CoreError> {
        let violated = match &self.monitor {
            Some(monitor) => {
                monitor.poll();
                monitor.violated()
            }
            None => false,
        };
        self.record_flight();
        if violated {
            self.ctx.annotate("abort", &self.name);
            self.ctx.clear_faults()?;
        }
        Ok(violated)
    }

    /// The context this run executes against.
    pub fn ctx(&self) -> &TestContext {
        self.ctx
    }

    /// Stages a scenario, recording it in the report.
    ///
    /// # Errors
    ///
    /// Propagates [`TestContext::inject`] failures.
    pub fn inject(&mut self, scenario: &Scenario) -> Result<OrchestrationStats, CoreError> {
        let stats = self.ctx.inject(scenario)?;
        self.injected.push(scenario.to_string());
        self.staged.push(scenario.clone());
        Ok(stats)
    }

    /// Records a check result, returning whether it passed (for
    /// conditional chaining).
    pub fn check(&mut self, check: Check) -> bool {
        let passed = check.passed;
        self.checks.push(check);
        passed
    }

    /// `true` while every recorded check has passed.
    pub fn passing(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Finishes the run, producing the report. The report carries the
    /// delta between the context's telemetry now and the baseline
    /// captured when the run started. An attached monitor is
    /// finalized (its partial window closed) and its verdicts and
    /// anomalous edges embedded; a `Violated` assertion fails the run
    /// even when every recorded post-hoc check passed. An attached
    /// flight recorder is drained one last time and its `report.json`
    /// written.
    pub fn finish(mut self) -> RecipeReport {
        let monitor = match &self.monitor {
            Some(monitor) => {
                monitor.finalize();
                monitor.verdicts()
            }
            None => Vec::new(),
        };
        let anomalies = self
            .monitor
            .as_ref()
            .map(|monitor| {
                let mut scores: Vec<AnomalyScore> = monitor
                    .anomaly_scores()
                    .into_iter()
                    .filter(|score| score.first_suspect_at_us.is_some())
                    .collect();
                scores.sort_by(|a, b| {
                    b.peak_score
                        .partial_cmp(&a.peak_score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                scores.truncate(REPORT_ANOMALY_LIMIT);
                scores
            })
            .unwrap_or_default();
        self.record_flight(); // finalize() may have closed a partial window
        let passed = self.passing() && monitor.iter().all(|c| c.verdict != Verdict::Violated);
        let metrics_delta = self.ctx.telemetry.snapshot().delta(&self.baseline);
        if let Some(timeline) = self.ctx.timeline() {
            // Closing sample, bypassing the throttle: the dumped
            // history must include the run's final state.
            timeline.ingest_snapshot("local", now_micros(), &self.ctx.telemetry.snapshot());
        }
        let flight_dir = match (self.flight.take(), self.monitor.as_ref()) {
            (Some(mut flight), live) => {
                if let Some(live) = live {
                    let _ = flight.record_snapshot_now(live);
                    // Persist the learned baselines so the next run
                    // can seed its scorer and skip the warmup.
                    let _ = flight.record_baselines(&live.learned_baselines());
                }
                if let Some(timeline) = self.ctx.timeline() {
                    // Metric history + phase annotations, for
                    // offline re-rendering by `gremlin replay`.
                    let _ = flight.record_timeseries(timeline);
                }
                let summary = FlightSummary {
                    name: self.name.clone(),
                    passed,
                    injected: self.injected.clone(),
                    checks: self.checks.clone(),
                    monitor: monitor.clone(),
                    anomalies: anomalies.clone(),
                    scenarios: self.staged.clone(),
                };
                flight.finish(&summary).ok()
            }
            (None, _) => None,
        };
        RecipeReport {
            name: self.name,
            injected: self.injected,
            checks: self.checks,
            monitor,
            anomalies,
            passed,
            metrics_delta,
            traces: TraceDigest::from_store(&self.ctx.store),
            flight_dir,
        }
    }
}

/// The outcome of a recipe execution.
///
/// Serializable end to end (checks, live verdicts, anomaly scores,
/// metrics delta, trace digest), so distributed campaign operators can
/// stream complete reports back to the coordinating host unchanged.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecipeReport {
    /// Recipe name.
    pub name: String,
    /// Scenarios staged, in order.
    pub injected: Vec<String>,
    /// Check results, in order.
    pub checks: Vec<Check>,
    /// Final status of each streaming assertion from the run's
    /// `monitor:` stanza (empty when none was attached), including
    /// when each first flipped to failing.
    pub monitor: Vec<LiveCheck>,
    /// Edges whose anomaly score ever left `Nominal`, worst peak
    /// score first (at most 8 listed; empty without an
    /// anomaly-configured monitor).
    pub anomalies: Vec<AnomalyScore>,
    /// `true` when every check passed and no monitored assertion was
    /// violated.
    pub passed: bool,
    /// What the run changed in the context's metrics registry
    /// (counters and histograms as before/after deltas, gauges at
    /// their final value).
    pub metrics_delta: TelemetrySnapshot,
    /// Trace statistics over every flow the store observed: slowest
    /// flow, deepest causal tree, faulted-span count.
    pub traces: TraceDigest,
    /// The flight-recorder artifact directory, when one was attached
    /// and its final report was written (`gremlin replay` re-renders
    /// it).
    pub flight_dir: Option<PathBuf>,
}

fn format_sample_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{{{}}}", pairs.join(","))
    }
}

impl RecipeReport {
    /// Counter changes from the run's metrics delta, as
    /// `(series, increment)` pairs ready for display.
    pub fn counter_changes(&self) -> Vec<(String, u64)> {
        self.metrics_delta
            .samples
            .iter()
            .filter_map(|sample| match sample.value {
                SampleValue::Counter(v) => Some((
                    format!("{}{}", sample.name, format_sample_labels(&sample.labels)),
                    v,
                )),
                _ => None,
            })
            .collect()
    }

    /// Renders the report as a Markdown section (for CI summaries
    /// and postmortem docs).
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## Recipe `{}` — {}\n\n",
            self.name,
            if self.passed {
                "✅ passed"
            } else {
                "❌ failed"
            }
        );
        if !self.injected.is_empty() {
            out.push_str("**Staged failures**\n\n");
            for scenario in &self.injected {
                out.push_str(&format!("- {scenario}\n"));
            }
            out.push('\n');
        }
        if !self.checks.is_empty() {
            out.push_str("| Check | Result | Details |\n|---|---|---|\n");
            for check in &self.checks {
                out.push_str(&format!(
                    "| {} | {} | {} |\n",
                    check.name.replace('|', "\\|"),
                    if check.passed { "pass" } else { "**fail**" },
                    check.details.replace('|', "\\|")
                ));
            }
        }
        if !self.monitor.is_empty() {
            out.push_str("\n**Live monitor**\n\n");
            out.push_str("| Assertion | Verdict | First failing | Detail |\n|---|---|---|---|\n");
            for live in &self.monitor {
                out.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    live.name.replace('|', "\\|"),
                    live.verdict,
                    live.first_failing_at_us
                        .map(|at| format!("{at}us"))
                        .unwrap_or_else(|| "-".to_string()),
                    live.detail.replace('|', "\\|")
                ));
            }
        }
        if !self.anomalies.is_empty() {
            out.push_str("\n**Anomalous edges**\n\n");
            out.push_str("| Edge | State | Peak score | First suspect |\n|---|---|---|---|\n");
            for score in &self.anomalies {
                out.push_str(&format!(
                    "| {} -> {} | {} | {:.1} | {} |\n",
                    score.src,
                    score.dst,
                    score.state,
                    score.peak_score,
                    score
                        .first_suspect_at_us
                        .map(|at| format!("{at}us"))
                        .unwrap_or_else(|| "-".to_string()),
                ));
            }
        }
        let counters = self.counter_changes();
        if !counters.is_empty() {
            out.push_str("\n**Metrics delta**\n\n");
            for (series, value) in counters {
                out.push_str(&format!("- `{series}` +{value}\n"));
            }
        }
        if self.traces.flows > 0 {
            out.push_str(&format!("\n**Traces**: {}\n", self.traces));
        }
        out
    }
}

impl fmt::Display for RecipeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "recipe {:?}: {}",
            self.name,
            if self.passed { "PASSED" } else { "FAILED" }
        )?;
        for scenario in &self.injected {
            writeln!(f, "  staged: {scenario}")?;
        }
        for check in &self.checks {
            writeln!(f, "  {check}")?;
        }
        for live in &self.monitor {
            write!(f, "  monitor: {live}")?;
            if let Some(at) = live.first_failing_at_us {
                write!(f, " (first failing at {at}us)")?;
            }
            writeln!(f)?;
        }
        for score in &self.anomalies {
            write!(
                f,
                "  anomaly: {} -> {} {} (peak score {:.1}",
                score.src, score.dst, score.state, score.peak_score
            )?;
            if let Some(at) = score.first_suspect_at_us {
                write!(f, ", first suspect at {at}us")?;
            }
            writeln!(f, ")")?;
        }
        if let Some(dir) = &self.flight_dir {
            writeln!(f, "  flight recording: {}", dir.display())?;
        }
        for (series, value) in self.counter_changes() {
            writeln!(f, "  metric: {series} +{value}")?;
        }
        if self.traces.flows > 0 {
            writeln!(f, "  traces: {}", self.traces)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Check;
    use gremlin_proxy::{ProxyError, Rule};
    use parking_lot::Mutex;

    struct FakeAgent {
        service: String,
        rules: Mutex<Vec<Rule>>,
    }

    impl AgentControl for FakeAgent {
        fn service_name(&self) -> String {
            self.service.clone()
        }
        fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
            self.rules.lock().extend(rules.iter().cloned());
            Ok(())
        }
        fn clear_rules(&self) -> Result<(), ProxyError> {
            self.rules.lock().clear();
            Ok(())
        }
        fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
            Ok(self.rules.lock().clone())
        }
    }

    fn context() -> (TestContext, Arc<FakeAgent>) {
        let agent = Arc::new(FakeAgent {
            service: "a".to_string(),
            rules: Mutex::new(Vec::new()),
        });
        let ctx = TestContext::new(
            AppGraph::from_edges(vec![("a", "b")]),
            vec![Arc::clone(&agent) as Arc<dyn AgentControl>],
            EventStore::shared(),
        );
        (ctx, agent)
    }

    #[test]
    fn inject_and_clear() {
        let (ctx, agent) = context();
        let stats = ctx.inject(&Scenario::abort("a", "b", 503)).unwrap();
        assert_eq!(stats.rules, 1);
        assert_eq!(agent.rules.lock().len(), 1);
        ctx.clear_faults().unwrap();
        assert!(agent.rules.lock().is_empty());
    }

    #[test]
    fn reset_clears_store_too() {
        let (ctx, _agent) = context();
        ctx.store()
            .record_event(gremlin_store::Event::request("a", "b", "GET", "/"));
        assert_eq!(ctx.store().len(), 1);
        ctx.reset().unwrap();
        assert!(ctx.store().is_empty());
    }

    #[test]
    fn recipe_run_records_everything() {
        let (ctx, _agent) = context();
        let mut run = RecipeRun::new("overload-test", &ctx);
        run.inject(&Scenario::abort("a", "b", 503)).unwrap();
        assert!(run.check(Check {
            name: "first".into(),
            passed: true,
            details: "ok".into(),
        }));
        assert!(run.passing());
        assert!(!run.check(Check {
            name: "second".into(),
            passed: false,
            details: "nope".into(),
        }));
        assert!(!run.passing());
        let report = run.finish();
        assert!(!report.passed);
        assert_eq!(report.checks.len(), 2);
        assert_eq!(report.injected.len(), 1);
        let text = report.to_string();
        assert!(text.contains("FAILED"));
        assert!(text.contains("[PASS] first"));
        assert!(text.contains("[FAIL] second"));
    }

    #[test]
    fn markdown_rendering() {
        let (ctx, _agent) = context();
        let mut run = RecipeRun::new("md-test", &ctx);
        run.inject(&Scenario::abort("a", "b", 503)).unwrap();
        run.check(Check {
            name: "A|B".into(),
            passed: false,
            details: "pipe | inside".into(),
        });
        let md = run.finish().to_markdown();
        assert!(md.contains("## Recipe `md-test` — ❌ failed"));
        assert!(md.contains("**Staged failures**"));
        assert!(md.contains("| A\\|B | **fail** | pipe \\| inside |"));
    }

    #[test]
    fn empty_recipe_passes() {
        let (ctx, _agent) = context();
        let report = RecipeRun::new("noop", &ctx).finish();
        assert!(report.passed);
        assert!(report.metrics_delta.is_empty());
        assert!(report.to_string().contains("PASSED"));
    }

    #[test]
    fn report_carries_trace_digest() {
        let (ctx, _agent) = context();
        let run = RecipeRun::new("traced", &ctx);
        ctx.store().record_event(
            gremlin_store::Event::request("a", "b", "GET", "/x")
                .with_request_id("flow-9")
                .with_span_id("s1"),
        );
        let report = run.finish();
        assert_eq!(report.traces.flows, 1);
        assert_eq!(report.traces.spans, 1);
        assert_eq!(report.traces.slowest.as_ref().unwrap().request_id, "flow-9");
        assert!(report.to_string().contains("traces: 1 flow(s)"));
        assert!(report.to_markdown().contains("**Traces**"));
    }

    #[test]
    fn monitor_stanza_records_flips_and_aborts_early() {
        use crate::monitor::{MonitorSpec, StreamingAssertion};
        use std::time::Duration;

        let (ctx, agent) = context();
        ctx.inject(&Scenario::abort("a", "b", 503)).unwrap();
        assert_eq!(agent.rules.lock().len(), 1);

        let mut run = RecipeRun::new("monitored", &ctx);
        run.start_monitor(
            MonitorSpec::new(Duration::from_millis(10))
                .violate_after(1)
                .assert(StreamingAssertion::ErrorRateAtMost {
                    src: "a".into(),
                    dst: "b".into(),
                    max_ratio: 0.1,
                }),
        );

        // All-503 traffic; event timestamps drive the 10ms windows,
        // so the reply at 15ms closes the first (all-error) window.
        for i in 0..4u64 {
            let ts = i * 7_000;
            ctx.store().record_event(
                gremlin_store::Event::request("a", "b", "GET", "/x").with_timestamp(ts),
            );
            let mut reply = gremlin_store::Event::response("a", "b", 503, Duration::from_millis(1));
            reply.timestamp_us = ts + 1_000;
            ctx.store().record_event(reply);
        }

        assert!(run.abort_if_violated().unwrap(), "must abort on Violated");
        assert!(agent.rules.lock().is_empty(), "early abort clears rules");

        let report = run.finish();
        assert!(!report.passed, "a violated assertion fails the run");
        assert_eq!(report.monitor.len(), 1);
        assert_eq!(report.monitor[0].verdict, Verdict::Violated);
        assert!(report.monitor[0].first_failing_at_us.is_some());
        let text = report.to_string();
        assert!(text.contains("monitor: [violated]"), "{text}");
        assert!(text.contains("first failing at"), "{text}");
        assert!(report.to_markdown().contains("**Live monitor**"));
    }

    #[test]
    fn runs_without_monitor_report_no_live_checks() {
        let (ctx, _agent) = context();
        let mut run = RecipeRun::new("plain", &ctx);
        assert!(run.monitor().is_none());
        assert!(run.poll_monitor().is_empty());
        let report = run.finish();
        assert!(report.monitor.is_empty());
        assert!(report.anomalies.is_empty());
        assert!(report.flight_dir.is_none());
        assert!(report.passed);
    }

    #[test]
    fn flight_recorder_requires_a_monitor() {
        let (ctx, _agent) = context();
        let mut run = RecipeRun::new("no-monitor", &ctx);
        let err = run.start_flight_recorder(std::env::temp_dir()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn flight_recorder_persists_the_run_timeline() {
        use crate::flight::FlightLog;
        use crate::monitor::{MonitorSpec, StreamingAssertion};
        use std::time::Duration;

        let root =
            std::env::temp_dir().join(format!("gremlin-recipe-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);

        let (ctx, _agent) = context();
        let mut run = RecipeRun::new("flight-test", &ctx);
        run.start_monitor(
            MonitorSpec::new(Duration::from_millis(10))
                .violate_after(1)
                .assert(StreamingAssertion::ErrorRateAtMost {
                    src: "a".into(),
                    dst: "b".into(),
                    max_ratio: 0.1,
                }),
        );
        let dir = run.start_flight_recorder(&root).unwrap();
        assert!(dir.starts_with(&root));

        for i in 0..4u64 {
            let ts = i * 7_000;
            ctx.store().record_event(
                gremlin_store::Event::request("a", "b", "GET", "/x").with_timestamp(ts),
            );
            let mut reply = gremlin_store::Event::response("a", "b", 503, Duration::from_millis(1));
            reply.timestamp_us = ts + 1_000;
            ctx.store().record_event(reply);
        }
        assert!(run.abort_if_violated().unwrap());

        let report = run.finish();
        assert_eq!(report.flight_dir.as_deref(), Some(dir.as_path()));

        let log = FlightLog::load(&dir).unwrap();
        assert_eq!(log.meta.recipe, "flight-test");
        assert_eq!(log.meta.window_us, 10_000);
        assert!(!log.records.is_empty(), "verdict flips must be persisted");
        assert!(
            !log.snapshots.is_empty(),
            "matrix snapshots must be persisted"
        );
        let summary = log.report.as_ref().expect("report.json written by finish");
        assert!(!summary.passed);
        assert_eq!(summary.monitor.len(), 1);
        let timeline = log.render_timeline();
        assert!(timeline.contains("violated"), "{timeline}");
        assert!(timeline.contains("outcome: FAILED"), "{timeline}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn timeline_captures_phases_and_local_samples() {
        use crate::monitor::{MonitorSpec, StreamingAssertion};
        use std::time::Duration;

        let agent = Arc::new(FakeAgent {
            service: "a".to_string(),
            rules: Mutex::new(Vec::new()),
        });
        let ctx = TestContext::new(
            AppGraph::from_edges(vec![("a", "b")]),
            vec![Arc::clone(&agent) as Arc<dyn AgentControl>],
            EventStore::shared(),
        )
        .with_timeline(TimeSeriesStore::shared());
        let timeline = Arc::clone(ctx.timeline().expect("timeline attached"));

        let mut run = RecipeRun::new("timed", &ctx);
        run.start_monitor(MonitorSpec::new(Duration::from_millis(10)).assert(
            StreamingAssertion::ErrorRateAtMost {
                src: "a".into(),
                dst: "b".into(),
                max_ratio: 0.5,
            },
        ));
        run.inject(&Scenario::abort("a", "b", 503)).unwrap();
        run.poll_monitor();
        ctx.clear_faults().unwrap();
        let _ = run.finish();

        let phases: Vec<String> = timeline
            .annotations(0, u64::MAX)
            .into_iter()
            .map(|a| a.phase)
            .collect();
        assert_eq!(phases, vec!["warmup", "install", "clear"], "{phases:?}");
        let install = &timeline.annotations(0, u64::MAX)[1];
        assert!(install.detail.contains("a -> b"), "{}", install.detail);

        // The poll loop sampled the context's registry under `local`:
        // the staged rule shows up as a control-plane counter series.
        let point = timeline
            .latest("gremlin_control_rule_pushes_total", "local")
            .expect("local telemetry sampled onto the timeline");
        assert!(point.value >= 1.0, "{point:?}");
    }

    #[test]
    fn report_carries_metrics_delta() {
        let (ctx, _agent) = context();
        // Activity before the run starts is excluded by the baseline.
        ctx.inject(&Scenario::abort("a", "b", 503)).unwrap();
        let mut run = RecipeRun::new("delta", &ctx);
        run.inject(&Scenario::abort("a", "b", 404)).unwrap();
        ctx.store()
            .record_event(gremlin_store::Event::request("a", "b", "GET", "/"));
        let report = run.finish();
        assert_eq!(
            report
                .metrics_delta
                .counter_value("gremlin_control_rule_pushes_total", &[("service", "a")]),
            Some(1)
        );
        assert_eq!(
            report
                .metrics_delta
                .counter_value("gremlin_store_appends_total", &[]),
            Some(1)
        );
        let text = report.to_string();
        assert!(
            text.contains("metric: gremlin_control_rule_pushes_total{service=a} +1"),
            "unexpected report: {text}"
        );
        assert!(report.to_markdown().contains("**Metrics delta**"));
    }
}

//! Property-based tests for the assertion checker's algebra and the
//! recipe translator.

use std::time::Duration;

use proptest::prelude::*;

use gremlin_core::{
    at_most_requests, combine, num_requests, request_rate, AppGraph, CombineStep, Scenario, View,
};
use gremlin_store::{AppliedFault, Event, Micros, Pattern};

#[derive(Debug, Clone)]
struct EventSpec {
    is_request: bool,
    status: u16,
    timestamp: Micros,
    faulted: bool,
}

fn event_specs() -> impl Strategy<Value = Vec<EventSpec>> {
    proptest::collection::vec(
        (
            any::<bool>(),
            prop_oneof![Just(200u16), Just(503), Just(0), Just(404)],
            0u64..10_000_000,
            any::<bool>(),
        )
            .prop_map(|(is_request, status, timestamp, faulted)| EventSpec {
                is_request,
                status,
                timestamp,
                faulted,
            }),
        0..80,
    )
    .prop_map(|mut specs| {
        specs.sort_by_key(|s| s.timestamp);
        specs
    })
}

fn materialize(specs: &[EventSpec]) -> Vec<Event> {
    specs
        .iter()
        .enumerate()
        .map(|(index, spec)| {
            let mut event = if spec.is_request {
                Event::request("a", "b", "GET", "/x")
            } else {
                Event::response("a", "b", spec.status, Duration::from_millis(5))
            };
            event.timestamp_us = spec.timestamp;
            event.request_id = Some(format!("test-{index}").into());
            if spec.faulted {
                event.fault = Some(AppliedFault::Abort { status: 503 });
            }
            event
        })
        .collect()
}

proptest! {
    /// `num_requests` equals the naive count under both views.
    #[test]
    fn num_requests_matches_naive(specs in event_specs(), window_us in 1u64..20_000_000) {
        let events = materialize(&specs);
        let naive_observed = events.iter().filter(|e| e.kind.is_request()).count();
        prop_assert_eq!(num_requests(&events, None, View::Observed), naive_observed);

        if let Some(first) = events.first() {
            let cutoff = first.timestamp_us + window_us;
            let naive_windowed = events
                .iter()
                .filter(|e| e.kind.is_request() && e.timestamp_us < cutoff)
                .count();
            prop_assert_eq!(
                num_requests(&events, Some(Duration::from_micros(window_us)), View::Observed),
                naive_windowed
            );
        }
    }

    /// `at_most_requests` is monotone in the budget.
    #[test]
    fn at_most_is_monotone(specs in event_specs(), budget in 0usize..50) {
        let events = materialize(&specs);
        let window = Duration::from_secs(60);
        if at_most_requests(&events, window, View::Observed, budget) {
            prop_assert!(at_most_requests(&events, window, View::Observed, budget + 1));
        }
    }

    /// An empty step list always combines to true; a single
    /// impossible step to false.
    #[test]
    fn combine_base_cases(specs in event_specs()) {
        let events = materialize(&specs);
        prop_assert!(combine(&events, &[]));
        let impossible = CombineStep::CheckStatus {
            status: 999,
            num_match: events.len() + 1,
            view: View::Observed,
        };
        prop_assert!(!combine(&events, &[impossible]));
    }

    /// A satisfied CheckStatus step consumes exactly through its
    /// `num_match`-th matching event: appending the same step twice
    /// requires twice the matches.
    #[test]
    fn combine_checkstatus_consumption(specs in event_specs(), need in 1usize..5) {
        let events = materialize(&specs);
        let matches_total = events
            .iter()
            .filter(|e| e.status() == Some(503))
            .count();
        let step = CombineStep::CheckStatus {
            status: 503,
            num_match: need,
            view: View::Observed,
        };
        let single = combine(&events, std::slice::from_ref(&step));
        prop_assert_eq!(single, matches_total >= need);
        let double = combine(&events, &[step.clone(), step]);
        prop_assert_eq!(double, matches_total >= 2 * need);
    }

    /// Request rate scales inversely with a uniform time dilation.
    #[test]
    fn request_rate_scales(specs in event_specs()) {
        let events = materialize(&specs);
        let rate = request_rate(&events);
        prop_assume!(rate.is_finite() && rate > 0.0);
        let dilated: Vec<Event> = events
            .iter()
            .cloned()
            .map(|mut e| {
                e.timestamp_us *= 2;
                e
            })
            .collect();
        let dilated_rate = request_rate(&dilated);
        prop_assert!((dilated_rate - rate / 2.0).abs() < rate * 1e-6);
    }
}

// ---------------------------------------------------------------------------
// Recipe-translator properties
// ---------------------------------------------------------------------------

fn arbitrary_graph() -> impl Strategy<Value = AppGraph> {
    proptest::collection::vec((0usize..6, 0usize..6), 1..15).prop_map(|pairs| {
        let mut graph = AppGraph::new();
        for (a, b) in pairs {
            if a != b {
                graph.add_edge(format!("svc-{a}"), format!("svc-{b}"));
            } else {
                graph.add_service(format!("svc-{a}"));
            }
        }
        graph
    })
}

proptest! {
    /// Every rule a scenario translates to targets an edge of the
    /// graph, carries the scenario's pattern, and has a valid
    /// probability.
    #[test]
    fn translated_rules_respect_graph(graph in arbitrary_graph(), target in 0usize..6) {
        let service = format!("svc-{target}");
        prop_assume!(graph.contains(&service));
        let scenarios = vec![
            Scenario::crash(service.clone()).with_pattern("test-*"),
            Scenario::hang_for(service.clone(), Duration::from_secs(1)).with_pattern("test-*"),
            Scenario::overload(service.clone()).with_pattern("test-*"),
            Scenario::fake_success(service.clone(), "k", "v").with_pattern("test-*"),
        ];
        for scenario in scenarios {
            match scenario.to_rules(&graph) {
                Ok(rules) => {
                    prop_assert!(!rules.is_empty());
                    for rule in rules {
                        prop_assert!(graph.has_edge(&rule.src, &rule.dst), "{} -> {}", rule.src, rule.dst);
                        prop_assert_eq!(&rule.dst, &service);
                        prop_assert_eq!(&rule.pattern, &Pattern::new("test-*"));
                        prop_assert!(rule.validate().is_ok());
                    }
                }
                Err(_) => {
                    // Only legal when nothing depends on the service.
                    prop_assert!(graph.dependents(&service).is_empty());
                }
            }
        }
    }

    /// Partition rules cover exactly the cut, in both directions.
    #[test]
    fn partition_rules_equal_cut(graph in arbitrary_graph()) {
        let services = graph.services();
        prop_assume!(services.len() >= 2);
        let (group_a, group_b) = services.split_at(services.len() / 2);
        let cut = graph.cut(group_a, group_b).unwrap();
        let scenario = Scenario::partition(group_a.to_vec(), group_b.to_vec());
        match scenario.to_rules(&graph) {
            Ok(rules) => {
                let mut rule_edges: Vec<(String, String)> =
                    rules.iter().map(|r| (r.src.clone(), r.dst.clone())).collect();
                rule_edges.sort();
                let mut expected = cut.clone();
                expected.sort();
                prop_assert_eq!(rule_edges, expected);
            }
            Err(_) => prop_assert!(cut.is_empty()),
        }
    }

    /// `dependents` and `dependencies` are converses.
    #[test]
    fn graph_dependents_converse(graph in arbitrary_graph()) {
        for service in graph.services() {
            for dependent in graph.dependents(&service) {
                prop_assert!(graph.dependencies(&dependent).contains(&service));
                prop_assert!(graph.has_edge(&dependent, &service));
            }
            for dependency in graph.dependencies(&service) {
                prop_assert!(graph.dependents(&dependency).contains(&service));
            }
        }
    }
}

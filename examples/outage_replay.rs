//! Replaying the Table 1 outages with the §5 recipe library:
//!
//! * Stackdriver 2013 — Cassandra crash cascading into the message
//!   bus (Parse.ly 2015 and CircleCI 2015 follow the same shape);
//! * BBC Online 2014 / Joyent 2015 — database overload taking out
//!   dependent services;
//! * a network partition along a cut of the application graph.
//!
//! Each scenario runs against a naive deployment (recipes flag the
//! missing patterns) and a hardened one (recipes pass).
//!
//! Run with: `cargo run --example outage_replay`

use std::error::Error;
use std::time::Duration;

use gremlin::core::{AppGraph, RecipeRun, Scenario, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::resilience::CircuitBreakerConfig;
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::Pattern;

fn pipeline(policy: ResiliencePolicy) -> Result<(Deployment, TestContext), Box<dyn Error>> {
    // publisher -> messagebus -> cassandra
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("cassandra", StaticResponder::ok("stored")))
        .service(
            ServiceSpec::new(
                "messagebus",
                Aggregator::new(vec!["cassandra".into()], "/write"),
            )
            .dependency("cassandra", policy.clone()),
        )
        .service(
            ServiceSpec::new(
                "publisher",
                Aggregator::new(vec!["messagebus".into()], "/publish"),
            )
            .dependency("messagebus", policy),
        )
        .ingress("user", "publisher")
        .build()?;
    let graph = AppGraph::from_edges(vec![
        ("user", "publisher"),
        ("publisher", "messagebus"),
        ("messagebus", "cassandra"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

/// §5: Crash('cassandra'); every dependent of the message bus needs
/// timeouts or a breaker, or it will block.
fn stackdriver_recipe(policy: ResiliencePolicy, label: &str) -> Result<bool, Box<dyn Error>> {
    let (deployment, ctx) = pipeline(policy)?;
    let mut recipe = RecipeRun::new(format!("stackdriver-cascade-{label}"), &ctx);
    recipe
        .inject(&Scenario::hang_for("cassandra", Duration::from_secs(2)).with_pattern("test-*"))?;
    LoadGenerator::new(deployment.entry_addr("publisher").expect("entry"))
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(10)))
        .run_sequential(3);
    let pattern = Pattern::new("test-*");
    for dependent in ctx.graph().dependents("messagebus") {
        let timeouts = ctx
            .checker()
            .has_timeouts(&dependent, Duration::from_secs(1), &pattern);
        let breaker = ctx.checker().has_circuit_breaker(
            &dependent,
            "messagebus",
            5,
            Duration::from_secs(30),
            1,
            &pattern,
        );
        let has_timeouts = recipe.check(timeouts);
        if !has_timeouts && !breaker.passed {
            println!("  -> {dependent}: WILL BLOCK ON MESSAGE BUS");
        }
    }
    let report = recipe.finish();
    println!("{report}");
    Ok(report.passed)
}

/// §5: Overload('database'); dependents need a circuit breaker or
/// they will pile onto the struggling database.
fn bbc_recipe(policy: ResiliencePolicy, label: &str) -> Result<bool, Box<dyn Error>> {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("database", StaticResponder::ok("rows")))
        .service(
            ServiceSpec::new("iplayer", Aggregator::new(vec!["database".into()], "/q"))
                .dependency("database", policy),
        )
        .ingress("user", "iplayer")
        .build()?;
    let graph = AppGraph::from_edges(vec![("user", "iplayer"), ("iplayer", "database")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    let mut recipe = RecipeRun::new(format!("bbc-database-overload-{label}"), &ctx);
    recipe.inject(
        &Scenario::overload_with("database", 503, 1.0, Duration::from_millis(20))
            .with_pattern("test-*"),
    )?;
    LoadGenerator::new(deployment.entry_addr("iplayer").expect("entry"))
        .id_prefix("test")
        .run_sequential(25);
    for dependent in ctx.graph().dependents("database") {
        if dependent == "user" {
            continue;
        }
        let breaker = ctx.checker().has_circuit_breaker(
            &dependent,
            "database",
            5,
            Duration::from_secs(30),
            1,
            &Pattern::new("test-*"),
        );
        if !recipe.check(breaker) {
            println!("  -> {dependent}: WILL OVERLOAD DATABASE");
        }
    }
    let report = recipe.finish();
    println!("{report}");
    Ok(report.passed)
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("===== Stackdriver 2013: middleware cascade =====");
    println!("--- naive services (no timeouts) ---");
    let naive = stackdriver_recipe(ResiliencePolicy::new(), "naive")?;
    println!("--- hardened services (300ms timeouts) ---");
    let hardened = stackdriver_recipe(
        ResiliencePolicy::new().timeout(Duration::from_millis(300)),
        "hardened",
    )?;
    assert!(!naive && hardened, "recipes must separate the two builds");

    println!("\n===== BBC Online 2014 / Joyent 2015: database overload =====");
    println!("--- naive service (no breaker) ---");
    let naive = bbc_recipe(
        ResiliencePolicy::new().timeout(Duration::from_secs(2)),
        "naive",
    )?;
    println!("--- hardened service (circuit breaker) ---");
    let hardened = bbc_recipe(
        ResiliencePolicy::new()
            .timeout(Duration::from_secs(2))
            .circuit_breaker(CircuitBreakerConfig {
                failure_threshold: 5,
                open_duration: Duration::from_secs(60),
                success_threshold: 1,
            }),
        "hardened",
    )?;
    assert!(!naive && hardened, "recipes must separate the two builds");

    println!("\n===== Network partition along a graph cut =====");
    let (deployment, ctx) = pipeline(ResiliencePolicy::new().timeout(Duration::from_secs(1)))?;
    ctx.inject(
        &Scenario::partition(
            vec!["publisher".to_string()],
            vec!["messagebus".to_string(), "cassandra".to_string()],
        )
        .with_pattern("test-*"),
    )?;
    let resp = deployment.call_with_id("publisher", "/", "test-1")?;
    println!(
        "publisher cut off from the bus -> GET / = {} {}",
        resp.status(),
        resp.body_str()
    );
    Ok(())
}

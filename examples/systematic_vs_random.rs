//! Systematic recipes vs randomized fault injection.
//!
//! The paper argues (§1, §8) that systematic, feedback-driven testing
//! beats Chaos-Monkey-style randomized injection: recipes state what
//! should happen and the checker pinpoints the broken pattern, while
//! random faults produce symptoms an operator still has to diagnose.
//!
//! This example plants one bug — the `web -> svc-c` edge has **no
//! timeout** — in an otherwise hardened four-backend application,
//! then lets both approaches hunt for it:
//!
//! * the §9-style [`RecipeGenerator`] derives the systematic test
//!   matrix from the graph and names the failing pattern exactly;
//! * a seeded [`ChaosMonkey`] injects random faults and we watch for
//!   user-visible symptoms.
//!
//! Run with: `cargo run --example systematic_vs_random`

use std::error::Error;
use std::time::Duration;

use gremlin::core::autogen::{Expectations, RecipeGenerator};
use gremlin::core::chaos::ChaosMonkey;
use gremlin::core::{AppGraph, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::resilience::{Backoff, BulkheadConfig, CircuitBreakerConfig, RetryPolicy};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};

const BACKENDS: [&str; 4] = ["svc-a", "svc-b", "svc-c", "svc-d"];
const BUGGED: &str = "svc-c";

fn hardened() -> ResiliencePolicy {
    ResiliencePolicy::new()
        .timeout(Duration::from_millis(100))
        .retry(RetryPolicy::new(3).with_backoff(Backoff::none()))
        .circuit_breaker(CircuitBreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_secs(5),
            success_threshold: 1,
        })
        .bulkhead(BulkheadConfig { max_concurrent: 8 })
}

/// The planted bug: same as hardened, but no timeouts at all.
fn bugged() -> ResiliencePolicy {
    ResiliencePolicy::new()
        .retry(RetryPolicy::new(3).with_backoff(Backoff::none()))
        .circuit_breaker(CircuitBreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_secs(5),
            success_threshold: 1,
        })
        .bulkhead(BulkheadConfig { max_concurrent: 8 })
}

fn deploy() -> Result<(Deployment, TestContext), Box<dyn Error>> {
    let mut builder = Deployment::builder();
    for backend in BACKENDS {
        builder = builder.service(ServiceSpec::new(
            backend,
            StaticResponder::ok(format!("{backend}-data")),
        ));
    }
    let mut web = ServiceSpec::new(
        "web",
        Aggregator::new(BACKENDS.iter().map(|b| b.to_string()).collect(), "/api"),
    );
    for backend in BACKENDS {
        web = web.dependency(
            backend,
            if backend == BUGGED {
                bugged()
            } else {
                hardened()
            },
        );
    }
    let deployment = builder.service(web).ingress("user", "web").build()?;
    let mut graph = AppGraph::new();
    graph.add_edge("user", "web");
    for backend in BACKENDS {
        graph.add_edge("web", backend);
    }
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

fn drive(deployment: &Deployment, requests: usize) -> gremlin::loadgen::LoadReport {
    LoadGenerator::new(deployment.entry_addr("web").expect("entry"))
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(5)))
        .run_sequential(requests)
}

fn main() -> Result<(), Box<dyn Error>> {
    let expectations = Expectations {
        max_tries: 5,
        breaker_threshold: 5,
        breaker_window: Duration::from_secs(3),
        breaker_success_threshold: 1,
        max_latency: Duration::from_millis(400),
        hang: Duration::from_millis(500),
        min_rate: 0.5,
    };

    // ---------------- systematic sweep -----------------------------
    println!("== systematic: auto-generated recipe matrix (paper §9) ==");
    let generator = RecipeGenerator::new()
        .expectations(expectations)
        .exclude("user");
    let (_, probe_ctx) = deploy()?;
    let tests = generator.generate(probe_ctx.graph());
    println!(
        "generated {} tests from the application graph\n",
        tests.len()
    );

    let pattern = generator.flow_pattern();
    let mut findings = Vec::new();
    for test in &tests {
        // Fresh application copy per test: breaker state must not
        // leak between experiments (§9 state cleanup).
        let (deployment, ctx) = deploy()?;
        ctx.inject(&test.scenario)?;
        drive(&deployment, 8);
        let check = test.probe.evaluate(ctx.checker(), ctx.graph(), &pattern);
        if !check.passed {
            findings.push((test.name.clone(), check.clone()));
        }
    }
    println!("findings ({}):", findings.len());
    for (name, check) in &findings {
        println!("  {name}: {check}");
    }
    let found_planted = findings
        .iter()
        .any(|(name, _)| name.contains(&format!("web->{BUGGED}/timeouts")));
    println!(
        "\nplanted bug (missing timeout on web->{BUGGED}): {}\n",
        if found_planted {
            "FOUND, named exactly"
        } else {
            "missed"
        }
    );

    // ---------------- randomized baseline --------------------------
    println!("== randomized: chaos-monkey-style campaign (paper §8) ==");
    let (_, monkey_ctx) = deploy()?;
    let mut monkey = ChaosMonkey::new(monkey_ctx.graph().clone(), 2024)
        .with_pattern("test-*")
        .with_max_delay(Duration::from_millis(800));
    let trials = 16;
    let mut alarms = 0;
    let mut first_symptom = None;
    for trial in 1..=trials {
        let Some(scenario) = monkey.next_scenario() else {
            break;
        };
        let (deployment, ctx) = deploy()?;
        if ctx.inject(&scenario).is_err() {
            continue;
        }
        let report = drive(&deployment, 8);
        // The operator's view: something user-visible went wrong.
        let slow = report
            .latencies()
            .iter()
            .filter(|l| **l > Duration::from_millis(400))
            .count();
        let errors = report.failures();
        let symptom = slow > 0 || errors > 0;
        println!(
            "trial {trial:>2}: {scenario} -> {}",
            if symptom {
                alarms += 1;
                if first_symptom.is_none() {
                    first_symptom = Some(trial);
                }
                format!("SYMPTOM ({slow} slow, {errors} failed) — cause unknown, go dig through dashboards")
            } else {
                "no visible symptom".to_string()
            }
        );
    }
    println!(
        "\nrandomized campaign: {alarms}/{trials} trials raised an alarm{}",
        match first_symptom {
            Some(trial) => format!(" (first at trial {trial})"),
            None => String::new(),
        }
    );
    println!(
        "but none of the alarms names the broken pattern or the edge — that diagnosis \
         is exactly what Gremlin's assertion checker automates."
    );
    Ok(())
}

//! The IBM enterprise-application case study (paper §7.1, Figure 4):
//! a Web App aggregating internal services and external APIs, whose
//! failure handling is delegated to a Unirest-style library.
//!
//! The example stages progressively nastier failures and shows how a
//! Gremlin recipe discovers the library's connect-phase bug.
//!
//! Run with: `cargo run --example enterprise`

use std::error::Error;
use std::time::Duration;

use gremlin::core::{AppGraph, RecipeRun, Scenario, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::{Pattern, Query};

const BACKENDS: [&str; 4] = ["search-api", "activity-api", "github", "stackoverflow"];

fn deploy() -> Result<(Deployment, TestContext), Box<dyn Error>> {
    let mut builder = Deployment::builder();
    for backend in BACKENDS {
        builder = builder.service(ServiceSpec::new(
            backend,
            StaticResponder::ok(format!("{backend}-data")),
        ));
    }
    let mut webapp = ServiceSpec::new(
        "webapp",
        Aggregator::new(BACKENDS.iter().map(|b| b.to_string()).collect(), "/v1/data"),
    );
    for backend in BACKENDS {
        // The Unirest model: read timeouts handled, connection-phase
        // errors escape the library.
        webapp = webapp.dependency(
            backend,
            ResiliencePolicy::new()
                .read_timeout(Duration::from_millis(500))
                .with_unirest_connect_bug(),
        );
    }
    let deployment = builder.service(webapp).ingress("user", "webapp").build()?;

    let mut graph = AppGraph::new();
    graph.add_edge("user", "webapp");
    for backend in BACKENDS {
        graph.add_edge("webapp", backend);
    }
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

fn main() -> Result<(), Box<dyn Error>> {
    let (deployment, ctx) = deploy()?;
    let pattern = Pattern::new("test-*");
    let mut recipe = RecipeRun::new("enterprise-network-instability", &ctx);

    println!("application graph:\n{}", ctx.graph().to_dot());

    println!("== baseline ==");
    let resp = deployment.call_with_id("webapp", "/", "test-0")?;
    println!("GET / -> {} {}", resp.status(), resp.body_str());

    println!("\n== degraded github (503) — handled gracefully ==");
    recipe.inject(&Scenario::abort("webapp", "github", 503).with_pattern("test-*"))?;
    let resp = deployment.call_with_id("webapp", "/", "test-1")?;
    println!("GET / -> {} {}", resp.status(), resp.body_str());
    ctx.clear_faults()?;

    println!("\n== slow stackoverflow (2s delay vs 500ms read timeout) — handled ==");
    recipe.inject(
        &Scenario::delay("webapp", "stackoverflow", Duration::from_secs(2)).with_pattern("test-*"),
    )?;
    let resp = deployment.call_with_id("webapp", "/", "test-2")?;
    println!("GET / -> {} {}", resp.status(), resp.body_str());
    ctx.clear_faults()?;

    println!("\n== network instability: TCP connection termination to github ==");
    recipe.inject(&Scenario::abort_reset("webapp", "github").with_pattern("test-*"))?;
    LoadGenerator::new(deployment.entry_addr("webapp").expect("entry"))
        .id_prefix("test-burst")
        .run_sequential(10);
    let resp = deployment.call_with_id("webapp", "/", "test-3")?;
    println!("GET / -> {} {}", resp.status(), resp.body_str());

    // The recipe's assertion: the user-facing service must keep
    // replying successfully during backend network instability.
    let user_replies = deployment.store().query(&Query::replies("user", "webapp"));
    let five_hundreds = user_replies
        .iter()
        .filter(|e| e.status() == Some(500))
        .count();
    recipe.check(gremlin::core::Check {
        name: "WebAppDegradesGracefully".to_string(),
        passed: five_hundreds == 0,
        details: format!(
            "{} of {} user-facing replies were 500s",
            five_hundreds,
            user_replies.len()
        ),
    });
    recipe.check(
        ctx.checker()
            .has_timeouts("webapp", Duration::from_secs(1), &pattern),
    );

    let report = recipe.finish();
    println!("\n{report}");
    if !report.passed {
        println!(
            "bug found: the Unirest-style library handles read timeouts but lets \
             TCP connection errors percolate — the paper's previously unknown bug."
        );
    }
    Ok(())
}

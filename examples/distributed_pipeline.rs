//! The fully distributed wiring of §6, in one narrative: agents that
//! discover their upstreams from a service registry, are programmed
//! over the REST control channel, and ship their observations over
//! HTTP to a central collector — the logstash/Elasticsearch pipeline
//! of the paper, minus nothing.
//!
//! ```text
//!            ┌────────────┐   GET /instances/db   ┌──────────────┐
//!            │  registry  │◄──────────────────────│ gremlin agent│
//!            └────────────┘                       │  (sidecar)   │
//!  ControlClient ── POST /rules ─────────────────►│              │
//!            ┌────────────┐   POST /events        └──────┬───────┘
//!            │ collector  │◄───────────────────────------┘
//!            └─────┬──────┘        data path: web ──► agent ──► db
//!                  ▼
//!        AssertionChecker / FlowTrace (offline too, via ndjson)
//! ```
//!
//! Run with: `cargo run --example distributed_pipeline`

use std::error::Error;
use std::sync::Arc;

use gremlin::core::{AssertionChecker, FlowTrace};
use gremlin::http::{ConnInfo, HttpClient, Method, Request, Response};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::{RegistryServer, ServiceRegistry};
use gremlin::proxy::{
    AgentConfig, AgentControl, CollectorServer, ControlClient, ControlServer, GremlinAgent,
    HttpEventSink, Rule,
};
use gremlin::store::{EventStore, Pattern};

fn main() -> Result<(), Box<dyn Error>> {
    // --- infrastructure ------------------------------------------------
    // 1. The service registry (discovery endpoint).
    let registry = ServiceRegistry::shared();
    let registry_server = RegistryServer::start(Arc::clone(&registry), "127.0.0.1:0")?;
    println!("registry   @ {}", registry_server.local_addr());

    // 2. The central observation collector.
    let central_store = EventStore::shared();
    let collector = CollectorServer::start(Arc::clone(&central_store), "127.0.0.1:0")?;
    println!("collector  @ {}", collector.local_addr());

    // --- the application ------------------------------------------------
    // 3. A "db" backend registers itself with the registry (as a
    //    service would at startup).
    let db = gremlin::http::HttpServer::bind("127.0.0.1:0", |req: Request, _c: &ConnInfo| {
        let mut resp = Response::ok("rows");
        if let Some(id) = req.request_id() {
            resp.headers_mut()
                .insert(gremlin::http::header_names::REQUEST_ID, id.to_string());
        }
        resp
    })?;
    registry.register_instance("db", db.local_addr());
    println!("db         @ {}", db.local_addr());

    // 4. web's sidecar agent: upstreams discovered from the registry,
    //    observations shipped to the collector.
    let sink = Arc::new(HttpEventSink::new(collector.local_addr()));
    let agent = Arc::new(GremlinAgent::start(
        AgentConfig::new("web").route_discovered("db", registry_server.local_addr())?,
        Arc::clone(&sink) as Arc<dyn gremlin::store::EventSink>,
    )?);
    println!(
        "web agent  @ {} (db route)",
        agent.route_addr("db").unwrap()
    );

    // 5. The agent's control endpoint and a remote control client.
    let control_server = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0")?;
    let control = ControlClient::connect(control_server.local_addr())?;
    println!("control    @ {}\n", control_server.local_addr());

    // --- the test --------------------------------------------------------
    // 6. Stage a disconnect over REST, confined to test flows.
    control.install_rules(&[
        Rule::abort("web", "db", gremlin::proxy::AbortKind::Status(503))
            .with_pattern("test-fail-*"),
    ])?;
    println!("installed {} rule(s) via REST", control.list_rules()?.len());

    // 7. Drive traffic: healthy flows and a faulted one.
    let healthy = LoadGenerator::new(agent.route_addr("db").unwrap())
        .id_prefix("test-ok")
        .run_sequential(10);
    let client = HttpClient::new();
    let failed = client.send(
        agent.route_addr("db").unwrap(),
        Request::builder(Method::Get, "/q")
            .request_id("test-fail-1")
            .build(),
    )?;
    println!(
        "drove 10 healthy flows ({} ok) and one faulted flow ({})",
        healthy.successes(),
        failed.status()
    );

    // 8. Drain the pipeline and validate from the central store.
    sink.flush();
    let checker = AssertionChecker::new(Arc::clone(&central_store));
    println!("\ncollector now holds {} observations", central_store.len());
    let ok = checker.get_replies("web", "db", &Pattern::new("test-ok-*"));
    let bad = checker.get_replies("web", "db", &Pattern::new("test-fail-*"));
    println!(
        "  healthy replies: {} (all 200: {})",
        ok.len(),
        ok.iter().all(|e| e.status() == Some(200))
    );
    println!(
        "  faulted replies: {} (503, gremlin-injected: {})",
        bad.len(),
        bad.iter()
            .all(|e| e.status() == Some(503) && e.is_faulted())
    );

    println!("\nreconstructed faulted flow:");
    print!("{}", FlowTrace::from_store(&central_store, "test-fail-1"));

    // 9. The same log, exported and re-imported offline (what
    //    `gremlin check events.ndjson ...` consumes).
    let exported = client.send(collector.local_addr(), Request::get("/events"))?;
    let offline = EventStore::new();
    offline.import_json(&exported.body_str())?;
    println!(
        "\nexported {} events as ndjson; offline store agrees: {}",
        offline.len(),
        offline.len() == central_store.len()
    );

    // 10. Agent stats over REST, for the operator's dashboard.
    let stats = control.stats()?;
    println!(
        "agent stats: {} rule checks, {} hits (per rule: {:?})",
        stats.rule_checks, stats.rule_hits, stats.per_rule_hits
    );
    control.clear_rules()?;
    Ok(())
}

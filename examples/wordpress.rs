//! The WordPress + ElasticPress + MySQL case study (paper §7.1),
//! regenerating the data behind Figures 5 and 6.
//!
//! ElasticPress falls back to MySQL search when Elasticsearch fails,
//! but ships neither a timeout nor a circuit breaker. Gremlin's delay
//! and abort injections expose both gaps without touching the
//! application.
//!
//! Run with: `cargo run --example wordpress`

use std::error::Error;
use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{FallbackSearch, StaticResponder};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::Pattern;

fn deploy() -> Result<(Deployment, TestContext), Box<dyn Error>> {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new(
            "elasticsearch",
            StaticResponder::ok("es-hits"),
        ))
        .service(ServiceSpec::new("mysql", StaticResponder::ok("sql-rows")))
        .service(
            ServiceSpec::new(
                "wordpress",
                FallbackSearch::new("elasticsearch", "mysql", "/search"),
            )
            // ElasticPress as shipped: no timeout, no breaker.
            .dependency("elasticsearch", ResiliencePolicy::new())
            .dependency("mysql", ResiliencePolicy::new()),
        )
        .ingress("user", "wordpress")
        .build()?;
    let graph = AppGraph::from_edges(vec![
        ("user", "wordpress"),
        ("wordpress", "elasticsearch"),
        ("wordpress", "mysql"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("== Figure 5: response-time CDFs under injected delay ==");
    println!("   (no timeout pattern -> quickest response equals the injected delay)\n");
    for delay_ms in [100u64, 200, 300, 400] {
        let (deployment, ctx) = deploy()?;
        ctx.inject(
            &Scenario::delay(
                "wordpress",
                "elasticsearch",
                Duration::from_millis(delay_ms),
            )
            .with_pattern("test-*"),
        )?;
        let report = LoadGenerator::new(deployment.entry_addr("wordpress").expect("entry"))
            .path("/search")
            .id_prefix("test")
            .run_sequential(40);
        let cdf = report.cdf();
        print!("delay {delay_ms:>3} ms | CDF (p25,p50,p75,p100): ");
        for (q, latency) in cdf.to_rows(4) {
            print!("{:>4.0}ms@{:.2} ", latency.as_secs_f64() * 1000.0, q);
        }
        let check = ctx.checker().has_timeouts(
            "wordpress",
            Duration::from_millis(delay_ms / 2),
            &Pattern::new("test-*"),
        );
        println!("| {check}");
    }

    println!("\n== Figure 6: aborted batch, then delayed batch ==");
    println!("   (no circuit breaker -> none of the delayed requests return early)\n");
    let (deployment, ctx) = deploy()?;
    let generator = LoadGenerator::new(deployment.entry_addr("wordpress").expect("entry"))
        .path("/search")
        .id_prefix("test");

    // Phase 1: 100 consecutive aborted requests (as in the paper).
    ctx.inject(&Scenario::abort("wordpress", "elasticsearch", 503).with_pattern("test-*"))?;
    let aborted = generator.clone().run_sequential(100);
    println!(
        "aborted batch : {} requests, {} answered 200 via the MySQL fallback",
        aborted.len(),
        aborted.successes()
    );

    // Phase 2: the next 100 requests delayed by 3 s in the paper;
    // scaled to 300 ms here.
    ctx.clear_faults()?;
    let injected = Duration::from_millis(300);
    ctx.inject(&Scenario::delay("wordpress", "elasticsearch", injected).with_pattern("test-*"))?;
    let delayed = generator.run_sequential(30);
    let fast = delayed
        .latencies()
        .iter()
        .filter(|l| **l < injected)
        .count();
    println!(
        "delayed batch : {} requests, {} returned before the {:?} delay",
        delayed.len(),
        fast,
        injected
    );
    let check = ctx.checker().has_circuit_breaker(
        "wordpress",
        "elasticsearch",
        100,
        Duration::from_secs(30),
        1,
        &Pattern::new("test-*"),
    );
    println!("{check}");
    println!(
        "\nconclusion: ElasticPress degrades gracefully but implements neither the \
         timeout nor the circuit-breaker pattern — the paper's §7.1 findings."
    );
    Ok(())
}

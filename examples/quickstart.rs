//! Quickstart: the paper's §3.2 Example 1 plus the §4.2 chained
//! failure, end to end.
//!
//! ```text
//! Overload(ServiceB)
//! HasBoundedRetries(ServiceA, ServiceB, 5)
//! # and, conditionally:
//! Crash(ServiceB)
//! HasCircuitBreaker(ServiceA, ServiceB, ...)
//! ```
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::time::Duration;

use gremlin::core::{AppGraph, RecipeRun, Scenario, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::resilience::{Backoff, CircuitBreakerConfig, RetryPolicy};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::Pattern;

/// Deploys serviceA -> serviceB with the given failure-handling
/// policy on the edge, fronted by Gremlin agents.
fn deploy(policy: ResiliencePolicy) -> Result<(Deployment, TestContext), Box<dyn Error>> {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("serviceB", StaticResponder::ok("b-data")))
        .service(
            ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/api"))
                .dependency("serviceB", policy),
        )
        .ingress("user", "serviceA")
        .build()?;
    let graph = AppGraph::from_edges(vec![("user", "serviceA"), ("serviceA", "serviceB")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

fn policy() -> ResiliencePolicy {
    ResiliencePolicy::new()
        .timeout(Duration::from_secs(2))
        .retry(RetryPolicy::new(5).with_backoff(Backoff::constant(Duration::from_millis(2))))
        .circuit_breaker(CircuitBreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_secs(60),
            success_threshold: 1,
        })
}

fn main() -> Result<(), Box<dyn Error>> {
    let pattern = Pattern::new("test-*");

    println!("== Step 1: Overload(serviceB), expect bounded retries ==");
    let (deployment, ctx) = deploy(policy())?;
    let mut recipe = RecipeRun::new("example1-overload", &ctx);
    let stats = recipe.inject(&Scenario::overload("serviceB").with_pattern("test-*"))?;
    println!(
        "staged overload: {} rule(s) installed in {:?}",
        stats.installations, stats.duration
    );

    let report = LoadGenerator::new(deployment.entry_addr("serviceA").expect("entry"))
        .id_prefix("test")
        .run_sequential(50);
    println!(
        "injected {} test requests ({} succeeded) in {:?}",
        report.len(),
        report.successes(),
        report.wall
    );

    let bounded = recipe.check(
        ctx.checker()
            .has_bounded_retries("serviceA", "serviceB", 5, &pattern),
    );
    println!("{}", recipe.finish());

    if !bounded {
        println!("no bounded retries — stopping the chained recipe here");
        return Ok(());
    }

    println!("== Step 2: Crash(serviceB), expect a circuit breaker ==");
    // Fresh application copy: the overload may already have tripped
    // the breaker (the paper's §9 state-cleanup limitation).
    let (deployment, ctx) = deploy(policy())?;
    let mut recipe = RecipeRun::new("example1-crash", &ctx);
    recipe.inject(&Scenario::crash("serviceB").with_pattern("test-*"))?;
    LoadGenerator::new(deployment.entry_addr("serviceA").expect("entry"))
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(5)))
        .run_sequential(40);
    recipe.check(ctx.checker().has_circuit_breaker(
        "serviceA",
        "serviceB",
        5,
        Duration::from_secs(30),
        1,
        &pattern,
    ));
    let report = recipe.finish();
    println!("{report}");

    println!(
        "observations recorded: {} events across {} agent(s)",
        deployment.store().len(),
        deployment.agents().len()
    );

    // When a check fails, reconstruct one flow to see exactly what
    // happened hop by hop.
    println!("\n== flow reconstruction (one faulted flow) ==");
    let trace = gremlin::core::FlowTrace::from_store(deployment.store(), "test-0");
    print!("{trace}");
    Ok(())
}
